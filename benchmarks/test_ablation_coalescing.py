"""Ablation: how much of the logging scheme's win is write-combining?
Re-runs the passive Version 3 and active schemes against a SAN whose
interface cannot coalesce stores into larger packets."""

from conftest import once

from repro.experiments import ablations
from repro.perf.report import ReportTable


def test_ablation_coalescing(ctx, benchmark, emit):
    result = once(benchmark, lambda: ablations.run(ctx))
    result.check()
    table = ReportTable(
        "Ablation: packet coalescing (txns/sec)",
        ["configuration", "Debit-Credit", "Order-Entry"],
    )
    for name in ("passive-v3", "passive-v3-no-coalescing"):
        table.add_row(
            name,
            result.rows[name]["debit-credit"],
            result.rows[name]["order-entry"],
        )
    for workload in ("debit-credit", "order-entry"):
        loss = (
            1
            - result.rows["passive-v3-no-coalescing"][workload]
            / result.rows["passive-v3"][workload]
        ) * 100
        table.add_note(f"{workload}: coalescing is worth {loss:.0f}% of "
                       f"passive-V3 throughput")
    emit("ablation_coalescing", table.render())
