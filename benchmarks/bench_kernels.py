"""Wall-clock benchmark of the simulator-core kernels.

Measures three things and writes them to the root ``BENCH_kernels.json``
(the perf-trajectory tracker reads root-level ``BENCH_*.json`` files):

* **events** — simulator-core microbenchmark: events/second through a
  poll-dominated SMP simulation (reference tuple heap, the deployed
  queue for irregular schedules) and through a heartbeat-shaped
  schedule on the bucketed wheel versus the reference heap (the
  wheel's deployment shape).
* **diff** — big-int XOR diff kernel MB/s versus the reference
  word-at-a-time loop, on sparse (record-sized modification) and dense
  (every word differs) buffer pairs.
* **grid** — the full ``repro-experiments`` grid end to end, kernels
  on versus ``--no-fastpath``, golden-diffed, with the speedup against
  the committed PR 4 baseline (root ``BENCH_fastpath.json``, measured
  on the same container class) reported alongside.

Usage::

    python benchmarks/bench_kernels.py                      # measure
    python benchmarks/bench_kernels.py --check BENCH_kernels.json

Reports are written in the canonical ``repro-bench-v1`` trajectory
format; ``--check BASELINE`` delegates to
``python -m repro.obs.bench compare`` and exits non-zero if any gated
speedup fell below 80% of the committed baseline's — the CI guard
against quietly losing the kernels.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

from _common import MB, REPO, finalize, flatten_metrics

from repro.obs.bench import load_report


# -- events/sec -------------------------------------------------------------


def _run_heartbeats(queue, members=64, interval=1000.0, duration=1_000_000.0):
    from repro.sim.engine import Simulator

    sim = Simulator(queue=queue)

    def beat(member):
        sim.schedule_after(interval, lambda: beat(member), name="heartbeat")

    for member in range(members):
        beat(member)
    started = time.perf_counter()
    sim.run(until=duration)
    return time.perf_counter() - started, sim.events_processed


def bench_events() -> dict:
    from repro.perf.smp_sim import simulate_smp
    from repro.sim.events import BucketedEventQueue, EventQueue

    # Poll-dominated irregular schedule: the deployed reference heap.
    started = time.perf_counter()
    result = simulate_smp(5.0, [[32] * 6], 4, duration_us=10_000.0)
    poll_wall = time.perf_counter() - started

    heap_wall, heap_events = _run_heartbeats(EventQueue())
    wheel_wall, wheel_events = _run_heartbeats(BucketedEventQueue())
    assert heap_events == wheel_events
    return {
        "poll_sim_s": round(poll_wall, 3),
        "poll_sim_tps": round(result.aggregate_tps, 1),
        "heartbeat_events": heap_events,
        "heap_events_per_s": round(heap_events / heap_wall, 0),
        "wheel_events_per_s": round(wheel_events / wheel_wall, 0),
        "wheel_speedup": round(heap_wall / wheel_wall, 3),
    }


# -- diff MB/s --------------------------------------------------------------


def _time_diff(fn, old, new, repeats) -> float:
    started = time.perf_counter()
    for _ in range(repeats):
        fn(old, new)
    return time.perf_counter() - started


def bench_diff() -> dict:
    from repro.fastpath.kernels import diff_runs_fast
    from repro.vista.v2_mirror_diff import diff_runs

    reference = lambda old, new: list(diff_runs(old, new))  # noqa: E731

    # Sparse: a 64 KiB range with a handful of modified records —
    # the shape MirrorDiffEngine sees per commit.
    sparse_old = bytes(64 * 1024)
    sparse_new = bytearray(sparse_old)
    for position in range(0, len(sparse_new), 4096):
        sparse_new[position : position + 64] = b"\xa5" * 64
    sparse_new = bytes(sparse_new)
    # Dense: every word differs.
    dense_old = bytes(64 * 1024)
    dense_new = b"\xff" * (64 * 1024)

    assert diff_runs_fast(sparse_old, sparse_new) == reference(sparse_old, sparse_new)
    assert diff_runs_fast(dense_old, dense_new) == reference(dense_old, dense_new)

    report = {}
    for label, old, new, repeats in (
        ("sparse", sparse_old, sparse_new, 40),
        ("dense", dense_old, dense_new, 10),
    ):
        slow_s = _time_diff(reference, old, new, repeats)
        fast_s = _time_diff(diff_runs_fast, old, new, repeats)
        volume_mb = len(old) * repeats / MB
        report[label] = {
            "reference_mb_per_s": round(volume_mb / slow_s, 1),
            "kernel_mb_per_s": round(volume_mb / fast_s, 1),
            "speedup": round(slow_s / fast_s, 2),
        }
    return report


# -- write-buffer drain -----------------------------------------------------


def _time_wbuf(model_cls, stores, repeats) -> "tuple":
    packets = 0
    started = time.perf_counter()
    for _ in range(repeats):
        model = model_cls(6, 64)
        model.write_batch(stores)
        model.barrier()
        packets = model.packets_emitted
    return time.perf_counter() - started, packets


def bench_wbuf() -> dict:
    """Store-schedule drain: the vectorized write-buffer model versus
    the reference, through the same ``write_batch`` entry point."""
    from repro.hardware.writebuffer import (
        VectorWriteBufferModel,
        WriteBufferModel,
    )

    # Contiguous redo-drain shape (the log applier's bulk stream):
    # block-aligned 64-byte stores marching through 256 KiB — the
    # run-coalescing + full-block fast path.
    contig = [(i * 64, 64) for i in range(4096)]
    # Scattered commit-record shape: strided partial stores hashing
    # across a 1 MiB window, no two coalescible.
    scatter = [((i * 2654435761) % (1 << 20), 24) for i in range(4096)]

    report = {}
    for label, stores, repeats in (("contig", contig, 20),
                                   ("scatter", scatter, 20)):
        ref_sizes, vec_sizes = [], []
        ref = WriteBufferModel(6, 64, on_packet=ref_sizes.append)
        vec = VectorWriteBufferModel(6, 64, on_packet=vec_sizes.append)
        ref.write_batch(stores); ref.barrier()
        vec.write_batch(stores); vec.barrier()
        assert vec_sizes == ref_sizes and vec.histogram == ref.histogram
        slow_s, slow_packets = _time_wbuf(WriteBufferModel, stores, repeats)
        fast_s, fast_packets = _time_wbuf(
            VectorWriteBufferModel, stores, repeats)
        assert slow_packets == fast_packets
        stores_total = len(stores) * repeats
        report[label] = {
            "packets": fast_packets,
            "reference_stores_per_s": round(stores_total / slow_s, 0),
            "kernel_stores_per_s": round(stores_total / fast_s, 0),
            "speedup": round(slow_s / fast_s, 2),
        }
    return report


# -- memory-region backends -------------------------------------------------

#: In-region and cross-region copies must clear this against the
#: bytearray reference (whose costs are a defensive temporary on
#: overlap-capable slice assignment and, for the cross copy — the
#: seed's read-then-write pair — an intermediate ``bytes`` per call:
#: ~10x and ~27x on the dev container). ``fill`` is reported ungated
#: by this floor: the reference fill has been memcpy-bound since the
#: page-chunked rewrite, so the numpy win there is ~2.5x by
#: construction.
REGION_COPY_FLOOR = 5.0


def _time_region_op(op, repeats: int) -> float:
    best = None
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(repeats):
            op()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best / repeats


def bench_region() -> dict:
    """Region-backend microbenchmark: the numpy-``uint8`` region
    versus the bytearray reference, through the public region API.

    ``fill`` and ``copy`` (in-region ``copy_within``) are already
    memcpy-shaped in the reference — PR 5 removed their Python byte
    loops — so their headroom is one memcpy versus two; ``cross``
    (region-to-region ``copy_from``, the mirror-update hot path) is
    where the vectorized backend retires an intermediate ``bytes``
    plus two Python-level calls per range and clears 5x.
    """
    from repro.memory.region import MemoryRegion, NumpyMemoryRegion

    # Pin glibc's mmap threshold so the reference's per-call
    # intermediate allocation cost is deterministic. Without this the
    # dynamic threshold adjustment makes the cross-copy reference
    # bimodal (mmap + page-touch per call, ~1 GB/s, versus a cached
    # arena block, ~4 GB/s) depending on what the process freed
    # earlier — an allocator artifact, not a property of the code
    # under test. Best effort: non-glibc platforms just measure
    # whatever their allocator does.
    try:
        import ctypes

        M_MMAP_THRESHOLD = -3
        ctypes.CDLL("libc.so.6").mallopt(M_MMAP_THRESHOLD, 128 * 1024)
    except Exception:  # pragma: no cover - non-glibc
        pass

    length = MB
    region_bytes = 2 * length
    image = bytes(range(256)) * (length // 256)

    def build(cls):
        region = cls("bench/target", region_bytes)
        source = cls("bench/source", length)
        source.poke(0, image)
        return region, source

    backends = {
        "reference": build(MemoryRegion),
        "numpy": build(NumpyMemoryRegion),
    }
    cases = {
        "fill": (region_bytes, lambda region, source: region.fill(0xA5)),
        "copy": (
            length,
            lambda region, source: region.copy_within(0, length, length),
        ),
        "cross": (
            length,
            lambda region, source: region.copy_from(source, 0, 0, length),
        ),
    }
    report = {}
    for label, (volume, op) in cases.items():
        timings = {
            name: _time_region_op(
                lambda pair=pair: op(pair[0], pair[1]), 30
            )
            for name, pair in backends.items()
        }
        report[label] = {
            "reference_mb_per_s": round(volume / timings["reference"] / MB, 1),
            "numpy_mb_per_s": round(volume / timings["numpy"] / MB, 1),
            "speedup": round(timings["reference"] / timings["numpy"], 2),
        }
    # Equivalence spot-check (after the timing: snapshots make large
    # allocations that would otherwise perturb the pinned allocator).
    for region, source in backends.values():
        region.fill(0xA5)
        region.copy_from(source, 0, 0, length)
        region.copy_within(0, length, length)
    assert (
        backends["numpy"][0].snapshot()
        == backends["reference"][0].snapshot()
    )
    return report


# -- end-to-end grid --------------------------------------------------------


def _run_grid(extra_args, transactions: int, output_path: str) -> float:
    command = [
        sys.executable, "-m", "repro.experiments.runner",
        "--transactions", str(transactions),
    ] + extra_args
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_FASTPATH", None)
    started = time.perf_counter()
    with open(output_path, "w") as handle:
        subprocess.run(command, check=True, env=env, stdout=handle)
    return time.perf_counter() - started


def _tables_of(path: str) -> list:
    lines = Path(path).read_text().splitlines()
    return [line for line in lines if not line.startswith("[all experiments")]


def bench_grid(transactions: int) -> dict:
    slow_s = _run_grid(["--no-fastpath"], transactions, "grid-kernels-reference.txt")
    fast_s = _run_grid([], transactions, "grid-kernels-fast.txt")
    identical = _tables_of("grid-kernels-reference.txt") == _tables_of(
        "grid-kernels-fast.txt"
    )
    report = {
        "transactions": transactions,
        "reference_s": round(slow_s, 3),
        "kernels_s": round(fast_s, 3),
        "speedup": round(slow_s / fast_s, 3),
        "output_identical": identical,
    }
    # Speedup over the committed PR 4 grid wall-clock, when this run
    # matches the baseline's transaction count (same container class;
    # informational on other machines).
    pr4_path = REPO / "BENCH_fastpath.json"
    if pr4_path.exists():
        pr4 = load_report(str(pr4_path))["metrics"]
        pr4_txns = pr4.get("grid.transactions", {}).get("value")
        pr4_fast = pr4.get("grid.fast_jobs_s", {}).get("value")
        if pr4_txns == transactions and pr4_fast:
            report["pr4_fastpath_s"] = pr4_fast
            report["speedup_vs_pr4"] = round(pr4_fast / fast_s, 3)
    return report


# -- report / main ----------------------------------------------------------

#: Regression-gated metrics (all "higher is better" speedup ratios).
GATES = {
    "events.wheel_speedup": "higher",
    "diff.sparse.speedup": "higher",
    "diff.dense.speedup": "higher",
    "wbuf.contig.speedup": "higher",
    "wbuf.scatter.speedup": "higher",
    "region.fill.speedup": "higher",
    "region.copy.speedup": "higher",
    "region.cross.speedup": "higher",
    "grid.speedup_vs_pr4": "higher",
}

UNITS = {
    "events.wheel_speedup": "x",
    "events.heap_events_per_s": "ev/s",
    "events.wheel_events_per_s": "ev/s",
    "events.poll_sim_s": "s",
    "diff.sparse.speedup": "x",
    "diff.dense.speedup": "x",
    "diff.sparse.kernel_mb_per_s": "MB/s",
    "diff.sparse.reference_mb_per_s": "MB/s",
    "diff.dense.kernel_mb_per_s": "MB/s",
    "diff.dense.reference_mb_per_s": "MB/s",
    "wbuf.contig.speedup": "x",
    "wbuf.scatter.speedup": "x",
    "wbuf.contig.reference_stores_per_s": "st/s",
    "wbuf.contig.kernel_stores_per_s": "st/s",
    "wbuf.scatter.reference_stores_per_s": "st/s",
    "wbuf.scatter.kernel_stores_per_s": "st/s",
    "region.fill.speedup": "x",
    "region.copy.speedup": "x",
    "region.cross.speedup": "x",
    "region.fill.reference_mb_per_s": "MB/s",
    "region.fill.numpy_mb_per_s": "MB/s",
    "region.copy.reference_mb_per_s": "MB/s",
    "region.copy.numpy_mb_per_s": "MB/s",
    "region.cross.reference_mb_per_s": "MB/s",
    "region.cross.numpy_mb_per_s": "MB/s",
    "grid.reference_s": "s",
    "grid.kernels_s": "s",
    "grid.speedup": "x",
    "grid.speedup_vs_pr4": "x",
    "grid.pr4_fastpath_s": "s",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transactions", type=int, default=1000)
    parser.add_argument(
        "--output", default=str(REPO / "BENCH_kernels.json"),
        help="where to write the measured report (default: repo root)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare speedups against a committed baseline JSON; "
        "exit 1 on a >20%% regression",
    )
    parser.add_argument(
        "--skip-grid", action="store_true",
        help="microbenchmarks only (quick local iteration)",
    )
    args = parser.parse_args(argv)

    report = {
        "events": bench_events(),
        "diff": bench_diff(),
        "wbuf": bench_wbuf(),
        "region": bench_region(),
    }
    events = report["events"]
    print(
        f"[events] heap {events['heap_events_per_s']:.0f}/s, wheel "
        f"{events['wheel_events_per_s']:.0f}/s on heartbeats "
        f"({events['wheel_speedup']}x)"
    )
    for label in ("sparse", "dense"):
        diff = report["diff"][label]
        print(
            f"[diff:{label}] {diff['reference_mb_per_s']} -> "
            f"{diff['kernel_mb_per_s']} MB/s ({diff['speedup']}x)"
        )
    for label in ("contig", "scatter"):
        wbuf = report["wbuf"][label]
        print(
            f"[wbuf:{label}] {wbuf['reference_stores_per_s']:.0f} -> "
            f"{wbuf['kernel_stores_per_s']:.0f} stores/s "
            f"({wbuf['speedup']}x)"
        )
    for label in ("fill", "copy", "cross"):
        region = report["region"][label]
        print(
            f"[region:{label}] {region['reference_mb_per_s']} -> "
            f"{region['numpy_mb_per_s']} MB/s ({region['speedup']}x)"
        )
    for label in ("copy", "cross"):
        if report["region"][label]["speedup"] < REGION_COPY_FLOOR:
            print(
                f"FAIL: region {label} speedup "
                f"{report['region'][label]['speedup']}x is below the "
                f"{REGION_COPY_FLOOR}x floor"
            )
            finalize("kernels", flatten_metrics(report, GATES, UNITS),
                     args.output)
            return 1
    if not args.skip_grid:
        report["grid"] = bench_grid(args.transactions)
        grid = report["grid"]
        line = (
            f"[grid] reference {grid['reference_s']}s -> kernels "
            f"{grid['kernels_s']}s ({grid['speedup']}x)"
        )
        if "speedup_vs_pr4" in grid:
            line += (
                f"; {grid['speedup_vs_pr4']}x vs the PR 4 fastpath "
                f"baseline ({grid['pr4_fastpath_s']}s)"
            )
        print(line)
    if "grid" in report and not report["grid"]["output_identical"]:
        print(
            "FAIL: kernels grid output differs from the --no-fastpath "
            "reference (see grid-kernels-reference.txt / "
            "grid-kernels-fast.txt)"
        )
        finalize("kernels", flatten_metrics(report, GATES, UNITS),
                 args.output)
        return 1
    if "grid" in report:
        print("[grid] kernels output is byte-identical to the reference")
    return finalize("kernels", flatten_metrics(report, GATES, UNITS),
                    args.output, check_path=args.check)


if __name__ == "__main__":
    sys.exit(main())
