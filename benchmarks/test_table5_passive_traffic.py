"""Table 5: per-version traffic to the passive backup."""

from conftest import once

from repro.experiments import table4_5


def test_table5_passive_traffic(ctx, benchmark, emit):
    result = once(benchmark, lambda: table4_5.run(ctx))
    result.check()
    emit("table5", result.table5().render())
