"""Wall-clock benchmark of the parallel per-shard simulation executor.

Replays one recorded failover schedule — an 8-pair sharded cluster
under a fixed round-robin load with two mid-run primary crashes (the
multi-crash shape the per-entry shard-map refresh made decomposable) —
through both :mod:`repro.fastpath.shardpar` executors and writes the
result to ``BENCH_shardpar.json``:

* **sequential** — the reference: the whole cluster on one simulator.
* **parallel** — the per-shard domain decomposition across worker
  processes, merged deterministically.

The benchmark *asserts* the two runs are identical (trace event list,
sampled series bytes, router totals, takeover reports) before timing
anything: the speedup is only meaningful because the output is
byte-for-byte the same. The plan is scaled past the experiment's
defaults (more slots, more load) so per-domain work amortizes the
process-pool startup; on the 1-core container class the parallel leg
measures pure overhead, which is itself worth tracking.

Usage::

    python benchmarks/bench_shardpar.py                    # measure
    python benchmarks/bench_shardpar.py --check BENCH_shardpar.json

Reports use the canonical ``repro-bench-v1`` trajectory format;
``--check BASELINE`` gates ``output_identical`` (and, with 4+ cores,
requires the parallel leg to clear 1.5x) — the CI guard against the
decomposition quietly drifting from the sequential truth.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from _common import REPO, finalize, flatten_metrics

#: The replayed schedule: 8 pairs, a long slot grid, two crashes on
#: distinct shards (staggered so both takeover streams overlap load).
NUM_SHARDS = 8
SLOTS = 160
OFFERED_PER_SHARD = 4
CRASHES = ((2, 40_250.0), (5, 90_250.0))

#: Parallel legs only make sense up to the shard count.
DEFAULT_JOBS = min(NUM_SHARDS, os.cpu_count() or 1)

#: Cores at which the acceptance speedup becomes a hard requirement.
SPEEDUP_CORES = 4
SPEEDUP_FLOOR = 1.5


def _build_plan():
    from repro.experiments.extension_sharding import failover_plan

    return failover_plan(
        num_shards=NUM_SHARDS,
        slots=SLOTS,
        offered_per_shard=OFFERED_PER_SHARD,
        crashes=CRASHES,
    )


def bench_shardpar(jobs: int) -> dict:
    from repro.fastpath.shardpar import (
        _execute_sequential,
        execute_decomposed,
    )
    from repro.obs.observer import Observer

    plan = _build_plan()

    started = time.perf_counter()
    sequential = _execute_sequential(plan, Observer())
    sequential_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = execute_decomposed(plan, jobs=jobs)
    parallel_s = time.perf_counter() - started

    identical = (
        parallel.events == sequential.events
        and parallel.frame.to_bytes() == sequential.frame.to_bytes()
        and (parallel.routed, parallel.completed, parallel.dropped)
        == (sequential.routed, sequential.completed, sequential.dropped)
        and parallel.takeover_downtime_us == sequential.takeover_downtime_us
    )
    return {
        "shards": NUM_SHARDS,
        "slots": SLOTS,
        "crashes": len(plan.crashes),
        "jobs": jobs,
        "cores": os.cpu_count() or 1,
        "events": len(sequential.events),
        "transactions": sequential.routed,
        "sequential_s": round(sequential_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(sequential_s / parallel_s, 3),
        "output_identical": identical,
    }


#: Regression-gated metrics. The identity bit is the load-bearing one:
#: it can never legitimately regress. The speedup is informational in
#: the report (core counts vary across machines) and enforced directly
#: below when enough cores are present.
GATES = {
    "shardpar.output_identical": "higher",
}

UNITS = {
    "shardpar.sequential_s": "s",
    "shardpar.parallel_s": "s",
    "shardpar.speedup": "x",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=DEFAULT_JOBS,
        help=f"worker processes for the parallel leg "
        f"(default min(shards, cores) = {DEFAULT_JOBS})",
    )
    parser.add_argument(
        "--output", default=str(REPO / "BENCH_shardpar.json"),
        help="where to write the measured report (default: repo root)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare gated metrics against a committed baseline JSON",
    )
    args = parser.parse_args(argv)

    report = {"shardpar": bench_shardpar(args.jobs)}
    shardpar = report["shardpar"]
    print(
        f"[shardpar] {shardpar['shards']} shards x {shardpar['slots']} "
        f"slots: sequential {shardpar['sequential_s']}s -> parallel "
        f"{shardpar['parallel_s']}s at --shard-jobs {shardpar['jobs']} "
        f"({shardpar['speedup']}x on {shardpar['cores']} core(s))"
    )
    if not shardpar["output_identical"]:
        print("FAIL: parallel outcome differs from the sequential run")
        finalize("shardpar", flatten_metrics(report, GATES, UNITS),
                 args.output)
        return 1
    print("[shardpar] parallel output is byte-identical to sequential")
    if shardpar["cores"] >= SPEEDUP_CORES:
        if shardpar["speedup"] < SPEEDUP_FLOOR:
            print(
                f"FAIL: {shardpar['cores']} cores available but the "
                f"parallel leg managed only {shardpar['speedup']}x "
                f"(< {SPEEDUP_FLOOR}x)"
            )
            finalize("shardpar", flatten_metrics(report, GATES, UNITS),
                     args.output)
            return 1
    else:
        # Say so explicitly: a sub-1x "speedup" recorded on a small
        # machine (the committed 0.904x baseline came from a 1-core
        # container) is process-pool overhead, not a scaling result,
        # and the ≥{floor}x requirement only binds where the cores
        # exist to provide it.
        print(
            f"[shardpar] {SPEEDUP_FLOOR}x speedup gate skipped: "
            f"{shardpar['cores']} core(s) < {SPEEDUP_CORES} — the "
            f"parallel leg measures pool overhead here, not scaling"
        )
    return finalize("shardpar", flatten_metrics(report, GATES, UNITS),
                    args.output, check_path=args.check)


if __name__ == "__main__":
    sys.exit(main())
