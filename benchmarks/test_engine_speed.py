"""Raw Python-level engine speed (not a paper figure).

Times the four engine implementations actually executing Debit-Credit
transactions in this reproduction. Useful for tracking performance
regressions of the library itself; the simulated-hardware throughput
numbers live in the table benchmarks.
"""

import pytest

from repro.memory.rio import RioMemory
from repro.vista import ENGINE_VERSIONS, EngineConfig, create_engine
from repro.workloads import DebitCreditWorkload

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=4 * MB, log_bytes=512 * 1024)
BATCH = 200


@pytest.mark.parametrize("version", list(ENGINE_VERSIONS))
def test_engine_transaction_rate(version, benchmark):
    engine = create_engine(version, RioMemory(f"speed-{version}"), CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=1)
    workload.setup(engine)

    def run_batch():
        for _ in range(BATCH):
            workload.run_transaction(engine)

    benchmark.pedantic(run_batch, rounds=3, iterations=1, warmup_rounds=1)
    workload.verify(engine)
