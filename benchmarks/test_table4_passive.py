"""Table 4: passive-backup throughput for every engine version."""

from conftest import once

from repro.experiments import table4_5


def test_table4_passive(ctx, benchmark, emit):
    result = once(benchmark, lambda: table4_5.run(ctx))
    result.check()
    emit("table4", result.table4().render())
