"""Wall-clock benchmark of the fast-path execution layer.

Measures two things and writes them to ``BENCH_fastpath.json``:

* **cells** — a representative set of driven measurement cells run
  sequentially in-process, fast path off then on. This isolates the
  batched store pipeline + replay cache, independent of core count.
* **grid** — the full ``repro-experiments`` grid run as subprocesses,
  reference (``--no-fastpath``, sequential) versus fast
  (``--jobs N``). This is the headline number: regenerating every
  table and figure of the paper, before and after.

Usage::

    python benchmarks/bench_fastpath.py                   # measure
    python benchmarks/bench_fastpath.py --check BENCH_fastpath.json

Reports are written in the canonical ``repro-bench-v1`` trajectory
format (root ``BENCH_fastpath.json`` is the committed baseline);
``--check BASELINE`` delegates to ``python -m repro.obs.bench
compare`` and exits non-zero if either measured speedup fell below 80%
of the committed baseline's — the CI guard against quietly losing the
optimization.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

from _common import MB, REPO, finalize, flatten_metrics

#: The in-process cell set: one of each replication style, both
#: workloads, including the heavy v1 mirror (uncoalesced) path.
CELL_SET = [
    ("passive", ("v0", "debit-credit", None)),
    ("passive", ("v3", "order-entry", None)),
    ("passive", ("v1", "debit-credit", None)),
    ("active", ("debit-credit", None)),
]


def _run_cells(transactions: int) -> float:
    from repro.experiments.common import ExperimentContext, ExperimentSettings

    ctx = ExperimentContext(ExperimentSettings(transactions=transactions))
    started = time.perf_counter()
    for kind, args in CELL_SET:
        if kind == "passive":
            ctx.passive_result(*args)
        else:
            ctx.active_result(*args)
    return time.perf_counter() - started


def bench_cells(transactions: int) -> dict:
    from repro import fastpath

    with fastpath.disabled():
        slow_s = _run_cells(transactions)
    with fastpath.forced():
        fast_s = _run_cells(transactions)
    return {
        "transactions": transactions,
        "slow_s": round(slow_s, 3),
        "fast_s": round(fast_s, 3),
        "speedup": round(slow_s / fast_s, 3),
    }


def _run_grid(extra_args, transactions: int, output_path: str) -> float:
    command = [
        sys.executable, "-m", "repro.experiments.runner",
        "--transactions", str(transactions),
    ] + extra_args
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    started = time.perf_counter()
    with open(output_path, "w") as handle:
        subprocess.run(command, check=True, env=env, stdout=handle)
    return time.perf_counter() - started


def _tables_of(path: str) -> list:
    """Grid output minus the final wall-clock line (which may differ)."""
    lines = Path(path).read_text().splitlines()
    return [line for line in lines if not line.startswith("[all experiments")]


def bench_grid(transactions: int, jobs: int) -> dict:
    """Time the full grid, reference vs fast, and golden-diff the two
    outputs: the fast path is only a fast path if every rendered table
    is byte-identical."""
    slow_s = _run_grid(["--no-fastpath"], transactions, "grid-reference.txt")
    fast_s = _run_grid(["--jobs", str(jobs)], transactions, "grid-fastpath.txt")
    identical = _tables_of("grid-reference.txt") == _tables_of("grid-fastpath.txt")
    return {
        "transactions": transactions,
        "jobs": jobs,
        "slow_s": round(slow_s, 3),
        "fast_jobs_s": round(fast_s, 3),
        "speedup": round(slow_s / fast_s, 3),
        "output_identical": identical,
    }


#: Regression-gated metrics (speedup ratios; higher is better).
GATES = {
    "cells.speedup": "higher",
    "grid.speedup": "higher",
}

UNITS = {
    "cells.speedup": "x",
    "cells.slow_s": "s",
    "cells.fast_s": "s",
    "grid.speedup": "x",
    "grid.slow_s": "s",
    "grid.fast_jobs_s": "s",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transactions", type=int, default=1000)
    parser.add_argument("--cell-transactions", type=int, default=600)
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes for the fast grid run (0 = all cores)",
    )
    parser.add_argument(
        "--output", default=str(REPO / "BENCH_fastpath.json"),
        help="where to write the measured report (default: repo root)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare speedups against a committed baseline JSON; "
        "exit 1 on a >20%% regression",
    )
    parser.add_argument(
        "--skip-grid", action="store_true",
        help="cells only (quick local iteration)",
    )
    args = parser.parse_args(argv)

    if args.jobs <= 0:
        from repro.fastpath.parallel import default_jobs

        args.jobs = default_jobs()

    report = {
        "cells": bench_cells(args.cell_transactions),
    }
    print(
        f"[cells] slow {report['cells']['slow_s']}s -> fast "
        f"{report['cells']['fast_s']}s ({report['cells']['speedup']}x)"
    )
    if not args.skip_grid:
        report["grid"] = bench_grid(args.transactions, args.jobs)
        print(
            f"[grid]  slow {report['grid']['slow_s']}s -> fast "
            f"{report['grid']['fast_jobs_s']}s "
            f"({report['grid']['speedup']}x at --jobs {args.jobs})"
        )
    if "grid" in report and not report["grid"]["output_identical"]:
        print(
            "FAIL: fast grid output differs from the --no-fastpath "
            "reference (see grid-reference.txt / grid-fastpath.txt)"
        )
        finalize("fastpath", flatten_metrics(report, GATES, UNITS),
                 args.output)
        return 1
    if "grid" in report:
        print("[grid]  fast output is byte-identical to the reference")
    return finalize("fastpath", flatten_metrics(report, GATES, UNITS),
                    args.output, check_path=args.check)


if __name__ == "__main__":
    sys.exit(main())
