"""Table 1: the straightforward (Version 0 write-through) cluster
implementation collapses throughput."""

from conftest import once

from repro.experiments import table1_2


def test_table1_straightforward(ctx, benchmark, emit):
    result = once(benchmark, lambda: table1_2.run(ctx))
    result.check()
    emit("table1", result.table1().render())
