"""Extension benchmark: leaderless quorum groups end to end.

Asserts, at full fidelity, the quorum claims: losing one replica of a
strict (3, 2, 2) group degrades the cluster to (n-1)/n rather than
zero, losing a second opens a quorum-loss window that closes on the
first recovery, anti-entropy reconverges the partitioned group, and
the sloppy pair rides through a crash that costs the passive pair a
full restore outage. The timeline is additionally asserted to be
bit-for-bit deterministic under the fixed seed.

Set ``REPRO_TRACE_DIR=somewhere`` to additionally dump the quorum
run's JSONL trace and its rendered timeline there (CI uploads them as
artifacts).
"""

import os
from pathlib import Path

from conftest import once

from repro.experiments import extension_quorum


def test_extension_quorum(ctx, benchmark, emit):
    result = once(benchmark, lambda: extension_quorum.run(ctx))
    result.check()

    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if trace_dir:
        out = Path(trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        extension_quorum.quorum_timeline(
            seed=ctx.settings.seed,
            trace_path=str(out / "extension_quorum.trace.jsonl"),
        )
        (out / "extension_quorum.timeline.txt").write_text(
            result.timeline.trace_report().render() + "\n"
        )

    # Acceptance: the quorum loss costs ~1/N, not everything...
    timeline = result.timeline
    for sample in timeline.outage_slots():
        assert sample.completed == timeline.degraded_per_slot
        assert sample.completed > 0
    # ...the partitioned group reconverged...
    assert timeline.converged
    # ...and sloppy-quorum availability beats the passive pair's.
    comparison = result.comparison
    assert comparison.quorum_availability >= comparison.pair_availability
    assert comparison.quorum_downtime_us == 0.0

    # Determinism: replaying under the same seed reproduces every slot.
    replay = extension_quorum.quorum_timeline(seed=ctx.settings.seed)
    assert replay.samples == timeline.samples
    assert replay.router_stats == timeline.router_stats
    assert replay.group_stats == timeline.group_stats

    emit(
        "extension_quorum",
        result.table().render() + "\n\n" + result.timeline_figure(),
    )
