"""Table 6: best passive (Version 3) versus the active backup."""

from conftest import once

from repro.experiments import table6_7


def test_table6_active(ctx, benchmark, emit):
    result = once(benchmark, lambda: table6_7.run(ctx))
    result.check()
    emit("table6", result.table6().render())
