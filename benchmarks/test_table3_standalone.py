"""Table 3: standalone throughput of the restructured engines."""

from conftest import once

from repro.experiments import table3


def test_table3_standalone(ctx, benchmark, emit):
    result = once(benchmark, lambda: table3.run(ctx))
    result.check()
    emit("table3", result.table().render())
