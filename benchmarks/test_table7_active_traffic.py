"""Table 7: traffic, active vs best passive."""

from conftest import once

from repro.experiments import table6_7


def test_table7_active_traffic(ctx, benchmark, emit):
    result = once(benchmark, lambda: table6_7.run(ctx))
    result.check()
    emit("table7", result.table7().render())
