"""Ablation: the Section 5.1 optimization — keeping the mirror
versions' set_range array primary-local — versus shipping it."""

from conftest import once

from repro.experiments import ablations
from repro.perf.report import ReportTable


def test_ablation_mirror_undo(ctx, benchmark, emit):
    result = once(benchmark, lambda: ablations.run(ctx))
    result.check()
    table = ReportTable(
        "Ablation: shipping the mirror versions' undo log (txns/sec)",
        ["configuration", "Debit-Credit", "Order-Entry"],
    )
    for name in ("passive-v1", "passive-v1-ship-undo"):
        table.add_row(
            name,
            result.rows[name]["debit-credit"],
            result.rows[name]["order-entry"],
        )
    table.add_note(
        "keeping the array local trades faster failure-free operation "
        "for a whole-database restore at failover (Section 5.1)"
    )
    emit("ablation_mirror_undo", table.render())
