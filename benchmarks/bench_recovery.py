"""Recovery root-cause benchmark: where did the downtime go?

Runs both extension experiments, decomposes every failover's
``recovery.span`` tree into critical-path phases, cross-checks the
decomposition against the SLO downtime windows and the burn-rate alert
schedule, and writes the derived numbers to the root
``BENCH_recovery.json`` (the perf-trajectory tracker reads root-level
``BENCH_*.json`` files):

* **sharding** — the sharded failover's downtime split into detect vs
  catchup (dominant), the resume gap to the first served commit, and
  the burn-rate alert count.
* **quorum** — the leaderless group's quorum loss, which decomposes
  entirely into the ``view`` phase (membership, not data), plus the
  causally linked first post-failover commit.

Everything gated is *simulated* time, deterministic under the seed, so
the regression gate is exact across machines: a code change that
shifts any decomposition number shows up as a gate failure (and as a
localized divergence in ``python -m repro.obs.diff``).

Usage::

    python benchmarks/bench_recovery.py                       # measure
    python benchmarks/bench_recovery.py --check BENCH_recovery.json
"""

from __future__ import annotations

import argparse
import sys
import time

from _common import REPO, finalize, flatten_metrics


def bench_sharding() -> dict:
    from repro.experiments.extension_sharding import failover_timeline
    from repro.obs.critpath import crosscheck_recovery_slo

    started = time.perf_counter()
    outcome = failover_timeline()
    wall_s = time.perf_counter() - started

    slo = outcome.slo()
    decomposition = crosscheck_recovery_slo(outcome.trace_events, slo)
    scope = decomposition.scope(f"shard.{outcome.crashed_shard}")
    verification = outcome.alerts()
    assert verification.ok, verification.render()
    tree = decomposition.trees[0]
    return {
        "downtime_us": scope.total_downtime_us,
        "detect_us": scope.phase_totals.get("detect", 0.0),
        "catchup_us": scope.phase_totals.get("catchup", 0.0),
        "catchup_share": round(scope.share("catchup"), 4),
        "resume_gap_us": tree.resume_gap_us,
        "alerts_fired": sum(
            1 for e in outcome.trace_events if e.name == "alert.fire"
        ),
        "wall_s": round(wall_s, 3),
    }


def bench_quorum() -> dict:
    from repro.experiments.extension_quorum import quorum_timeline
    from repro.obs.critpath import crosscheck_recovery_slo

    started = time.perf_counter()
    outcome = quorum_timeline()
    wall_s = time.perf_counter() - started

    slo = outcome.slo()
    decomposition = crosscheck_recovery_slo(outcome.trace_events, slo)
    scope = decomposition.scope(f"group.{outcome.downed_group}")
    verification = outcome.alerts()
    assert verification.ok, verification.render()
    tree = decomposition.trees[0]
    return {
        "downtime_us": scope.total_downtime_us,
        "view_us": scope.phase_totals.get("view", 0.0),
        "view_share": round(scope.share("view"), 4),
        "resume_gap_us": tree.resume_gap_us,
        "resume_commit_linked": int(tree.resume_commit_trace_id is not None),
        "alerts_fired": sum(
            1 for e in outcome.trace_events if e.name == "alert.fire"
        ),
        "wall_s": round(wall_s, 3),
    }


#: Regression-gated metrics. All simulated-time-derived and therefore
#: deterministic: the gate is effectively an equality check with the
#: standard 80% tolerance headroom.
GATES = {
    "sharding.downtime_us": "lower",
    "sharding.catchup_share": "higher",
    "sharding.resume_gap_us": "lower",
    "quorum.downtime_us": "lower",
    "quorum.view_share": "higher",
}

UNITS = {
    "sharding.downtime_us": "us",
    "sharding.detect_us": "us",
    "sharding.catchup_us": "us",
    "sharding.resume_gap_us": "us",
    "sharding.wall_s": "s",
    "quorum.downtime_us": "us",
    "quorum.view_us": "us",
    "quorum.resume_gap_us": "us",
    "quorum.wall_s": "s",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO / "BENCH_recovery.json"),
        help="where to write the measured report (default: repo root)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare the decomposition against a committed baseline "
        "JSON; exit 1 when any gated metric regresses",
    )
    args = parser.parse_args(argv)

    report = {"sharding": bench_sharding()}
    sharding = report["sharding"]
    print(
        f"[sharding] downtime {sharding['downtime_us']:.0f} us = detect "
        f"{sharding['detect_us']:.0f} + catchup {sharding['catchup_us']:.0f} "
        f"({sharding['catchup_share'] * 100:.1f}%), resume "
        f"+{sharding['resume_gap_us']:.0f} us, "
        f"{sharding['alerts_fired']} alert(s) fired"
    )
    report["quorum"] = bench_quorum()
    quorum = report["quorum"]
    print(
        f"[quorum] downtime {quorum['downtime_us']:.0f} us = view "
        f"{quorum['view_us']:.0f} ({quorum['view_share'] * 100:.1f}%), "
        f"resume +{quorum['resume_gap_us']:.0f} us "
        f"(commit linked: {bool(quorum['resume_commit_linked'])}), "
        f"{quorum['alerts_fired']} alert(s) fired"
    )

    return finalize("recovery", flatten_metrics(report, GATES, UNITS),
                    args.output, check_path=args.check)


if __name__ == "__main__":
    sys.exit(main())
