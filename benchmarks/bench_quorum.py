"""Wall-clock benchmark of the quorum subsystem.

Measures three things and writes them to the root ``BENCH_quorum.json``
(the perf-trajectory tracker reads root-level ``BENCH_*.json`` files):

* **repair** — Merkle anti-entropy throughput: MB/s of replica digest
  state reconciled per second, with the fastpath leaf comparator on
  versus the pure-python reference, on lightly and heavily diverged
  replica pairs.
* **read** — a driven (3, 2, 2) strict group: simulated quorum-read
  latency p50/p99 (deterministic) plus measured Python-side
  operations per second (informational).
* **experiment** — the full ``extension_quorum`` experiment end to
  end, shape checks included.

Usage::

    python benchmarks/bench_quorum.py                     # measure
    python benchmarks/bench_quorum.py --check BENCH_quorum.json

Reports are written in the canonical ``repro-bench-v1`` trajectory
format; ``--check BASELINE`` delegates to
``python -m repro.obs.bench compare`` and exits non-zero if the repair
speedup ratio fell below 80% of the committed baseline's — the CI
guard against quietly losing the kernel path in the repair loop.
"""

from __future__ import annotations

import argparse
import sys
import time

from _common import MB, REPO, finalize, flatten_metrics

#: Keys per replica in the repair benchmark (digest state is
#: ``keys * DIGEST_BYTES`` per side).
REPAIR_KEYS = 16384


# -- repair MB/s ------------------------------------------------------------


def _diverged_pair(divergence: float):
    from repro.quorum.store import Record, ReplicaStore
    from repro.quorum.versions import VersionVector

    a, b = ReplicaStore(REPAIR_KEYS), ReplicaStore(REPAIR_KEYS)
    stride = max(1, int(1.0 / divergence))
    for key in range(REPAIR_KEYS):
        record = Record(
            value=b"v%08d" % key, vv=VersionVector([(0, 1)]),
            ts_us=float(key), writer=0,
        )
        a.apply(key, record)
        if key % stride:
            b.apply(key, record)
        else:
            b.apply(key, Record(
                value=b"w%08d" % key, vv=VersionVector([(1, 1)]),
                ts_us=float(key) + 0.5, writer=1,
            ))
    return a, b


def _time_sync(divergence: float, repeats: int) -> float:
    from repro.quorum.merkle import anti_entropy_sync

    total = 0.0
    for _ in range(repeats):
        a, b = _diverged_pair(divergence)
        started = time.perf_counter()
        anti_entropy_sync(a, b, 8)
        total += time.perf_counter() - started
    return total


def bench_repair() -> dict:
    from repro import fastpath
    from repro.quorum.store import DIGEST_BYTES

    report = {}
    for label, divergence, repeats in (("sparse", 1 / 256, 5),
                                       ("dense", 1 / 4, 3)):
        # Digest state walked per sync: both replicas' full key range.
        volume_mb = 2 * REPAIR_KEYS * DIGEST_BYTES * repeats / MB
        fastpath.set_enabled(False)
        try:
            slow_s = _time_sync(divergence, repeats)
        finally:
            fastpath.set_enabled(True)
        fast_s = _time_sync(divergence, repeats)
        report[label] = {
            "reference_mb_per_s": round(volume_mb / slow_s, 1),
            "kernel_mb_per_s": round(volume_mb / fast_s, 1),
            "speedup": round(slow_s / fast_s, 2),
        }
    return report


# -- quorum-read latency ----------------------------------------------------


def bench_reads(operations: int = 4000) -> dict:
    from repro.quorum.group import QuorumGroup
    from repro.sim.engine import Simulator

    sim = Simulator()
    group = QuorumGroup(
        group_id=0, num_replicas=3, read_quorum=2, write_quorum=2,
        num_keys=64, sim=sim,
    )
    for key in range(64):
        group.write(key, b"seed-%d" % key)
    started = time.perf_counter()
    for index in range(operations):
        group.read(index % 64)
    wall_s = time.perf_counter() - started

    latencies = sorted(group.read_latencies[-operations:])
    p50 = latencies[operations // 2]
    p99 = latencies[int(operations * 0.99)]
    return {
        "operations": operations,
        "simulated_p50_us": round(p50, 3),
        "simulated_p99_us": round(p99, 3),
        "reads_per_s": round(operations / wall_s, 0),
    }


# -- end-to-end experiment --------------------------------------------------


def bench_experiment() -> dict:
    from repro.experiments import extension_quorum
    from repro.experiments.common import ExperimentContext, ExperimentSettings

    ctx = ExperimentContext(ExperimentSettings())
    started = time.perf_counter()
    result = extension_quorum.run(ctx)
    wall_s = time.perf_counter() - started
    result.check()
    loss = result.timeline.quorum_loss
    return {
        "wall_s": round(wall_s, 3),
        "downtime_us": loss.restored_at_us - loss.crash_at_us,
        "hints_delivered": result.comparison.hints_delivered,
        "checks": "passed",
    }


# -- report / main ----------------------------------------------------------

#: Regression-gated metrics (speedup ratios; higher is better).
GATES = {
    "repair.sparse.speedup": "higher",
    "repair.dense.speedup": "higher",
}

UNITS = {
    "repair.sparse.speedup": "x",
    "repair.dense.speedup": "x",
    "repair.sparse.kernel_mb_per_s": "MB/s",
    "repair.sparse.reference_mb_per_s": "MB/s",
    "repair.dense.kernel_mb_per_s": "MB/s",
    "repair.dense.reference_mb_per_s": "MB/s",
    "read.simulated_p50_us": "us",
    "read.simulated_p99_us": "us",
    "read.reads_per_s": "op/s",
    "experiment.wall_s": "s",
    "experiment.downtime_us": "us",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO / "BENCH_quorum.json"),
        help="where to write the measured report (default: repo root)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare the repair speedup against a committed baseline "
        "JSON; exit 1 on a >20%% regression",
    )
    parser.add_argument(
        "--skip-experiment", action="store_true",
        help="microbenchmarks only (quick local iteration)",
    )
    args = parser.parse_args(argv)

    report = {
        "repair": bench_repair(),
        "read": bench_reads(),
    }
    for label in ("sparse", "dense"):
        section = report["repair"][label]
        print(
            f"[repair {label}] reference "
            f"{section['reference_mb_per_s']:.1f} MB/s, kernel "
            f"{section['kernel_mb_per_s']:.1f} MB/s "
            f"({section['speedup']}x)"
        )
    read = report["read"]
    print(
        f"[read] simulated p50 {read['simulated_p50_us']:.1f} us, "
        f"p99 {read['simulated_p99_us']:.1f} us; "
        f"{read['reads_per_s']:.0f} reads/s wall"
    )
    if not args.skip_experiment:
        report["experiment"] = bench_experiment()
        exp = report["experiment"]
        print(
            f"[experiment] extension_quorum in {exp['wall_s']:.1f}s, "
            f"quorum downtime {exp['downtime_us']:.0f} us, "
            f"{exp['hints_delivered']} hints delivered"
        )

    return finalize("quorum", flatten_metrics(report, GATES, UNITS),
                    args.output, check_path=args.check)


if __name__ == "__main__":
    sys.exit(main())
