"""Extension benchmark: validate the SMP closed form by simulation."""

from conftest import once

from repro.experiments import extension_smp_sim


def test_extension_smp_sim(ctx, benchmark, emit):
    result = once(
        benchmark, lambda: extension_smp_sim.run(ctx, duration_us=15_000.0)
    )
    result.check()
    emit("extension_smp_sim", result.table().render())
