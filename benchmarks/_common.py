"""Shared plumbing for the benchmark scripts.

One place for the path bootstrap, the machine stanza, and the
``repro-bench-v1`` report assembly that used to be duplicated across
``bench_fastpath.py`` / ``bench_kernels.py`` / ``bench_quorum.py``.
Scripts keep measuring into plain nested dicts; :func:`finalize`
flattens them into the canonical schema (see :mod:`repro.obs.bench`),
writes the report, and runs the regression gate when ``--check`` was
given.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Mapping, Optional

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.obs import bench as obs_bench  # noqa: E402

MB = 1024 * 1024


def flatten_metrics(
    nested: Mapping[str, object],
    gates: Mapping[str, str] = (),
    units: Mapping[str, str] = (),
) -> Dict[str, Dict[str, object]]:
    """Dotted-name metric entries from a nested measurement dict.

    ``gates`` maps metric name -> direction (``higher``/``lower``) for
    the regression-checked subset; ``units`` annotates display units.
    """
    flat: Dict[str, float] = {}
    for key, value in nested.items():
        obs_bench._flatten(value, key, flat)
    gates = dict(gates)
    units = dict(units)
    return {
        name: obs_bench.metric(
            value,
            unit=units.get(name, ""),
            gate=name in gates,
            direction=gates.get(name, obs_bench.HIGHER),
        )
        for name, value in flat.items()
    }


def finalize(
    suite: str,
    metrics: Mapping[str, Mapping[str, object]],
    output: str,
    check_path: Optional[str] = None,
    gate: float = 0.8,
    note: Optional[str] = None,
) -> int:
    """Write the measured ``repro-bench-v1`` report; when
    ``check_path`` names a committed baseline, gate against it and
    return nonzero on regression."""
    report = obs_bench.make_report(
        suite, metrics, machine=obs_bench.machine_stanza(note))
    obs_bench.save_report(report, output)
    print(f"[report written to {output}]")
    if check_path:
        failures = obs_bench.compare_reports(
            obs_bench.load_report(check_path), report, gate=gate)
        return 1 if failures else 0
    return 0
