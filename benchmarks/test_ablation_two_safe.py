"""Ablation: closing the 1-safe window with a 2-safe commit costs one
SAN round trip per transaction."""

from conftest import once

from repro.experiments import ablations
from repro.perf.report import ReportTable


def test_ablation_two_safe(ctx, benchmark, emit):
    result = once(benchmark, lambda: ablations.run(ctx))
    result.check()
    table = ReportTable(
        "Ablation: 1-safe vs 2-safe commit (txns/sec)",
        ["configuration", "Debit-Credit", "Order-Entry"],
    )
    for name in ("active", "active-2safe"):
        table.add_row(
            name,
            result.rows[name]["debit-credit"],
            result.rows[name]["order-entry"],
        )
    table.add_note(
        "the paper accepts a few-microsecond loss window; this is what "
        "closing it would cost"
    )
    emit("ablation_two_safe", table.render())
