"""Table 2: traffic breakdown of the straightforward implementation —
metadata dominates."""

from conftest import once

from repro.experiments import table1_2


def test_table2_traffic(ctx, benchmark, emit):
    result = once(benchmark, lambda: table1_2.run(ctx))
    result.check()
    emit("table2", result.table2().render())
