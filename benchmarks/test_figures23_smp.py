"""Figures 2 and 3: SMP-primary scaling, 1-4 CPUs per protocol."""

from conftest import once

from repro.experiments import figures2_3


def test_figures23_smp(ctx, benchmark, emit):
    result = once(benchmark, lambda: figures2_3.run(ctx))
    result.check()
    emit(
        "figures2_3",
        result.figure("debit-credit") + "\n\n" + result.figure("order-entry"),
    )
