"""Extension benchmark: conclusion robustness across the calibration
grid."""

from conftest import once

from repro.experiments import extension_sensitivity


def test_extension_sensitivity(ctx, benchmark, emit):
    result = once(benchmark, lambda: extension_sensitivity.run(ctx))
    result.check()
    emit("extension_sensitivity", result.table().render())
