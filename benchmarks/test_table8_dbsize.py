"""Table 8: active-backup throughput at 10 MB / 100 MB / 1 GB."""

from conftest import once

from repro.experiments import table8


def test_table8_dbsize(ctx, benchmark, emit):
    result = once(benchmark, lambda: table8.run(ctx))
    result.check()
    emit("table8", result.table().render())
