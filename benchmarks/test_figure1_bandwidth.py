"""Figure 1: effective Memory Channel bandwidth vs packet size."""

from conftest import once

from repro.experiments import figure1


def test_figure1_bandwidth(benchmark, emit):
    result = once(benchmark, lambda: figure1.run(region_bytes=1 << 18))
    result.check()
    emit("figure1", result.table().render())
