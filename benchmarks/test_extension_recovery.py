"""Extension benchmark: recovery time and availability per design."""

from conftest import once

from repro.experiments import extension_recovery

MB = 1024 * 1024


def test_extension_recovery(benchmark, emit):
    result = once(benchmark, lambda: extension_recovery.run(db_bytes=8 * MB))
    result.check()
    emit("extension_recovery", result.table().render())
