"""Extension benchmark: sharded scaling and single-shard failover.

Asserts, at full fidelity, the two sharding claims: near-linear
aggregate throughput over disjoint shards (1 -> 4 pairs on dedicated
links), and a single-shard crash that degrades aggregate throughput to
(n-1)/n during the takeover window rather than to zero. The failover
timeline is additionally asserted to be bit-for-bit deterministic
under the fixed seed.

Set ``REPRO_TRACE_DIR=somewhere`` to additionally dump the failover
run's JSONL trace and its rendered timeline there (CI uploads them as
artifacts).
"""

import os
from pathlib import Path

from conftest import once

from repro.experiments import extension_sharding
from repro.obs import write_jsonl


def test_extension_sharding(ctx, benchmark, emit):
    result = once(benchmark, lambda: extension_sharding.run(ctx))
    result.check()

    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if trace_dir:
        out = Path(trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        write_jsonl(
            out / "extension_sharding.trace.jsonl",
            result.timeline.trace_events,
        )
        (out / "extension_sharding.timeline.txt").write_text(
            result.timeline.trace_report().render() + "\n"
        )

    # Acceptance: near-linear 1 -> 4 on dedicated links...
    by_shards = {r.shards: r for r in result.scaling}
    assert by_shards[4].dedicated_tps >= 3.6 * by_shards[1].dedicated_tps
    # ...and the crash costs ~1/N, not everything.
    timeline = result.timeline
    for sample in timeline.outage_slots():
        assert sample.completed == timeline.degraded_per_slot
        assert sample.completed > 0

    # Determinism: replaying the timeline under the same seed
    # reproduces every slot exactly.
    replay = extension_sharding.failover_timeline(seed=ctx.settings.seed)
    assert replay.samples == timeline.samples
    assert replay.router_stats == timeline.router_stats

    emit(
        "extension_sharding",
        result.table().render() + "\n\n" + result.timeline_figure(),
    )
