"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at
full fidelity, asserts its shape checks, times the underlying driven
measurement with pytest-benchmark, and writes the rendered
paper-versus-measured table to ``benchmarks/results/``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentContext, ExperimentSettings

MB = 1024 * 1024

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """Full-fidelity shared context; runs are cached across benchmarks."""
    return ExperimentContext(
        ExperimentSettings(
            transactions=1200, warmup=100, allocated_db_bytes=8 * MB
        )
    )


@pytest.fixture(scope="session")
def emit():
    """Write a rendered table to the results directory and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        sys.stdout.write("\n" + text + "\n")

    return _emit


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    The experiments are deterministic and cache-backed, so repeated
    timing rounds would only measure the cache.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
