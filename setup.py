"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` for the
PEP 517 editable path; this shim lets pip fall back to the legacy
``setup.py develop`` route (``--no-use-pep517``) on offline machines.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
