"""The redo-log circular buffer: wire format, wraparound, flow control."""

import pytest

from repro.errors import RedoLogFullError
from repro.memory.region import MemoryRegion, WriteCategory
from repro.memory.rio import RioMemory
from repro.san.memory_channel import MemoryChannelInterface
from repro.replication.redo_log import (
    RedoLogApplier,
    RedoLogProducer,
    RedoRecord,
    RedoTransaction,
)


def make_ring(ring_bytes=256, db_bytes=1024):
    backup = RioMemory("backup")
    ring = backup.create_region("ring", ring_bytes + 8)
    backup_db = backup.create_region("db", db_bytes)
    primary = RioMemory("primary")
    consumer = primary.create_region("consumer", 8)
    primary_if = MemoryChannelInterface("primary")
    backup_if = MemoryChannelInterface("backup")
    producer = RedoLogProducer(primary_if.map_remote(ring), consumer)
    applier = RedoLogApplier(ring, backup_db, backup_if.map_remote(consumer))
    return producer, applier, backup_db


def txn(*records):
    return RedoTransaction(tuple(RedoRecord(o, d) for o, d in records))


def test_publish_and_apply_one_transaction():
    producer, applier, db = make_ring()
    assert producer.try_publish(txn((10, b"hello")))
    assert applier.apply_available() == 1
    assert db.read(10, 5) == b"hello"
    assert applier.transactions_applied == 1
    assert applier.records_applied == 1


def test_multi_record_transaction_applies_in_order():
    producer, applier, db = make_ring()
    producer.try_publish(txn((0, b"aaaa"), (0, b"bbbb"), (8, b"cc")))
    applier.apply_available()
    assert db.read(0, 4) == b"bbbb"  # later record wins
    assert db.read(8, 2) == b"cc"


def test_backup_sees_nothing_until_pointer_advances():
    producer, applier, _db = make_ring()
    assert applier.apply_available() == 0
    producer.try_publish(txn((0, b"x")))
    assert applier.apply_available() == 1


def test_ring_wraparound():
    producer, applier, db = make_ring(ring_bytes=64)
    for index in range(40):
        payload = bytes([index % 251 + 1]) * 8
        assert producer.try_publish(txn((index % 100, payload)))
        assert applier.apply_available() == 1
    assert producer.produced > 64  # wrapped several times


def test_producer_blocks_when_ring_full():
    producer, applier, _db = make_ring(ring_bytes=64)
    assert producer.try_publish(txn((0, b"\x01" * 30)))
    # Without the backup draining, the next publish must refuse.
    assert not producer.try_publish(txn((0, b"\x01" * 30)))
    assert producer.blocked_publishes == 1
    applier.apply_available()
    assert producer.try_publish(txn((0, b"\x01" * 30)))


def test_publish_with_drain_callback_unblocks():
    producer, applier, db = make_ring(ring_bytes=64)
    producer.publish(txn((0, b"\x01" * 30)), drain=applier.apply_available)
    producer.publish(txn((32, b"\x02" * 30)), drain=applier.apply_available)
    applier.apply_available()
    assert db.read(32, 30) == b"\x02" * 30


def test_publish_without_drain_raises_when_full():
    producer, _applier, _db = make_ring(ring_bytes=64)
    producer.try_publish(txn((0, b"\x01" * 30)))
    with pytest.raises(RedoLogFullError):
        producer.publish(txn((0, b"\x01" * 30)))


def test_oversized_transaction_rejected_outright():
    producer, _applier, _db = make_ring(ring_bytes=64)
    with pytest.raises(RedoLogFullError):
        producer.try_publish(txn((0, b"\x01" * 100)))


def test_traffic_categories():
    producer, applier, _db = make_ring()
    interface = producer.mapping.interface
    interface.reset_stats()
    producer.try_publish(txn((0, b"\x01" * 20)))
    by_category = interface.bytes_by_category
    assert by_category[WriteCategory.MODIFIED] == 20
    # count (4) + header (8) + producer pointer (8, written once at
    # publish) = 20 bytes of metadata.
    assert by_category[WriteCategory.META] == 20


def test_consumer_ack_flows_backwards():
    producer, applier, _db = make_ring()
    producer.try_publish(txn((0, b"abc")))
    applier.apply_available()
    assert producer.consumed == producer.produced
    assert applier.consumer_mapping.interface.bytes_sent == 8


def test_free_bytes_accounting():
    producer, applier, _db = make_ring(ring_bytes=128)
    capacity = producer.capacity
    assert producer.free_bytes() == capacity
    producer.try_publish(txn((0, b"\x01" * 20)))
    assert producer.free_bytes() == capacity - (4 + 8 + 20)
    applier.apply_available()
    assert producer.free_bytes() == capacity


def test_wire_bytes():
    t = txn((0, b"12345"), (10, b"6789"))
    assert t.wire_bytes() == 4 + (8 + 5) + (8 + 4)
    assert t.records[0].length == 5


def test_empty_transaction_is_legal():
    producer, applier, _db = make_ring()
    assert producer.try_publish(txn())
    assert applier.apply_available() == 1


def test_record_spanning_ring_boundary():
    producer, applier, db = make_ring(ring_bytes=64)
    # Advance the cursor so the next payload straddles the wrap point.
    producer.publish(txn((0, b"\x01" * 25)), drain=applier.apply_available)
    producer.publish(txn((30, b"WRAPAROUND!!")), drain=applier.apply_available)
    applier.apply_available()
    assert db.read(30, 12) == b"WRAPAROUND!!"
