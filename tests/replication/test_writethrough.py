"""Write-through bindings: write doubling keeps the backup's twin
regions byte-identical to the primary's."""

from repro.memory.region import MemoryRegion, WriteCategory
from repro.memory.rio import RioMemory
from repro.san.memory_channel import MemoryChannelInterface
from repro.replication.writethrough import ReplicaBinding, WriteThroughReplica


def make_replica():
    interface = MemoryChannelInterface("primary")
    backup = RioMemory("backup")
    return interface, WriteThroughReplica(interface, backup)


def test_bound_region_mirrors_every_write():
    interface, replica = make_replica()
    local = MemoryRegion("db", 256)
    replica.bind(local, "db")
    local.write(10, b"doubled")
    assert replica.backup_regions["db"].read(10, 7) == b"doubled"


def test_category_preserved_in_traffic_accounting():
    interface, replica = make_replica()
    local = MemoryRegion("db", 256)
    replica.bind(local, "db")
    local.write(0, b"abcd", WriteCategory.UNDO)
    assert interface.bytes_by_category[WriteCategory.UNDO] == 4


def test_fragmented_binding_emits_word_packets():
    interface, replica = make_replica()
    local = MemoryRegion("mirror", 256)
    replica.bind(local, "mirror", fragmented=True)
    local.write(0, b"\x01" * 16)
    assert interface.trace.histogram == {4: 4}
    assert replica.backup_regions["mirror"].read(0, 16) == b"\x01" * 16


def test_unfragmented_binding_coalesces():
    interface, replica = make_replica()
    local = MemoryRegion("ulog", 256)
    replica.bind(local, "ulog")
    local.write(0, b"\x01" * 16)
    interface.barrier()
    assert interface.trace.histogram == {16: 1}


def test_bind_all_with_fragment_set():
    interface, replica = make_replica()
    regions = {
        "db": MemoryRegion("db", 128),
        "mirror": MemoryRegion("mirror", 128),
    }
    replica.bind_all(regions, ["db", "mirror"], fragmented_names=("mirror",))
    fragmented = {binding.local.name: binding.fragmented
                  for binding in replica.bindings}
    assert fragmented == {"db": False, "mirror": True}


def test_sync_initial_copies_without_traffic():
    interface, replica = make_replica()
    local = MemoryRegion("db", 64)
    local.poke(0, b"image")
    replica.bind(local, "db")
    replica.sync_initial({"db": local})
    assert replica.backup_regions["db"].read(0, 5) == b"image"
    assert interface.bytes_sent == 0  # mapping-time copy is free


def test_detach_stops_doubling():
    _interface, replica = make_replica()
    local = MemoryRegion("db", 64)
    replica.bind(local, "db")
    replica.detach_all()
    local.write(0, b"after")
    assert replica.backup_regions["db"].read(0, 5) == b"\x00" * 5


def test_detach_is_safe_after_observer_cleared():
    _interface, replica = make_replica()
    local = MemoryRegion("db", 64)
    binding = replica.bind(local, "db")
    local._observers.clear()  # what a node crash does
    binding.detach()  # must not raise


def test_twin_region_reuses_existing():
    _interface, replica = make_replica()
    first = replica.twin_region("db", 64)
    second = replica.twin_region("db", 64)
    assert first is second


def test_forwarded_write_counter():
    _interface, replica = make_replica()
    local = MemoryRegion("db", 64)
    binding = replica.bind(local, "db")
    local.write(0, b"a")
    local.write(1, b"b")
    assert binding.forwarded_writes == 2
