"""The active-backup system: redo shipping, failover, the 1-safe
window, write coalescing of the redo stream."""

import pytest

from repro.errors import FailoverError
from repro.replication.active import ActiveReplicatedSystem, coalesce_writes
from repro.replication.commit_safety import CommitSafety
from repro.vista import EngineConfig

CONFIG = EngineConfig(db_bytes=64 * 1024, log_bytes=32 * 1024)


def make(ring_bytes=4096, **kwargs):
    return ActiveReplicatedSystem(CONFIG, ring_bytes=ring_bytes, **kwargs)


def run_txns(system, count=5, width=16):
    for index in range(count):
        system.begin_transaction()
        offset = index * 64
        system.set_range(offset, width)
        system.write(offset, bytes([index + 1]) * width)
        system.commit_transaction()


def test_backup_database_tracks_commits():
    system = make()
    system.sync_initial()
    run_txns(system, 5)
    for index in range(5):
        assert system.backup_db.read(index * 64, 16) == bytes([index + 1]) * 16


def test_failover_preserves_committed_state():
    system = make()
    system.sync_initial()
    run_txns(system, 5)
    system.begin_transaction()
    system.set_range(0, 8)
    system.write(0, b"UNCOMMIT")
    system.fail_primary()
    backup = system.failover()
    assert backup.read(0, 16) == b"\x01" * 16


def test_uncommitted_writes_never_reach_backup():
    system = make()
    system.sync_initial()
    system.begin_transaction()
    system.set_range(0, 8)
    system.write(0, b"dirtydat")
    assert system.backup_db.read(0, 8) == b"\x00" * 8
    system.abort_transaction()
    assert system.backup_db.read(0, 8) == b"\x00" * 8


def test_one_safe_window_loses_unpublished_commit():
    system = make()
    system.sync_initial()
    system.begin_transaction()
    system.set_range(0, 4)
    system.write(0, b"SAFE")
    system.commit_transaction()
    system.begin_transaction()
    system.set_range(8, 4)
    system.write(8, b"LOST")
    system.commit_transaction_losing_publish()
    backup = system.failover()
    assert backup.read(0, 4) == b"SAFE"
    assert backup.read(8, 4) == b"\x00" * 4  # the 1-safe window
    assert system.lost_window_transactions == 1


def test_ring_exercises_wraparound_and_blocking():
    system = make(ring_bytes=128, auto_apply=False)
    system.sync_initial()
    run_txns(system, 30)  # far more data than the ring holds
    system.applier.apply_available()
    assert system.backup_db.read(29 * 64, 16) == bytes([30]) * 16
    assert system.producer.blocked_publishes > 0


def test_redo_stream_coalesces_into_large_packets():
    system = make()
    system.sync_initial()
    run_txns(system, 20, width=24)
    mean = system.primary_interface.trace.mean_packet_bytes()
    assert mean > 16.0, f"redo stream should ride large packets, got {mean}"


def test_undo_data_never_shipped():
    system = make()
    system.sync_initial()
    run_txns(system, 10)
    assert "undo" not in system.traffic_bytes_by_category


def test_redo_records_coalesce_adjacent_writes():
    system = make()
    system.sync_initial()
    system.begin_transaction()
    system.set_range(0, 16)
    system.write(0, b"\x01" * 8)
    system.write(8, b"\x02" * 8)  # adjacent: one redo record
    system.commit_transaction()
    assert system.redo_records_shipped == 1
    assert system.backup_db.read(0, 16) == b"\x01" * 8 + b"\x02" * 8


def test_rewrite_of_same_bytes_ships_once_with_final_value():
    system = make()
    system.sync_initial()
    system.begin_transaction()
    system.set_range(0, 8)
    system.write(0, b"AAAAAAAA")
    system.write(0, b"BBBBBBBB")
    system.commit_transaction()
    assert system.redo_records_shipped == 1
    assert system.backup_db.read(0, 8) == b"BBBBBBBB"


def test_two_safe_waits_for_backup():
    system = make(safety=CommitSafety.TWO_SAFE)
    system.sync_initial()
    run_txns(system, 3)
    # Under 2-safe every commit has been applied before returning.
    assert system.applier.transactions_applied == 3


def test_double_failover_rejected():
    system = make()
    system.sync_initial()
    system.fail_primary()
    system.failover()
    with pytest.raises(FailoverError):
        system.failover()


def test_backup_can_serve_after_takeover():
    system = make()
    system.sync_initial()
    run_txns(system, 2)
    system.fail_primary()
    backup = system.failover()
    backup.begin_transaction()
    backup.set_range(0, 8)
    backup.write(0, b"newlife!")
    backup.commit_transaction()
    assert backup.read(0, 8) == b"newlife!"


def test_ack_bytes_counted_separately():
    system = make()
    system.sync_initial()
    run_txns(system, 4)
    assert system.ack_bytes == 4 * 8
    assert system.ack_bytes not in system.traffic_bytes_by_category.values()


class TestCoalesceWrites:
    def test_empty(self):
        assert coalesce_writes([]) == []

    def test_disjoint_kept(self):
        assert coalesce_writes([(0, 4), (10, 4)]) == [(0, 4), (10, 4)]

    def test_adjacent_merged(self):
        assert coalesce_writes([(0, 4), (4, 4)]) == [(0, 8)]

    def test_overlapping_merged(self):
        assert coalesce_writes([(0, 8), (4, 8)]) == [(0, 12)]

    def test_contained_absorbed(self):
        assert coalesce_writes([(0, 16), (4, 4)]) == [(0, 16)]

    def test_unsorted_input(self):
        assert coalesce_writes([(10, 4), (0, 4), (14, 4)]) == [(0, 4), (10, 8)]
