"""Recovery-time and availability model (extension)."""

import pytest

from repro.replication.recovery_time import (
    MEMCPY_BYTES_PER_US,
    REBOOT_US,
    RecoveryProfile,
    availability,
    nines,
    profiles_for,
)

MB = 1024 * 1024


def test_takeover_time_components():
    profile = RecoveryProfile("x", detection_us=1000.0,
                              bytes_to_restore=3000.0)
    assert profile.takeover_us() == pytest.approx(
        1000.0 + 3000.0 / MEMCPY_BYTES_PER_US
    )


def test_reboot_dominates_standalone():
    profile = RecoveryProfile("standalone", detection_us=0.0,
                              bytes_to_restore=64.0, needs_reboot=True)
    assert profile.takeover_us() >= REBOOT_US


def test_profiles_for_designs():
    profiles = profiles_for(
        db_bytes=50 * MB, live_undo_bytes=100.0,
        ring_backlog_bytes=5000.0,
    )
    assert set(profiles) == {
        "standalone (Vista)",
        "passive v0 (undo rollback)",
        "passive v1/v2 (mirror restore)",
        "passive v3 (log rollback)",
        "active (drain redo ring)",
    }
    mirror = profiles["passive v1/v2 (mirror restore)"]
    log = profiles["passive v3 (log rollback)"]
    assert mirror.bytes_to_restore == 50 * MB
    # Strip detection to compare pure restore work: the whole-database
    # copy is orders of magnitude more than a one-transaction rollback.
    mirror_work = mirror.takeover_us() - mirror.detection_us
    log_work = log.takeover_us() - log.detection_us
    assert mirror_work > 1000 * log_work


def test_mirror_restore_scales_with_db_size():
    small = profiles_for(10 * MB, 100.0, 0.0)["passive v1/v2 (mirror restore)"]
    large = profiles_for(100 * MB, 100.0, 0.0)["passive v1/v2 (mirror restore)"]
    assert large.takeover_us() > 5 * small.takeover_us()


def test_availability_basics():
    assert availability(0.0) == 1.0
    day = 24 * 3600.0
    # 1 second of downtime per 1-day MTBF.
    value = availability(1e6, mtbf_seconds=day)
    assert value == pytest.approx(day / (day + 1.0))


def test_nines():
    assert nines(0.999) == pytest.approx(3.0)
    assert nines(0.99999) == pytest.approx(5.0)
    assert nines(1.0) == float("inf")


def test_replication_buys_many_nines():
    standalone = RecoveryProfile("s", 0.0, 64.0, needs_reboot=True)
    replicated = RecoveryProfile("r", 5000.0, 64.0)
    gap = nines(availability(replicated.takeover_us())) - nines(
        availability(standalone.takeover_us())
    )
    assert gap > 3.0  # detection-bounded failover vs a reboot
