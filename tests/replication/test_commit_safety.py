"""Commit-safety levels and their latency implications."""

import pytest

from repro.hardware.specs import MEMORY_CHANNEL_II
from repro.replication.commit_safety import CommitSafety


def test_one_safe_adds_no_latency():
    assert CommitSafety.ONE_SAFE.extra_commit_latency_us(MEMORY_CHANNEL_II) == 0.0


def test_two_safe_costs_a_round_trip():
    extra = CommitSafety.TWO_SAFE.extra_commit_latency_us(MEMORY_CHANNEL_II)
    assert extra == pytest.approx(2 * 3.3)


def test_values_match_gray_reuter_terminology():
    assert CommitSafety.ONE_SAFE.value == "1-safe"
    assert CommitSafety.TWO_SAFE.value == "2-safe"
