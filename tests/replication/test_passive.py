"""Passive-backup systems: per-version replicated sets, failover
recovery to the last committed state, traffic characteristics."""

import pytest

from repro.errors import FailoverError
from repro.replication.passive import PassiveReplicatedSystem
from repro.vista import ENGINE_VERSIONS, EngineConfig

CONFIG = EngineConfig(db_bytes=64 * 1024, log_bytes=32 * 1024, range_records=64)
ALL_VERSIONS = list(ENGINE_VERSIONS)


def run_txns(system, count=5, width=16):
    for index in range(count):
        system.begin_transaction()
        offset = index * 64
        system.set_range(offset, width)
        system.write(offset, bytes([index + 1]) * width)
        system.commit_transaction()


@pytest.fixture(params=ALL_VERSIONS)
def version(request):
    return request.param


def test_failover_preserves_all_committed_transactions(version):
    system = PassiveReplicatedSystem(version, CONFIG)
    system.sync_initial()
    run_txns(system, 5)
    system.fail_primary()
    backup = system.failover()
    for index in range(5):
        assert backup.read(index * 64, 16) == bytes([index + 1]) * 16


def test_failover_rolls_back_uncommitted_transaction(version):
    system = PassiveReplicatedSystem(version, CONFIG)
    system.initialize_data(0, b"X" * 16)
    system.sync_initial()
    run_txns(system, 3)
    system.begin_transaction()
    system.set_range(0, 16)
    system.write(0, b"Z" * 16)  # never committed
    system.fail_primary()
    backup = system.failover()
    assert backup.read(0, 16) == b"\x01" * 16  # txn 0's committed value


def test_failover_after_abort(version):
    system = PassiveReplicatedSystem(version, CONFIG)
    system.initialize_data(0, b"base")
    system.sync_initial()
    system.begin_transaction()
    system.set_range(0, 4)
    system.write(0, b"junk")
    system.abort_transaction()
    system.fail_primary()
    backup = system.failover()
    assert backup.read(0, 4) == b"base"


def test_double_failover_rejected(version):
    system = PassiveReplicatedSystem(version, CONFIG)
    system.sync_initial()
    system.fail_primary()
    system.failover()
    with pytest.raises(FailoverError):
        system.failover()


def test_backup_engine_can_serve_transactions(version):
    system = PassiveReplicatedSystem(version, CONFIG)
    system.sync_initial()
    run_txns(system, 2)
    system.fail_primary()
    backup = system.failover()
    backup.begin_transaction()
    backup.set_range(0, 8)
    backup.write(0, b"newprim!")
    backup.commit_transaction()
    assert backup.read(0, 8) == b"newprim!"


def test_replicated_region_set_matches_version(version):
    system = PassiveReplicatedSystem(version, CONFIG)
    expected = set(ENGINE_VERSIONS[version].REPLICATED)
    assert set(system.replicated_names) == expected


def test_mirror_versions_do_not_ship_range_array():
    system = PassiveReplicatedSystem("v1", CONFIG)
    system.sync_initial()
    run_txns(system, 3)
    mapped = {mapping.name for mapping in system.interface.mappings}
    assert "ranges" not in mapped
    assert "mirror" in mapped


def test_ship_undo_log_ablation_ships_range_array():
    system = PassiveReplicatedSystem("v1", CONFIG, ship_undo_log=True)
    system.sync_initial()
    run_txns(system, 3)
    mapped = {mapping.name for mapping in system.interface.mappings}
    assert "ranges" in mapped
    # And failover then uses ordinary recovery, not a full restore.
    system.begin_transaction()
    system.set_range(0, 8)
    system.write(0, b"junkjunk")
    system.fail_primary()
    backup = system.failover()
    assert backup.read(0, 8) == b"\x01" * 8


def test_v0_ships_heap_metadata():
    system = PassiveReplicatedSystem("v0", CONFIG)
    system.sync_initial()
    run_txns(system, 5)
    traffic = system.traffic_bytes_by_category
    assert traffic["meta"] > traffic["modified"] + traffic["undo"]


def test_v3_traffic_has_no_mirror_fragmentation():
    """V3's undo stream must coalesce (its packets are much larger on
    average than V1's for identical transactions)."""
    results = {}
    for version in ("v1", "v3"):
        system = PassiveReplicatedSystem(version, CONFIG)
        system.sync_initial()
        run_txns(system, 10)
        results[version] = system.interface.trace.mean_packet_bytes()
    assert results["v3"] > 1.5 * results["v1"]


def test_commit_is_one_safe_not_blocking():
    """Commit must not wait for anything from the backup: there is no
    acknowledgment path at all in the passive scheme."""
    system = PassiveReplicatedSystem("v3", CONFIG)
    system.sync_initial()
    run_txns(system, 1)
    # The backup has the data purely via write-through.
    assert system.backup_rio.get_region("db").read(0, 16) == b"\x01" * 16


def test_operations_after_crash_raise():
    from repro.errors import CrashedError

    system = PassiveReplicatedSystem("v3", CONFIG)
    system.sync_initial()
    system.fail_primary()
    with pytest.raises(CrashedError):
        run_txns(system, 1)
