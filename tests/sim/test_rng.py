"""Seeded RNG helpers: determinism and independence."""

from repro.sim.rng import SeedSequence, make_rng, zipf_like


def test_same_seed_same_stream():
    a = make_rng(123)
    b = make_rng(123)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_child_seeds_are_stable():
    seq = SeedSequence(42)
    assert seq.child_seed("driver") == seq.child_seed("driver")


def test_child_seeds_differ_by_name():
    seq = SeedSequence(42)
    assert seq.child_seed("driver") != seq.child_seed("workload")


def test_child_seeds_differ_by_root():
    assert SeedSequence(1).child_seed("x") != SeedSequence(2).child_seed("x")


def test_order_independence():
    seq_a = SeedSequence(7)
    first = seq_a.child_seed("a")
    seq_b = SeedSequence(7)
    seq_b.child_seed("zzz")
    assert seq_b.child_seed("a") == first


def test_rng_streams_reproducible():
    values_1 = [SeedSequence(9).rng("w").random() for _ in range(1)]
    values_2 = [SeedSequence(9).rng("w").random() for _ in range(1)]
    assert values_1 == values_2


def test_spawn_creates_namespaced_children():
    root = SeedSequence(5)
    child = root.spawn("cluster")
    assert child.child_seed("node") != root.child_seed("node")


def test_zipf_like_uniform_covers_range():
    rng = make_rng(3)
    values = set()
    gen = zipf_like(rng, 10)
    for _ in range(1000):
        values.add(next(gen))
    assert values == set(range(10))


def test_zipf_like_skewed_prefers_low_indices():
    rng = make_rng(3)
    gen = zipf_like(rng, 1000, skew=0.9)
    samples = [next(gen) for _ in range(2000)]
    assert all(0 <= value < 1000 for value in samples)
    low = sum(1 for value in samples if value < 100)
    assert low > len(samples) * 0.5


def test_zipf_like_rejects_empty_domain():
    import pytest

    with pytest.raises(ValueError):
        next(zipf_like(make_rng(0), 0))
