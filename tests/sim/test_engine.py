"""Simulator: the discrete-event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_runs_events_in_order_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule_at(2.0, lambda: seen.append(("b", sim.now)))
    sim.schedule_at(1.0, lambda: seen.append(("a", sim.now)))
    sim.run()
    assert seen == [("a", 1.0), ("b", 2.0)]
    assert sim.now == 2.0


def test_schedule_after_is_relative():
    sim = Simulator(10.0)
    seen = []
    sim.schedule_after(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [15.0]


def test_schedule_in_past_rejected():
    sim = Simulator(10.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(9.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_after(-1.0, lambda: None)


def test_events_can_schedule_events():
    sim = Simulator()
    seen = []

    def first():
        seen.append("first")
        sim.schedule_after(1.0, lambda: seen.append("second"))

    sim.schedule_at(1.0, first)
    sim.run()
    assert seen == ["first", "second"]
    assert sim.now == 2.0


def test_run_until_stops_and_advances_exactly():
    sim = Simulator()
    seen = []
    sim.schedule_at(1.0, lambda: seen.append(1))
    sim.schedule_at(5.0, lambda: seen.append(5))
    sim.run(until=3.0)
    assert seen == [1]
    assert sim.now == 3.0
    sim.run()
    assert seen == [1, 5]


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_max_events():
    sim = Simulator()
    seen = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule_at(t, lambda t=t: seen.append(t))
    sim.run(max_events=2)
    assert seen == [1.0, 2.0]


def test_step_returns_false_when_drained():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule_at(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for t in range(5):
        sim.schedule_at(float(t), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        sim.run()

    sim.schedule_at(1.0, reenter)
    with pytest.raises(SimulationError):
        sim.run()


def test_cancelled_event_not_executed():
    sim = Simulator()
    seen = []
    event = sim.schedule_at(1.0, lambda: seen.append("x"))
    event.cancel()
    sim.run()
    assert seen == []
