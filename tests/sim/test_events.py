"""EventQueue: deterministic ordering and cancellation."""

from repro.sim.events import EventQueue


def test_pop_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append(3))
    queue.push(1.0, lambda: fired.append(1))
    queue.push(2.0, lambda: fired.append(2))
    while queue:
        queue.pop().action()
    assert fired == [1, 2, 3]


def test_ties_break_by_insertion_order():
    queue = EventQueue()
    fired = []
    for index in range(10):
        queue.push(5.0, lambda i=index: fired.append(i))
    while queue:
        queue.pop().action()
    assert fired == list(range(10))


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    drop.cancel()
    while queue:
        queue.pop().action()
    assert fired == ["keep"]
    assert keep.cancelled is False


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 2.0


def test_peek_time_empty():
    assert EventQueue().peek_time() is None


def test_len_and_bool():
    queue = EventQueue()
    assert not queue
    queue.push(1.0, lambda: None)
    assert queue
    assert len(queue) == 1


def test_clear():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.clear()
    assert queue.pop() is None


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None
