"""Event queues: deterministic ordering, cancellation, pop_until.

Every test runs against both implementations — the reference tuple
heap and the bucketed wheel — which must be behaviorally identical.
"""

import pytest

import repro.fastpath
from repro.sim.events import (
    BucketedEventQueue,
    EventQueue,
    SHAPE_IRREGULAR,
    SHAPE_SHARED,
    default_event_queue,
)


@pytest.fixture(params=[EventQueue, BucketedEventQueue])
def queue_cls(request):
    return request.param


def test_pop_in_time_order(queue_cls):
    queue = queue_cls()
    fired = []
    queue.push(3.0, lambda: fired.append(3))
    queue.push(1.0, lambda: fired.append(1))
    queue.push(2.0, lambda: fired.append(2))
    while queue:
        queue.pop().action()
    assert fired == [1, 2, 3]


def test_ties_break_by_insertion_order(queue_cls):
    queue = queue_cls()
    fired = []
    for index in range(10):
        queue.push(5.0, lambda i=index: fired.append(i))
    while queue:
        queue.pop().action()
    assert fired == list(range(10))


def test_cancelled_events_are_skipped(queue_cls):
    queue = queue_cls()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    drop.cancel()
    while queue:
        queue.pop().action()
    assert fired == ["keep"]
    assert keep.cancelled is False


def test_peek_time_skips_cancelled(queue_cls):
    queue = queue_cls()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 2.0


def test_peek_time_empty(queue_cls):
    assert queue_cls().peek_time() is None


def test_len_and_bool(queue_cls):
    queue = queue_cls()
    assert not queue
    queue.push(1.0, lambda: None)
    assert queue
    assert len(queue) == 1


def test_clear(queue_cls):
    queue = queue_cls()
    queue.push(1.0, lambda: None)
    queue.clear()
    assert queue.pop() is None


def test_pop_empty_returns_none(queue_cls):
    assert queue_cls().pop() is None


def test_pop_until_pops_only_due_events(queue_cls):
    queue = queue_cls()
    queue.push(1.0, lambda: None, name="a")
    queue.push(2.0, lambda: None, name="b")
    queue.push(4.0, lambda: None, name="c")
    assert queue.pop_until(2.0).name == "a"
    assert queue.pop_until(2.0).name == "b"
    assert queue.pop_until(2.0) is None
    assert len(queue) == 1  # "c" untouched
    assert queue.pop_until(None).name == "c"


def test_pop_until_skips_cancelled_and_stops_at_bound(queue_cls):
    queue = queue_cls()
    first = queue.push(1.0, lambda: None, name="a")
    queue.push(3.0, lambda: None, name="b")
    first.cancel()
    assert queue.pop_until(2.0) is None
    assert queue.pop_until(3.0).name == "b"


def test_pop_until_empty_queue(queue_cls):
    assert queue_cls().pop_until(5.0) is None
    assert queue_cls().pop_until(None) is None


def test_same_time_bucket_grows_and_drains(queue_cls):
    queue = queue_cls()
    fired = []
    for index in range(5):
        queue.push(2.0, lambda i=index: fired.append(i))
    queue.push(1.0, lambda: fired.append("early"))
    assert len(queue) == 6
    while queue:
        queue.pop().action()
    assert fired == ["early", 0, 1, 2, 3, 4]


def test_push_while_draining_same_time_keeps_fifo(queue_cls):
    queue = queue_cls()
    fired = []
    def first():
        fired.append("first")
        queue.push(1.0, lambda: fired.append("late-same-time"))
    queue.push(1.0, first)
    queue.push(1.0, lambda: fired.append("second"))
    while queue:
        queue.pop().action()
    assert fired == ["first", "second", "late-same-time"]


def test_default_event_queue_shapes():
    with repro.fastpath.forced():
        assert isinstance(default_event_queue(SHAPE_SHARED), BucketedEventQueue)
        assert isinstance(default_event_queue(SHAPE_IRREGULAR), EventQueue)
        assert isinstance(default_event_queue(), EventQueue)
    with repro.fastpath.disabled():
        assert isinstance(default_event_queue(SHAPE_SHARED), EventQueue)
        assert isinstance(default_event_queue(SHAPE_IRREGULAR), EventQueue)
