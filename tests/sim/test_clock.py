"""VirtualClock: monotonic simulated time."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import VirtualClock


def test_starts_at_zero():
    assert VirtualClock().now == 0.0


def test_starts_at_given_time():
    assert VirtualClock(5.5).now == 5.5


def test_negative_start_rejected():
    with pytest.raises(ClockError):
        VirtualClock(-1.0)


def test_advance_to():
    clock = VirtualClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_advance_to_same_time_is_allowed():
    clock = VirtualClock(3.0)
    clock.advance_to(3.0)
    assert clock.now == 3.0


def test_advance_to_past_rejected():
    clock = VirtualClock(10.0)
    with pytest.raises(ClockError):
        clock.advance_to(9.999)


def test_advance_by():
    clock = VirtualClock(1.0)
    assert clock.advance_by(2.5) == 3.5
    assert clock.now == 3.5


def test_advance_by_negative_rejected():
    clock = VirtualClock()
    with pytest.raises(ClockError):
        clock.advance_by(-0.1)


def test_repr_mentions_time():
    assert "1.500" in repr(VirtualClock(1.5))
