"""Generator-based processes: sleep and busy-wait primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Process, sleep, wait_for


def test_sleep_suspends_for_simulated_time():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(("start", sim.now))
        yield sleep(5.0)
        trace.append(("middle", sim.now))
        yield sleep(2.5)
        trace.append(("end", sim.now))

    Process(sim, worker(), name="worker")
    sim.run()
    assert trace == [("start", 0.0), ("middle", 5.0), ("end", 7.5)]


def test_wait_for_polls_until_predicate_true():
    sim = Simulator()
    state = {"ready": False}
    trace = []

    def setter():
        yield sleep(3.0)
        state["ready"] = True

    def waiter():
        yield wait_for(lambda: state["ready"], poll=0.5)
        trace.append(sim.now)

    Process(sim, setter())
    Process(sim, waiter())
    sim.run()
    assert len(trace) == 1
    # Detected within one polling period of readiness.
    assert 3.0 <= trace[0] <= 3.5 + 1e-9


def test_process_finishes_and_records_result():
    sim = Simulator()

    def worker():
        yield sleep(1.0)
        return "done"

    process = Process(sim, worker())
    sim.run()
    assert process.finished
    assert process.result == "done"


def test_two_processes_interleave():
    sim = Simulator()
    trace = []

    def ticker(name, period):
        for _ in range(3):
            yield sleep(period)
            trace.append((name, sim.now))

    Process(sim, ticker("fast", 1.0))
    Process(sim, ticker("slow", 2.0))
    sim.run()
    # At t=2.0 both are due; the slow ticker's event was enqueued first
    # (at t=0) so it wins the deterministic tie-break.
    assert trace == [
        ("fast", 1.0), ("slow", 2.0), ("fast", 2.0),
        ("fast", 3.0), ("slow", 4.0), ("slow", 6.0),
    ]


def test_negative_sleep_rejected():
    sim = Simulator()

    def worker():
        yield sleep(-1.0)

    Process(sim, worker())
    with pytest.raises(SimulationError):
        sim.run()


def test_unknown_command_rejected():
    sim = Simulator()

    def worker():
        yield "bogus"

    Process(sim, worker())
    with pytest.raises(SimulationError):
        sim.run()


def test_wait_for_immediately_true_predicate():
    sim = Simulator()
    trace = []

    def worker():
        yield wait_for(lambda: True, poll=10.0)
        trace.append(sim.now)

    Process(sim, worker())
    sim.run()
    assert trace == [0.0]
