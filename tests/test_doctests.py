"""Run the doctests embedded in module documentation."""

import doctest

import pytest

import repro.sim.engine

MODULES_WITH_DOCTESTS = [repro.sim.engine]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert result.failed == 0
