"""End-to-end failover: real workloads, crash injection at many
points, heartbeat-driven takeover, service continuation."""

import pytest

from repro.cluster.faults import CrashPlan, FaultInjector
from repro.cluster.membership import HeartbeatMonitor, Membership
from repro.cluster.node import Node
from repro.replication.active import ActiveReplicatedSystem
from repro.replication.passive import PassiveReplicatedSystem
from repro.sim.engine import Simulator
from repro.vista import ENGINE_VERSIONS, EngineConfig
from repro.workloads import DebitCreditWorkload, OrderEntryWorkload, run_workload

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=4 * MB, log_bytes=512 * 1024, range_records=256)


@pytest.mark.parametrize("version", list(ENGINE_VERSIONS))
@pytest.mark.parametrize("crash_at", [1, 7, 40])
def test_passive_failover_under_debit_credit(version, crash_at):
    system = PassiveReplicatedSystem(version, CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=13)
    workload.setup(system)
    system.sync_initial()
    injector = FaultInjector()
    injector.schedule(CrashPlan(after_transactions=crash_at), system.fail_primary)
    result = run_workload(system, workload, 60, fault_injector=injector)
    assert result.crashed and result.transactions == crash_at
    backup = system.failover()
    workload.verify(backup)  # shadow model agrees with the backup


@pytest.mark.parametrize("version", ["v0", "v3"])
def test_passive_failover_under_order_entry(version):
    system = PassiveReplicatedSystem(version, CONFIG)
    workload = OrderEntryWorkload(CONFIG.db_bytes, seed=13)
    workload.setup(system)
    system.sync_initial()
    injector = FaultInjector()
    injector.schedule(CrashPlan(after_transactions=25), system.fail_primary)
    run_workload(system, workload, 60, fault_injector=injector)
    backup = system.failover()
    workload.verify(backup)


def test_active_failover_under_order_entry():
    system = ActiveReplicatedSystem(CONFIG)
    workload = OrderEntryWorkload(CONFIG.db_bytes, seed=13)
    workload.setup(system)
    system.sync_initial()
    injector = FaultInjector()
    injector.schedule(CrashPlan(after_transactions=30), system.fail_primary)
    run_workload(system, workload, 60, fault_injector=injector)
    backup = system.failover()
    workload.verify(backup)


def test_backup_continues_serving_the_workload():
    """After takeover the backup runs the same workload stream on."""
    system = PassiveReplicatedSystem("v3", CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=21)
    workload.setup(system)
    system.sync_initial()
    for _ in range(20):
        workload.run_transaction(system)
    system.fail_primary()
    backup = system.failover()
    for _ in range(20):
        workload.run_transaction(backup)
    workload.verify(backup)
    assert workload.transactions_run == 40


def test_heartbeat_driven_takeover_end_to_end():
    """Crash detection (membership extension) wired to real failover."""
    sim = Simulator()
    primary_node = Node("primary")
    system = ActiveReplicatedSystem(CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=5)
    workload.setup(system)
    system.sync_initial()
    for _ in range(10):
        workload.run_transaction(system)

    view = Membership(members=["primary", "backup"], primary="primary")
    takeover = {}

    def on_failure():
        view.fail("primary")
        takeover["engine"] = system.failover()
        takeover["at"] = sim.now

    monitor = HeartbeatMonitor(sim, primary_node, on_failure,
                               interval_us=100.0, timeout_us=400.0)
    monitor.start()

    def crash_everything():
        primary_node.crash()
        system.fail_primary()

    sim.schedule_at(1_000.0, crash_everything)
    sim.run(until=5_000.0)

    assert view.primary == "backup"
    assert 1_000.0 < takeover["at"] <= 1_000.0 + 400.0 + 100.0 + 1e-9
    workload.verify(takeover["engine"])


def test_rebooted_primary_can_recover_locally():
    """After the original primary reboots, Rio still has its data and a
    local recovery yields the committed state (Vista's availability
    story, now with the gap covered by the backup)."""
    system = PassiveReplicatedSystem("v3", CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=3)
    workload.setup(system)
    system.sync_initial()
    for _ in range(15):
        workload.run_transaction(system)
    system.begin_transaction()
    system.set_range(0, 8)
    system.write(0, b"dangling")
    system.fail_primary()
    # Reboot the old primary and recover in place.
    system.primary_rio.reboot()
    from repro.vista.factory import create_engine

    recovered = create_engine("v3", system.primary_rio, CONFIG, fresh=False)
    recovered.recover()
    workload.verify(recovered)
