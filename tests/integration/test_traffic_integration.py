"""Cross-module traffic invariants: the measured per-transaction
byte profiles that drive Tables 2/5/7, checked against both the
implementation's own structure and the paper's values."""

import pytest

from repro.replication.active import ActiveReplicatedSystem
from repro.replication.passive import PassiveReplicatedSystem
from repro.vista import EngineConfig
from repro.workloads import DebitCreditWorkload, OrderEntryWorkload, run_workload

MB = 1024 * 1024
CONFIG = EngineConfig(
    db_bytes=4 * MB, nominal_db_bytes=50 * MB, log_bytes=512 * 1024,
    range_records=256,
)
TXNS = 300


def passive_traffic(version, workload_cls, seed=42):
    system = PassiveReplicatedSystem(version, CONFIG)
    workload = workload_cls(CONFIG.db_bytes, seed=seed)
    workload.setup(system)
    system.sync_initial()
    result = run_workload(system, workload, TXNS, warmup=30)
    return result.traffic_per_txn(), result


def active_traffic(workload_cls, seed=42):
    system = ActiveReplicatedSystem(CONFIG)
    workload = workload_cls(CONFIG.db_bytes, seed=seed)
    workload.setup(system)
    system.sync_initial()
    result = run_workload(system, workload, TXNS, warmup=30)
    return result.traffic_per_txn(), result


def test_debit_credit_per_txn_profile_matches_paper():
    """Paper Table 5 per transaction: ~28 B modified, ~65 B undo."""
    per_txn, _result = passive_traffic("v3", DebitCreditWorkload)
    assert per_txn["modified"] == pytest.approx(28.3, rel=0.10)
    assert per_txn["undo"] == pytest.approx(64.9, rel=0.10)


def test_order_entry_per_txn_profile_matches_paper():
    """Paper Table 5 per transaction: ~85 B modified, ~437 B undo."""
    per_txn, _result = passive_traffic("v3", OrderEntryWorkload)
    assert per_txn["modified"] == pytest.approx(85.1, rel=0.25)
    assert per_txn["undo"] == pytest.approx(437.1, rel=0.25)


def test_modified_and_undo_identical_across_versions():
    """V0, V1 and V3 ship identical modified and undo byte counts for
    the same transaction stream (paper Table 5 rows)."""
    profiles = {
        version: passive_traffic(version, DebitCreditWorkload)[0]
        for version in ("v0", "v1", "v3")
    }
    for category in ("modified", "undo"):
        values = {round(profiles[v][category], 1) for v in profiles}
        assert len(values) == 1, (category, profiles)


def test_v2_undo_equals_modified_bytes_roughly():
    """Diffing ships only changed words, so undo ~= modified (paper:
    exactly equal at their measurement granularity)."""
    per_txn, _result = passive_traffic("v2", DebitCreditWorkload)
    assert per_txn["undo"] <= per_txn["modified"] * 1.3 + 4


def test_active_ships_least_and_no_undo():
    passive_v2, _r1 = passive_traffic("v2", DebitCreditWorkload)
    active, _r2 = active_traffic(DebitCreditWorkload)
    assert "undo" not in active or active.get("undo", 0.0) == 0.0
    assert active["total"] < passive_v2["total"] * 1.5
    passive_v3, _r3 = passive_traffic("v3", DebitCreditWorkload)
    assert active["total"] < passive_v3["total"] / 1.8


def test_v0_metadata_is_an_order_of_magnitude_larger():
    v0, _r = passive_traffic("v0", DebitCreditWorkload)
    v3, _r = passive_traffic("v3", DebitCreditWorkload)
    assert v0["meta"] > 10 * v3["meta"]
    assert v0["meta"] > 1000  # ~1.4 kB/txn in both paper and repro


def test_packet_size_ordering_active_v3_mirrors():
    """Mean packet size: active redo > passive log > mirroring — the
    paper's coalescing story."""
    _p1, v1 = passive_traffic("v1", DebitCreditWorkload)
    _p3, v3 = passive_traffic("v3", DebitCreditWorkload)
    _pa, active = active_traffic(DebitCreditWorkload)
    mean_v1 = v1.packet_trace.mean_packet_bytes()
    mean_v3 = v3.packet_trace.mean_packet_bytes()
    mean_active = active.packet_trace.mean_packet_bytes()
    assert mean_active > mean_v3 > mean_v1


def test_order_entry_active_needs_more_redo_records_than_ranges():
    """Table 7's observation: redo meta-data describes scattered
    modified data, needing more records than set_range did."""
    system = ActiveReplicatedSystem(CONFIG)
    workload = OrderEntryWorkload(CONFIG.db_bytes, seed=42)
    workload.setup(system)
    system.sync_initial()
    result = run_workload(system, workload, TXNS)
    records_per_txn = result.redo_records / result.transactions
    ranges_per_txn = result.counters.set_ranges / result.transactions
    assert records_per_txn > ranges_per_txn * 0.9
