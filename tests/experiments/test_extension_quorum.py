"""The quorum extension experiment at test fidelity."""

from repro.experiments import extension_quorum
from repro.experiments.common import ExperimentContext, ExperimentSettings

MB = 1024 * 1024


def small_ctx():
    return ExperimentContext(
        ExperimentSettings(transactions=250, warmup=50,
                           allocated_db_bytes=4 * MB)
    )


def test_runs_checks_and_renders():
    result = extension_quorum.run(small_ctx())
    result.check()
    table = result.table().render()
    assert "primary-backup pair" in table
    assert "sloppy" in table and "strict" in table
    figure = result.timeline_figure()
    assert "<- quorum lost" in figure
    assert "<- quorum restored" in figure


def test_quorum_loss_dip_is_degraded_not_zero():
    timeline = extension_quorum.quorum_timeline(seed=42)
    outage = timeline.outage_slots()
    assert outage, "expected an observable quorum-loss window"
    for sample in outage:
        assert sample.completed == timeline.degraded_per_slot
        assert 0 < sample.completed < timeline.normal_per_slot
    assert timeline.recovered_slots()
    assert timeline.converged


def test_timeline_is_deterministic_under_the_seed():
    first = extension_quorum.quorum_timeline(seed=42)
    second = extension_quorum.quorum_timeline(seed=42)
    assert first.samples == second.samples
    assert first.router_stats == second.router_stats
    assert first.group_stats == second.group_stats
    assert first.quorum_loss == second.quorum_loss


def test_trace_audits_clean_including_quorum_rules():
    timeline = extension_quorum.quorum_timeline(seed=42)
    report = timeline.audit()
    assert report.ok
    names = {event.name for event in timeline.trace_events}
    assert "quorum.read" in names and "quorum.write" in names
    assert "fault.partition" in names and "fault.heal" in names


def test_sloppy_quorum_beats_the_passive_pair():
    comparison = extension_quorum.availability_comparison(seed=42)
    assert comparison.quorum_availability >= comparison.pair_availability
    assert comparison.quorum_downtime_us == 0.0
    assert comparison.hints_delivered > 0
