"""The recovery-time extension experiment."""

from repro.experiments import extension_recovery

MB = 1024 * 1024


def test_runs_checks_and_renders():
    result = extension_recovery.run(db_bytes=4 * MB)
    result.check()
    rendered = result.table().render()
    assert "mirror restore" in rendered
    assert "nines" in rendered


def test_measured_restore_bytes_back_the_model():
    result = extension_recovery.run(db_bytes=4 * MB)
    # v1/v2 failover really copied the whole database; v3 rolled back
    # only the dangling transaction's undo.
    assert result.measured_restore_bytes["v1"] == 4 * MB
    assert result.measured_restore_bytes["v2"] == 4 * MB
    assert 64 <= result.measured_restore_bytes["v3"] <= 256
    assert result.measured_restore_bytes["v0"] >= 64
