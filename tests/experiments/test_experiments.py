"""The experiment reproductions: every table/figure runs, passes its
own shape checks, and renders. Uses a shared low-fidelity context so
the whole module stays fast; the benchmarks run the full-fidelity
versions."""

import pytest

from repro.experiments import (
    ablations,
    figure1,
    figures2_3,
    table1_2,
    table3,
    table4_5,
    table6_7,
    table8,
)
from repro.experiments.common import (
    ExperimentContext,
    ExperimentSettings,
    scale_to_paper_mb,
)

MB = 1024 * 1024


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        ExperimentSettings(
            transactions=400, warmup=50, allocated_db_bytes=4 * MB
        )
    )


def test_figure1_checks_and_renders():
    result = figure1.run(region_bytes=1 << 16)
    result.check()
    assert "Figure 1" in result.table().render()


def test_table1_2(ctx):
    result = table1_2.run(ctx)
    result.check()
    assert "5" in result.table1().render()
    assert "Meta-data" in result.table2().render()


def test_table3(ctx):
    result = table3.run(ctx)
    result.check()
    rendered = result.table().render()
    assert "Version 3 (Improved Log)" in rendered


def test_table4_5(ctx):
    result = table4_5.run(ctx)
    result.check()
    assert "Version 1" in result.table4().render()
    assert "debit-credit v0" in result.table5().render()


def test_table6_7(ctx):
    result = table6_7.run(ctx)
    result.check()
    assert "Active" in result.table6().render()
    assert "active" in result.table7().render()


def test_table8(ctx):
    result = table8.run(ctx)
    result.check()
    assert "1 GB" in result.table().render()


def test_figures2_3(ctx):
    result = figures2_3.run(ctx)
    result.check()
    assert "Pass. Ver. 3" in result.figure("debit-credit")
    assert "Figure 3" in result.figure("order-entry")


def test_ablations(ctx):
    result = ablations.run(ctx)
    result.check()
    assert "active-2safe" in result.table().render()


def test_calibration_anchors_v3_standalone(ctx):
    from repro.experiments.common import PAPER_DB_BYTES
    from repro.perf.calibration import PAPER

    estimator = ctx.estimator()
    for workload in ("debit-credit", "order-entry"):
        result = ctx.standalone_result("v3", workload, PAPER_DB_BYTES)
        tps = estimator.standalone(result).tps
        assert tps == pytest.approx(
            PAPER["standalone"][workload]["v3"], rel=1e-6
        )


def test_context_caches_runs(ctx):
    first = ctx.standalone_result("v1", "debit-credit", 50 * MB)
    second = ctx.standalone_result("v1", "debit-credit", 50 * MB)
    assert first is second


def test_scale_to_paper_mb():
    # 28.3 bytes/txn over the paper's ~4.98M Debit-Credit transactions
    # is the paper's 140.8 MB of modified data.
    assert scale_to_paper_mb(28.3, "debit-credit") == pytest.approx(134.5, rel=0.02)


def test_runner_cli_subset():
    from repro.experiments.runner import main

    assert main(["figure1"]) == 0


def test_runner_rejects_unknown_experiment():
    from repro.experiments.runner import main

    with pytest.raises(SystemExit):
        main(["tableX"])
