"""The sharding extension experiment at test fidelity."""

from repro.experiments import extension_sharding
from repro.experiments.common import ExperimentContext, ExperimentSettings

MB = 1024 * 1024


def small_ctx():
    return ExperimentContext(
        ExperimentSettings(transactions=250, warmup=50,
                           allocated_db_bytes=4 * MB)
    )


def test_runs_checks_and_renders():
    result = extension_sharding.run(small_ctx())
    result.check()
    table = result.table().render()
    assert "dedicated links" in table
    assert "one shared SAN" in table
    figure = result.timeline_figure()
    assert "<- crash" in figure
    assert "<- restored" in figure


def test_dip_is_one_nth_not_zero():
    timeline = extension_sharding.failover_timeline(seed=42)
    outage = timeline.outage_slots()
    assert outage, "expected an observable outage window"
    for sample in outage:
        assert sample.completed == timeline.degraded_per_slot
        assert 0 < sample.completed < timeline.normal_per_slot
    assert timeline.recovered_slots()


def test_timeline_is_deterministic_under_the_seed():
    first = extension_sharding.failover_timeline(seed=42)
    second = extension_sharding.failover_timeline(seed=42)
    assert first.samples == second.samples
    assert first.router_stats == second.router_stats
    assert first.takeover == second.takeover


def test_scaling_is_near_linear_on_dedicated_links():
    ctx = small_ctx()
    result = extension_sharding.run(ctx)
    by_shards = {r.shards: r for r in result.scaling}
    assert by_shards[4].dedicated_tps >= 3.6 * by_shards[1].dedicated_tps
    assert by_shards[8].shared_san_tps <= by_shards[8].dedicated_tps
