"""The calibration-sensitivity extension experiment."""

import pytest

from repro.experiments import extension_sensitivity
from repro.experiments.common import ExperimentContext, ExperimentSettings

MB = 1024 * 1024


@pytest.fixture(scope="module")
def result():
    ctx = ExperimentContext(
        ExperimentSettings(transactions=300, warmup=30,
                           allocated_db_bytes=4 * MB)
    )
    return extension_sensitivity.run(ctx)


def test_all_conclusions_hold_across_the_grid(result):
    result.check(minimum_fraction=0.95)
    assert result.grid_points == 27


def test_renders(result):
    text = result.table().render()
    assert "active beats best passive" in text


def test_failures_are_recorded_not_swallowed(result):
    total_evaluations = result.grid_points * len(extension_sensitivity.CONCLUSIONS)
    total_held = sum(result.held.values())
    assert total_held + len(result.failures) == total_evaluations
