"""The SMP closed-form-vs-simulation validation experiment."""

import pytest

from repro.experiments import extension_smp_sim
from repro.experiments.common import ExperimentContext, ExperimentSettings

MB = 1024 * 1024


@pytest.fixture(scope="module")
def result():
    ctx = ExperimentContext(
        ExperimentSettings(transactions=300, warmup=30,
                           allocated_db_bytes=4 * MB)
    )
    return extension_smp_sim.run(
        ctx, configs=("active", "passive-v3"), duration_us=6_000.0
    )


def test_validation_passes(result):
    result.check()


def test_caps_agree_closely(result):
    """At 4 CPUs (saturated or linear), closed form and simulation
    agree tightly — the validation's main claim."""
    for workload, configs in result.curves.items():
        for config, points in configs.items():
            analytic, simulated = points[-1]
            assert simulated == pytest.approx(analytic, rel=0.12), (
                workload, config, analytic, simulated,
            )


def test_renders(result):
    text = result.table().render()
    assert "simulated" in text
    assert "passive-v3" in text
