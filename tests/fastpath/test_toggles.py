"""The fast-path global switch and its escape hatches."""

from repro import fastpath


def test_default_is_enabled():
    assert fastpath.enabled()


def test_set_enabled_returns_previous():
    previous = fastpath.set_enabled(False)
    try:
        assert previous is True
        assert not fastpath.enabled()
    finally:
        fastpath.set_enabled(previous)


def test_disabled_context_restores():
    assert fastpath.enabled()
    with fastpath.disabled():
        assert not fastpath.enabled()
        with fastpath.forced():
            assert fastpath.enabled()
        assert not fastpath.enabled()
    assert fastpath.enabled()
