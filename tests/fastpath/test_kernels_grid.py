"""Golden-grid check for the simulator-core kernels.

The full experiment grid — every table and figure — must print
byte-identical output with the kernels on (bucketed event queues,
big-int diff, slab region ops), with every kernel off
(``REPRO_FASTPATH=0``: reference heap, reference word-at-a-time diff),
and with the process-parallel runner (``--jobs 2``). Each
configuration runs in its own subprocess so the environment switch is
exercised exactly the way a user would flip it.

This is the kernels-layer counterpart of the store-pipeline
equivalence tests in ``test_equivalence.py``; CI repeats the same diff
at the full ``--transactions 1000`` via ``bench_kernels.py``.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent.parent / "src")

#: Small transaction count: the grid's checks all hold at any count,
#: and the SMP event simulations (the slow part) are count-independent.
TRANSACTIONS = "60"


def _run_grid(extra_args=(), env_overrides=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_FASTPATH", None)
    env.update(dict(env_overrides))
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.experiments.runner",
            "--transactions",
            TRANSACTIONS,
            *extra_args,
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    # Everything except the final wall-clock line must match exactly.
    lines = result.stdout.splitlines()
    assert lines[-1].startswith("[all experiments passed")
    return "\n".join(lines[:-1])


def test_grid_byte_identical_kernels_on_off_and_parallel():
    kernels_on = _run_grid()
    kernels_off_flag = _run_grid(extra_args=("--no-fastpath",))
    kernels_off_env = _run_grid(env_overrides=(("REPRO_FASTPATH", "0"),))
    parallel = _run_grid(extra_args=("--jobs", "2"))
    assert kernels_on == kernels_off_flag
    assert kernels_off_env == kernels_off_flag
    assert parallel == kernels_on
