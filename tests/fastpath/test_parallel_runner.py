"""The process-parallel experiment runner: determinism and coverage.

``--jobs N`` must print byte-for-byte what the sequential runner
prints (only the final timing line may differ), because the pool only
computes cache cells — rendering stays sequential and in-process.
"""

from repro.experiments import cells, runner
from repro.experiments.common import ExperimentContext, ExperimentSettings
from repro.fastpath.parallel import run_tasks


def _run_main(capsys, argv):
    assert runner.main(argv) == 0
    out = capsys.readouterr().out
    # Drop the wall-clock line; everything above it must match exactly.
    lines = out.splitlines()
    assert lines[-1].startswith("[all experiments passed")
    return "\n".join(lines[:-1])


def test_jobs_output_is_byte_identical(capsys):
    base = ["table6", "--transactions", "80", "--seed", "11"]
    sequential = _run_main(capsys, base)
    parallel = _run_main(capsys, base + ["--jobs", "2"])
    assert parallel == sequential


def test_run_tasks_preserves_task_order():
    tasks = list(range(7))
    assert run_tasks(_square, tasks, jobs=2) == [n * n for n in tasks]
    assert run_tasks(_square, tasks, jobs=1) == [n * n for n in tasks]


def _square(n):
    return n * n


def test_plan_covers_every_cell_an_experiment_reads():
    """Drift canary: rendering table6 after preloading its plan must
    never compute a cell inline. (The plan is advisory — a miss would
    still be correct, just sequential — but silent plan drift wastes
    the pool, so it should fail loudly here.)"""
    settings = ExperimentSettings(transactions=40, warmup=10)
    plan = cells.plan_for(["table6"])
    computed = dict(
        run_tasks(cells.compute_cell, [(settings, spec) for spec in plan], jobs=1)
    )
    ctx = ExperimentContext(settings)
    ctx.preload(cells=computed)
    ctx._run = _refuse_inline_runs  # any cache miss lands here
    runner.EXPERIMENTS["table6"](ctx)


def _refuse_inline_runs(key, target, workload):
    raise AssertionError(f"cell {key!r} missing from the parallel plan")


def test_plan_for_dedupes_and_orders_anchors_first():
    plan = cells.plan_for(["table3", "table4", "sensitivity"])
    assert len(plan) == len(set(plan))
    assert plan[0] in cells.CALIBRATION_CELLS
    assert plan[1] in cells.CALIBRATION_CELLS
    # figure1/recovery alone need no cells at all.
    assert cells.plan_for(["figure1", "recovery"]) == []
