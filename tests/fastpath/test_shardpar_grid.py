"""Golden-grid check for the multi-crash parallel decomposition.

An 8-pair failover schedule with two primary crashes — the schedule
shape the one-crash boundary used to reject — must produce
byte-identical artifacts (trace JSONL, sampled series bytes, router
totals, takeover downtimes) across ``--shard-jobs 1/2/4``, with the
fast path disabled via the ``--no-fastpath`` mechanism, and with
``REPRO_FASTPATH=0`` in the environment. Each configuration runs in
its own subprocess so the environment switch and the process pool are
exercised exactly the way a user would drive them; the merged trace is
then audited against the full invariant rule set.

CI repeats the jobs-1-vs-2 comparison through ``repro.obs.diff`` on
the same multi-crash plan.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.obs.audit import audit_trace_file

SRC = str(Path(__file__).resolve().parent.parent.parent / "src")

#: Two crashes on distinct shards of an 8-pair cluster, staggered so
#: the second failover lands while the first shard is already serving
#: again — two full crash/takeover streams for the merge to replay.
_SCRIPT = """
import json, sys
import repro.fastpath as fastpath
from repro.experiments.extension_sharding import failover_plan
from repro.fastpath import shardpar
from repro.obs.export import write_jsonl

jobs = int(sys.argv[1])
out = sys.argv[2]
if "--no-fastpath" in sys.argv:
    fastpath.set_enabled(False)
plan = failover_plan(
    num_shards=8,
    crashes=((2, 5_250.0), (5, 13_250.0)),
)
assert len(plan.crashes) == 2
outcome = shardpar.execute(plan, jobs=jobs)
write_jsonl(out + ".trace.jsonl", outcome.events)
with open(out + ".series.bin", "wb") as fh:
    fh.write(outcome.frame.to_bytes())
with open(out + ".totals.json", "w") as fh:
    json.dump(
        {
            "routed": outcome.routed,
            "completed": outcome.completed,
            "dropped": outcome.dropped,
            "takeover_downtime_us": {
                str(k): v
                for k, v in sorted(outcome.takeover_downtime_us.items())
            },
        },
        fh,
        sort_keys=True,
    )
"""

LEGS = (
    ("jobs1", "1", (), ()),
    ("jobs2", "2", (), ()),
    ("jobs4", "4", (), ()),
    ("jobs1-noflag", "1", ("--no-fastpath",), ()),
    ("jobs2-envoff", "2", (), (("REPRO_FASTPATH", "0"),)),
)


def _run_leg(tmp_path, name, jobs, extra_args, env_overrides):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_FASTPATH", None)
    env.update(dict(env_overrides))
    out = str(tmp_path / name)
    subprocess.run(
        [sys.executable, "-c", _SCRIPT, jobs, out, *extra_args],
        env=env,
        check=True,
    )
    return {
        suffix: (tmp_path / (name + suffix)).read_bytes()
        for suffix in (".trace.jsonl", ".series.bin", ".totals.json")
    }


def test_multi_crash_grid_byte_identical_and_audited(tmp_path):
    artifacts = {
        name: _run_leg(tmp_path, name, jobs, extra_args, env_overrides)
        for name, jobs, extra_args, env_overrides in LEGS
    }
    baseline = artifacts["jobs1"]
    assert baseline[".trace.jsonl"]  # non-trivial run
    for name, produced in artifacts.items():
        assert produced == baseline, f"leg {name} diverged"
    # Both crash/takeover streams survived the merge and the full
    # invariant rule set holds on the merged trace.
    report = audit_trace_file(str(tmp_path / "jobs2.trace.jsonl"))
    assert report.ok, report.render()
    trace = baseline[".trace.jsonl"].decode()
    assert trace.count('"fault.crash"') == 2
    assert trace.count('"takeover"') == 2
    assert trace.count('"recovery.span"') == 2
