"""End-to-end equivalence: every measured number the driver collects
must be byte-identical with the fast path on and off.

This is the integration-level counterpart of the Hypothesis properties
in ``tests/properties/test_fastpath_properties.py``: real replicated
systems, real workloads, full measurement surface (counters, access
profile, categorized traffic, packet histogram, I/O store count, ack
bytes, redo records).
"""

import pytest

from repro import fastpath
from repro.replication.active import ActiveReplicatedSystem
from repro.replication.passive import PassiveReplicatedSystem
from repro.vista import EngineConfig
from repro.workloads import DebitCreditWorkload, OrderEntryWorkload, run_workload

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=4 * MB, log_bytes=256 * 1024)


def _measure(make_target, workload_cls, transactions=120):
    target = make_target()
    workload = workload_cls(CONFIG.db_bytes, seed=3)
    workload.setup(target)
    sync = getattr(target, "sync_initial", None)
    if sync is not None:
        sync()
    result = run_workload(target, workload, transactions, warmup=20, verify=True)
    return {
        "counters": vars(result.counters).copy(),
        "working_set": dict(result.profile.working_set_bytes),
        "random_lines": dict(result.profile.random_lines),
        "sequential_bytes": dict(result.profile.sequential_bytes),
        "traffic": dict(result.traffic_bytes),
        "histogram": dict(result.packet_trace.histogram),
        "io_stores": result.io_stores,
        "ack_bytes": result.ack_bytes,
        "redo_records": result.redo_records,
    }


SYSTEMS = [
    ("passive-v0", lambda: PassiveReplicatedSystem("v0", CONFIG), DebitCreditWorkload),
    ("passive-v1", lambda: PassiveReplicatedSystem("v1", CONFIG), DebitCreditWorkload),
    ("passive-v3", lambda: PassiveReplicatedSystem("v3", CONFIG), OrderEntryWorkload),
    (
        "passive-v3-undo",
        lambda: PassiveReplicatedSystem("v3", CONFIG, ship_undo_log=True),
        DebitCreditWorkload,
    ),
    ("active", lambda: ActiveReplicatedSystem(CONFIG), DebitCreditWorkload),
]


@pytest.mark.parametrize(
    "make_target,workload_cls",
    [(make, wl) for _name, make, wl in SYSTEMS],
    ids=[name for name, _make, _wl in SYSTEMS],
)
def test_fastpath_measurements_byte_identical(make_target, workload_cls):
    with fastpath.disabled():
        slow = _measure(make_target, workload_cls)
    with fastpath.forced():
        fast = _measure(make_target, workload_cls)
    assert fast == slow


def test_fastpath_disabled_when_observer_attached():
    """A live observer forces the per-store slow path, so the gauges it
    samples (write-buffer occupancy, per-store counts) keep exact
    slow-path values."""
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.observer import Observer

    registry = MetricsRegistry()
    system = PassiveReplicatedSystem("v3", CONFIG)
    system.interface.observer = Observer(registry=registry)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=3)
    workload.setup(system)
    system.sync_initial()
    with fastpath.forced():
        run_workload(system, workload, 30)
    # The per-store metrics exist and match the interface's own count.
    assert registry.counter(
        f"san.{system.interface.node_name}.io_stores"
    ).value == system.interface.io_stores
