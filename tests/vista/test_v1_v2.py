"""Versions 1 and 2: mirror maintenance by copying and by diffing."""

import pytest

from repro.memory.rio import RioMemory
from repro.vista import EngineConfig
from repro.vista.v1_mirror_copy import MirrorCopyEngine
from repro.vista.v2_mirror_diff import MirrorDiffEngine, diff_runs

CONFIG = EngineConfig(db_bytes=64 * 1024, log_bytes=32 * 1024, range_records=64)


def make(cls, name):
    return cls.create(RioMemory(name), CONFIG)


@pytest.mark.parametrize("cls", [MirrorCopyEngine, MirrorDiffEngine])
def test_mirror_tracks_committed_state(cls):
    engine = make(cls, f"{cls.VERSION}-mirror")
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.write(0, b"COMMITTD")
    engine.commit_transaction()
    assert engine.mirror.read(0, 8) == b"COMMITTD"


@pytest.mark.parametrize("cls", [MirrorCopyEngine, MirrorDiffEngine])
def test_mirror_not_updated_by_uncommitted_writes(cls):
    engine = make(cls, f"{cls.VERSION}-uncommitted")
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.write(0, b"DIRTYDAT")
    assert engine.mirror.read(0, 8) == b"\x00" * 8
    engine.abort_transaction()


@pytest.mark.parametrize("cls", [MirrorCopyEngine, MirrorDiffEngine])
def test_initialize_data_reaches_mirror(cls):
    engine = make(cls, f"{cls.VERSION}-init")
    engine.initialize_data(16, b"seed")
    assert engine.mirror.read(16, 4) == b"seed"
    # So an immediate abort restores the seed, not zeroes.
    engine.begin_transaction()
    engine.set_range(16, 4)
    engine.write(16, b"junk")
    engine.abort_transaction()
    assert engine.read(16, 4) == b"seed"


@pytest.mark.parametrize("cls", [MirrorCopyEngine, MirrorDiffEngine])
def test_restore_from_mirror_rebuilds_whole_database(cls):
    engine = make(cls, f"{cls.VERSION}-restore")
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.write(0, b"GOODDATA")
    engine.commit_transaction()
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.write(0, b"BADBADBA")
    # Backup-style takeover without the coordinate array:
    engine.restore_from_mirror()
    assert engine.read(0, 8) == b"GOODDATA"


def test_v1_copies_whole_ranges():
    engine = make(MirrorCopyEngine, "v1-bytes")
    engine.begin_transaction()
    engine.set_range(0, 100)
    engine.write(0, b"x")  # modify a single byte
    engine.commit_transaction()
    assert engine.counters.undo_bytes_copied == 100


def test_v2_writes_only_differences():
    engine = make(MirrorDiffEngine, "v2-bytes")
    engine.begin_transaction()
    engine.set_range(0, 100)
    engine.write(0, b"x")  # modify a single byte
    engine.commit_transaction()
    assert engine.counters.bytes_compared == 100
    assert engine.counters.undo_bytes_copied == 4  # one word
    assert engine.mirror.read(0, 1) == b"x"


def test_v2_no_changes_writes_nothing():
    engine = make(MirrorDiffEngine, "v2-nochange")
    engine.begin_transaction()
    engine.set_range(0, 64)
    engine.commit_transaction()
    assert engine.counters.undo_bytes_copied == 0


def test_range_array_persists_for_recovery():
    rio = RioMemory("v1-recover")
    engine = MirrorCopyEngine.create(rio, CONFIG)
    engine.initialize_data(0, b"original")
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.write(0, b"scribble")
    rio.crash()
    rio.reboot()
    recovered = MirrorCopyEngine.create(rio, CONFIG, fresh=False)
    assert recovered.range_array.count == 1  # the declared range survived
    recovered.recover()
    assert recovered.read(0, 8) == b"original"


class TestDiffRuns:
    def test_identical_buffers_no_runs(self):
        assert list(diff_runs(b"aaaa", b"aaaa")) == []

    def test_single_word_difference(self):
        old = b"\x00" * 16
        new = b"\x00" * 4 + b"abcd" + b"\x00" * 8
        assert list(diff_runs(old, new)) == [(4, 4)]

    def test_adjacent_differences_merge_into_one_run(self):
        old = b"\x00" * 16
        new = b"abcdefgh" + b"\x00" * 8
        assert list(diff_runs(old, new)) == [(0, 8)]

    def test_separate_runs(self):
        old = b"\x00" * 24
        new = b"abcd" + b"\x00" * 8 + b"wxyz" + b"\x00" * 8
        assert list(diff_runs(old, new)) == [(0, 4), (12, 4)]

    def test_trailing_partial_word(self):
        old = b"\x00" * 6
        new = b"\x00\x00\x00\x00\x00\x01"
        assert list(diff_runs(old, new)) == [(4, 2)]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            list(diff_runs(b"a", b"ab"))

    def test_whole_buffer_differs(self):
        assert list(diff_runs(b"aaaa" * 4, b"bbbb" * 4)) == [(0, 16)]
