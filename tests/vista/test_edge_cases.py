"""Edge cases across all engine versions: boundary ranges, giant
transactions, exhaustion, zero-fill semantics."""

import pytest

from repro.errors import AllocationError
from repro.memory.rio import RioMemory
from repro.vista import ENGINE_VERSIONS, EngineConfig, create_engine

CONFIG = EngineConfig(db_bytes=32 * 1024, log_bytes=512 * 1024,
                      range_records=2048)
ALL_VERSIONS = list(ENGINE_VERSIONS)


@pytest.fixture(params=ALL_VERSIONS)
def version(request):
    return request.param


def make(version, config=CONFIG):
    return create_engine(version, RioMemory(f"edge-{version}"), config)


def test_range_at_database_start_and_end(version):
    engine = make(version)
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.write(0, b"ATSTART!")
    engine.set_range(CONFIG.db_bytes - 8, 8)
    engine.write(CONFIG.db_bytes - 8, b"AT END!!")
    engine.commit_transaction()
    assert engine.read(0, 8) == b"ATSTART!"
    assert engine.read(CONFIG.db_bytes - 8, 8) == b"AT END!!"


def test_single_byte_range(version):
    engine = make(version)
    engine.begin_transaction()
    engine.set_range(100, 1)
    engine.write(100, b"x")
    engine.abort_transaction()
    assert engine.read(100, 1) == b"\x00"


def test_whole_database_range(version):
    config = EngineConfig(db_bytes=8 * 1024, log_bytes=64 * 1024,
                          range_records=16)
    engine = make(version, config)
    engine.initialize_data(0, b"\x11" * config.db_bytes)
    engine.begin_transaction()
    engine.set_range(0, config.db_bytes)
    engine.write(0, b"\x22" * config.db_bytes)
    engine.abort_transaction()
    assert engine.read(0, config.db_bytes) == b"\x11" * config.db_bytes


def test_giant_transaction_many_ranges(version):
    engine = make(version)
    engine.begin_transaction()
    for index in range(200):
        offset = index * 128
        engine.set_range(offset, 16)
        engine.write(offset, bytes([index % 251 + 1]) * 16)
    engine.commit_transaction()
    for index in range(200):
        assert engine.read(index * 128, 16) == bytes([index % 251 + 1]) * 16


def test_giant_transaction_abort(version):
    engine = make(version)
    engine.begin_transaction()
    for index in range(200):
        offset = index * 128
        engine.set_range(offset, 16)
        engine.write(offset, b"\xff" * 16)
    engine.abort_transaction()
    assert engine.read(0, 4096) == b"\x00" * 4096


def test_repeated_range_on_same_offset(version):
    engine = make(version)
    engine.initialize_data(0, b"orig")
    engine.begin_transaction()
    for _ in range(10):
        engine.set_range(0, 4)
        engine.write(0, b"temp")
    engine.abort_transaction()
    assert engine.read(0, 4) == b"orig"


def test_write_smaller_than_range(version):
    engine = make(version)
    engine.initialize_data(0, b"ABCDEFGH")
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.write(2, b"xy")  # partial write inside the range
    engine.commit_transaction()
    assert engine.read(0, 8) == b"ABxyEFGH"


def test_undo_space_exhaustion_is_an_error_not_corruption(version):
    config = EngineConfig(db_bytes=32 * 1024, log_bytes=2048,
                          range_records=8)
    engine = make(version, config)
    engine.begin_transaction()
    with pytest.raises(AllocationError):
        for index in range(1000):
            engine.set_range((index * 64) % (config.db_bytes - 64), 64)
    # The transaction can still be aborted cleanly.
    engine.abort_transaction()
    assert engine.read(0, 64) == b"\x00" * 64


def test_commit_sequence_monotonic_across_recovery(version):
    rio = RioMemory(f"edge-seq-{version}")
    engine = create_engine(version, rio, CONFIG)
    for _ in range(5):
        engine.begin_transaction()
        engine.set_range(0, 4)
        engine.write(0, b"abcd")
        engine.commit_transaction()
    seq_before = engine.commit_sequence
    rio.crash()
    rio.reboot()
    recovered = create_engine(version, rio, CONFIG, fresh=False)
    recovered.recover()
    assert recovered.commit_sequence >= seq_before


def test_binary_data_round_trip(version):
    engine = make(version)
    payload = bytes(range(256))
    engine.begin_transaction()
    engine.set_range(512, 256)
    engine.write(512, payload)
    engine.commit_transaction()
    assert engine.read(512, 256) == payload
