"""Engine factory and version registry."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.rio import RioMemory
from repro.vista import ENGINE_VERSIONS, EngineConfig, create_engine, engine_class
from repro.vista.v0_vista import VistaEngine
from repro.vista.v3_inline_log import InlineLogEngine


def test_registry_has_the_paper_versions_in_order():
    assert list(ENGINE_VERSIONS) == ["v0", "v1", "v2", "v3"]


def test_engine_class_resolution():
    assert engine_class("v0") is VistaEngine
    assert engine_class("v3") is InlineLogEngine


def test_unknown_version_rejected():
    with pytest.raises(ConfigurationError):
        engine_class("v9")


def test_create_engine_builds_regions_in_rio():
    rio = RioMemory("factory")
    config = EngineConfig(db_bytes=32 * 1024, log_bytes=16 * 1024)
    engine = create_engine("v3", rio, config)
    assert rio.has_region("db")
    assert rio.has_region("ulog")
    assert engine.VERSION == "v3"


def test_create_with_address_space_places_regions():
    from repro.memory.mapping import AddressSpace

    rio = RioMemory("factory-space")
    space = AddressSpace()
    config = EngineConfig(db_bytes=32 * 1024, log_bytes=16 * 1024)
    engine = create_engine("v1", rio, config, space=space)
    bases = {region.base for region in engine.regions.values()}
    assert 0 not in bases
    assert len(bases) == len(engine.regions)


def test_default_config_used_when_none():
    engine = create_engine("v3", RioMemory("factory-default"))
    assert engine.config.db_bytes == EngineConfig().db_bytes


def test_titles_match_paper_naming():
    assert ENGINE_VERSIONS["v0"].TITLE == "Version 0 (Vista)"
    assert ENGINE_VERSIONS["v1"].TITLE == "Version 1 (Mirror by Copy)"
    assert ENGINE_VERSIONS["v2"].TITLE == "Version 2 (Mirror by Diff)"
    assert ENGINE_VERSIONS["v3"].TITLE == "Version 3 (Improved Log)"
