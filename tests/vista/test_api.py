"""The RVM API state machine, shared by all four engine versions."""

import pytest

from repro.errors import (
    NoTransactionError,
    OutOfBoundsError,
    RangeNotDeclaredError,
    TransactionAlreadyActiveError,
)
from repro.memory.rio import RioMemory
from repro.vista import ENGINE_VERSIONS, EngineConfig, create_engine

CONFIG = EngineConfig(db_bytes=64 * 1024, log_bytes=32 * 1024, range_records=64)

ALL_VERSIONS = list(ENGINE_VERSIONS)


def make_engine(version):
    return create_engine(version, RioMemory(f"api-{version}"), CONFIG)


@pytest.fixture(params=ALL_VERSIONS)
def engine(request):
    return make_engine(request.param)


def test_begin_twice_rejected(engine):
    engine.begin_transaction()
    with pytest.raises(TransactionAlreadyActiveError):
        engine.begin_transaction()


def test_operations_outside_transaction_rejected(engine):
    with pytest.raises(NoTransactionError):
        engine.set_range(0, 8)
    with pytest.raises(NoTransactionError):
        engine.write(0, b"x")
    with pytest.raises(NoTransactionError):
        engine.commit_transaction()
    with pytest.raises(NoTransactionError):
        engine.abort_transaction()


def test_read_allowed_outside_transaction(engine):
    assert engine.read(0, 4) == b"\x00" * 4


def test_set_range_bounds_checked(engine):
    engine.begin_transaction()
    with pytest.raises(OutOfBoundsError):
        engine.set_range(-1, 8)
    with pytest.raises(OutOfBoundsError):
        engine.set_range(0, 0)
    with pytest.raises(OutOfBoundsError):
        engine.set_range(CONFIG.db_bytes - 4, 8)


def test_write_requires_covering_range(engine):
    engine.begin_transaction()
    engine.set_range(100, 8)
    engine.write(100, b"12345678")
    with pytest.raises(RangeNotDeclaredError):
        engine.write(200, b"x")
    with pytest.raises(RangeNotDeclaredError):
        engine.write(104, b"12345678")  # straddles the range end
    engine.abort_transaction()


def test_unenforced_ranges_option():
    config = EngineConfig(
        db_bytes=64 * 1024, log_bytes=32 * 1024, enforce_ranges=False
    )
    engine = create_engine("v3", RioMemory("loose"), config)
    engine.begin_transaction()
    engine.write(500, b"no range declared")  # RVM leaves this undefined
    engine.commit_transaction()


def test_in_transaction_flag(engine):
    assert not engine.in_transaction
    engine.begin_transaction()
    assert engine.in_transaction
    engine.commit_transaction()
    assert not engine.in_transaction


def test_initialize_data_rejected_inside_transaction(engine):
    engine.begin_transaction()
    with pytest.raises(TransactionAlreadyActiveError):
        engine.initialize_data(0, b"x")


def test_counters_track_transactions(engine):
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.write(0, b"12345678")
    engine.commit_transaction()
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.abort_transaction()
    assert engine.counters.transactions == 2
    assert engine.counters.commits == 1
    assert engine.counters.aborts == 1
    assert engine.counters.set_ranges == 2
    assert engine.counters.db_writes == 1
    assert engine.counters.db_bytes_written == 8


def test_region_specs_cover_required_regions():
    for version, cls in ENGINE_VERSIONS.items():
        specs = cls.region_specs(CONFIG)
        assert "db" in specs and "control" in specs
        for name in cls.REPLICATED + cls.LOCAL:
            assert name in specs, (version, name)


def test_sequential_hint_accepted(engine):
    from repro.vista.api import HINT_SEQUENTIAL

    engine.begin_transaction()
    engine.set_range(0, 64, hint=HINT_SEQUENTIAL)
    engine.commit_transaction()
    assert engine.profile.sequential_bytes.get("db", 0) == 64
