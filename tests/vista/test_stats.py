"""EngineCounters and AccessProfile instrumentation."""

import pytest

from repro.vista.stats import AccessProfile, EngineCounters


class TestEngineCounters:
    def test_merge(self):
        a = EngineCounters(transactions=2, mallocs=4)
        b = EngineCounters(transactions=1, frees=3)
        a.merge(b)
        assert a.transactions == 3
        assert a.mallocs == 4
        assert a.frees == 3

    def test_per_transaction(self):
        counters = EngineCounters(transactions=4, set_ranges=8, mallocs=16)
        per_txn = counters.per_transaction()
        assert per_txn["set_ranges"] == 2.0
        assert per_txn["mallocs"] == 4.0
        assert "transactions" not in per_txn

    def test_per_transaction_with_zero_transactions(self):
        assert EngineCounters().per_transaction()["set_ranges"] == 0.0


class TestAccessProfile:
    def test_touch_random_counts_lines(self):
        profile = AccessProfile(line_size=64)
        profile.declare("db", 1 << 20)
        profile.touch_random("db", 0, 1)
        profile.touch_random("db", 60, 8)  # crosses a line boundary
        assert profile.random_lines["db"] == 3

    def test_touch_sequential_counts_bytes(self):
        profile = AccessProfile()
        profile.touch_sequential("db", 100)
        profile.touch_sequential("db", 50)
        assert profile.sequential_bytes["db"] == 150

    def test_zero_length_touches_ignored(self):
        profile = AccessProfile()
        profile.touch_random("db", 0, 0)
        profile.touch_sequential("db", 0)
        assert profile.random_lines == {}
        assert profile.sequential_bytes == {}

    def test_merge(self):
        a = AccessProfile()
        a.declare("db", 100)
        a.touch_random("db", 0, 64)
        b = AccessProfile()
        b.touch_random("db", 0, 64)
        b.touch_sequential("log", 32)
        a.merge(b)
        assert a.random_lines["db"] == 2
        assert a.sequential_bytes["log"] == 32

    def test_scaled(self):
        profile = AccessProfile()
        profile.declare("db", 100)
        profile.touch_random("db", 0, 64)
        profile.touch_sequential("db", 64)
        half = profile.scaled(0.5)
        assert half.random_lines["db"] == pytest.approx(0.5)
        assert half.sequential_bytes["db"] == pytest.approx(32)
        assert half.working_set_bytes["db"] == 100
        assert profile.random_lines["db"] == 1
