"""Version 0 specifics: linked-list undo log, heap allocation, and the
metadata write volume that motivates the paper's restructuring."""

from repro.memory.region import WriteCategory
from repro.memory.rio import RioMemory
from repro.vista import EngineConfig
from repro.vista.v0_vista import VistaEngine

CONFIG = EngineConfig(db_bytes=64 * 1024, log_bytes=32 * 1024)


def make():
    return VistaEngine.create(RioMemory("v0"), CONFIG)


def test_set_range_allocates_two_heap_blocks():
    engine = make()
    engine.begin_transaction()
    engine.set_range(0, 16)
    assert engine.counters.mallocs == 2  # record + pre-image buffer
    engine.commit_transaction()
    assert engine.counters.frees == 2


def test_undo_list_links_records_lifo():
    engine = make()
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.set_range(16, 8)
    entries = engine._collect()
    assert [entry[1] for entry in entries] == [16, 0]  # head-first
    engine.commit_transaction()
    assert engine._collect() == []


def test_commit_sequence_increments():
    engine = make()
    for _ in range(3):
        engine.begin_transaction()
        engine.set_range(0, 4)
        engine.write(0, b"abcd")
        engine.commit_transaction()
    assert engine.commit_sequence == 3


def test_metadata_writes_dominate():
    """The structural point of Table 2: V0's bookkeeping writes far
    exceed the data it protects."""
    engine = make()
    by_category = {category: 0 for category in WriteCategory}

    def count(event):
        by_category[event.category] += event.length

    for region in engine.regions.values():
        region.add_observer(count)
    for index in range(20):
        engine.begin_transaction()
        engine.set_range(index * 16, 8)
        engine.write(index * 16, b"12345678")
        engine.commit_transaction()
    assert by_category[WriteCategory.META] > 5 * by_category[WriteCategory.UNDO]
    assert by_category[WriteCategory.UNDO] == 20 * 8


def test_heap_reformatted_after_crash_recovery():
    rio = RioMemory("v0-crash")
    engine = VistaEngine.create(rio, CONFIG)
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.write(0, b"xxxxxxxx")
    rio.crash()
    rio.reboot()
    recovered = VistaEngine.create(rio, CONFIG, fresh=False)
    recovered.recover()
    # The whole heap is available again after recovery.
    big = recovered.heap.malloc(CONFIG.log_bytes // 2)
    assert big > 0


def test_walk_steps_counted_on_commit():
    engine = make()
    engine.begin_transaction()
    for offset in range(0, 64, 8):
        engine.set_range(offset, 8)
    engine.commit_transaction()
    assert engine.counters.walk_steps >= 8
