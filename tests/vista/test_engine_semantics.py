"""Transactional semantics that every version must satisfy: commit
durability, abort rollback, crash recovery, overlapping ranges."""

import pytest

from repro.memory.rio import RioMemory
from repro.vista import ENGINE_VERSIONS, EngineConfig, create_engine

CONFIG = EngineConfig(db_bytes=64 * 1024, log_bytes=32 * 1024, range_records=64)
ALL_VERSIONS = list(ENGINE_VERSIONS)


def fresh(version, name="sem"):
    rio = RioMemory(f"{name}-{version}")
    return rio, create_engine(version, rio, CONFIG)


@pytest.fixture(params=ALL_VERSIONS)
def version(request):
    return request.param


def test_commit_makes_writes_durable(version):
    _rio, engine = fresh(version)
    engine.begin_transaction()
    engine.set_range(64, 16)
    engine.write(64, b"A" * 16)
    engine.commit_transaction()
    assert engine.read(64, 16) == b"A" * 16


def test_abort_rolls_back_to_pre_transaction_state(version):
    _rio, engine = fresh(version)
    engine.initialize_data(64, b"original++++++++")
    engine.begin_transaction()
    engine.set_range(64, 16)
    engine.write(64, b"B" * 16)
    engine.abort_transaction()
    assert engine.read(64, 16) == b"original++++++++"


def test_abort_with_multiple_ranges(version):
    _rio, engine = fresh(version)
    engine.initialize_data(0, b"aaaabbbbcccc")
    engine.begin_transaction()
    for offset in (0, 4, 8):
        engine.set_range(offset, 4)
        engine.write(offset, b"XXXX")
    engine.abort_transaction()
    assert engine.read(0, 12) == b"aaaabbbbcccc"


def test_abort_of_read_only_transaction(version):
    _rio, engine = fresh(version)
    engine.begin_transaction()
    engine.abort_transaction()
    assert engine.counters.aborts == 1


def test_overlapping_set_ranges_roll_back_correctly(version):
    """Nested/overlapping declarations: LIFO undo must re-install the
    oldest pre-image last."""
    _rio, engine = fresh(version)
    engine.initialize_data(0, b"0123456789")
    engine.begin_transaction()
    engine.set_range(0, 10)
    engine.write(0, b"AAAAAAAAAA")
    engine.set_range(2, 4)  # overlapping range, captures "AAAA"
    engine.write(2, b"BBBB")
    engine.abort_transaction()
    assert engine.read(0, 10) == b"0123456789"


def test_set_range_after_write_preserves_new_value_on_commit(version):
    _rio, engine = fresh(version)
    engine.begin_transaction()
    engine.set_range(0, 4)
    engine.write(0, b"WXYZ")
    engine.commit_transaction()
    engine.begin_transaction()
    engine.set_range(0, 4)
    engine.write(0, b"1234")
    engine.commit_transaction()
    assert engine.read(0, 4) == b"1234"


def test_crash_mid_transaction_recovers_committed_state(version):
    rio, engine = fresh(version)
    engine.initialize_data(0, b"committed!")
    engine.begin_transaction()
    engine.set_range(0, 10)
    engine.write(0, b"uncommitte")
    # Crash: lose all volatile state, keep Rio regions.
    rio.crash()
    rio.reboot()
    recovered = create_engine(version, rio, CONFIG, fresh=False)
    recovered.recover()
    assert recovered.read(0, 10) == b"committed!"


def test_crash_between_transactions_loses_nothing(version):
    rio, engine = fresh(version)
    engine.begin_transaction()
    engine.set_range(0, 4)
    engine.write(0, b"keep")
    engine.commit_transaction()
    rio.crash()
    rio.reboot()
    recovered = create_engine(version, rio, CONFIG, fresh=False)
    recovered.recover()
    assert recovered.read(0, 4) == b"keep"


def test_recovery_is_idempotent(version):
    rio, engine = fresh(version)
    engine.initialize_data(0, b"stable")
    engine.begin_transaction()
    engine.set_range(0, 6)
    engine.write(0, b"dirty!")
    rio.crash()
    rio.reboot()
    recovered = create_engine(version, rio, CONFIG, fresh=False)
    recovered.recover()
    recovered.recover()
    assert recovered.read(0, 6) == b"stable"


def test_engine_usable_after_recovery(version):
    rio, engine = fresh(version)
    engine.begin_transaction()
    engine.set_range(0, 4)
    engine.write(0, b"lost")
    rio.crash()
    rio.reboot()
    recovered = create_engine(version, rio, CONFIG, fresh=False)
    recovered.recover()
    recovered.begin_transaction()
    recovered.set_range(0, 4)
    recovered.write(0, b"good")
    recovered.commit_transaction()
    assert recovered.read(0, 4) == b"good"


def test_many_transactions_no_resource_leak(version):
    """Allocator state must fully recycle between transactions."""
    _rio, engine = fresh(version)
    for index in range(300):
        engine.begin_transaction()
        offset = (index * 32) % 4096
        engine.set_range(offset, 24)
        engine.write(offset, bytes([index % 251 + 1]) * 24)
        engine.commit_transaction()
    assert engine.counters.commits == 300


def test_alternating_commit_abort(version):
    _rio, engine = fresh(version)
    engine.initialize_data(0, b"\x00" * 64)
    expected = bytearray(64)
    for index in range(50):
        engine.begin_transaction()
        offset = (index * 8) % 56
        engine.set_range(offset, 8)
        value = bytes([index % 250 + 1]) * 8
        engine.write(offset, value)
        if index % 2 == 0:
            engine.commit_transaction()
            expected[offset : offset + 8] = value
        else:
            engine.abort_transaction()
    assert engine.read(0, 64) == bytes(expected)
