"""Version 3 specifics: the epoch-validated inline log."""

import pytest

from repro.errors import AllocationError
from repro.memory.rio import RioMemory
from repro.vista import EngineConfig
from repro.vista.v3_inline_log import HEADER_BYTES, InlineLogEngine

CONFIG = EngineConfig(db_bytes=64 * 1024, log_bytes=4096)


def make(name="v3"):
    return InlineLogEngine.create(RioMemory(name), CONFIG)


def test_records_are_inline_and_contiguous():
    engine = make()
    engine.begin_transaction()
    engine.set_range(100, 8)
    engine.set_range(200, 16)
    entries = engine._parse_log()
    assert [(offset, length) for offset, length, _payload in entries] == [
        (100, 8), (200, 16),
    ]
    # Contiguous: second record starts where the first ends.
    assert entries[1][2] == entries[0][2] + 8 + HEADER_BYTES
    engine.commit_transaction()


def test_commit_resets_pointer_to_base():
    engine = make()
    engine.begin_transaction()
    engine.set_range(0, 32)
    assert engine.log_pointer > 0
    engine.write(0, b"\x01" * 32)
    engine.commit_transaction()
    assert engine.log_pointer == 0


def test_commit_invalidates_records_by_epoch():
    engine = make()
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.commit_transaction()
    # The bytes are still in the log region, but no longer live.
    assert engine._parse_log() == []


def test_stale_records_not_rolled_back_after_commit():
    rio = RioMemory("v3-stale")
    engine = InlineLogEngine.create(rio, CONFIG)
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.write(0, b"FINALVAL")
    engine.commit_transaction()
    # Crash immediately after commit: the old records are stale.
    rio.crash()
    rio.reboot()
    recovered = InlineLogEngine.create(rio, CONFIG, fresh=False)
    recovered.recover()
    assert recovered.read(0, 8) == b"FINALVAL"


def test_shorter_new_records_do_not_resurrect_old_tail():
    """A new transaction overwrites the log from the base with fewer
    bytes; the old transaction's trailing records must stay dead."""
    rio = RioMemory("v3-tail")
    engine = InlineLogEngine.create(rio, CONFIG)
    engine.initialize_data(0, b"A" * 64)
    engine.begin_transaction()
    for offset in range(0, 64, 8):  # 8 records
        engine.set_range(offset, 8)
        engine.write(offset, b"B" * 8)
    engine.commit_transaction()  # db is now all B
    engine.begin_transaction()
    engine.set_range(0, 8)  # 1 record, overwrites log prefix
    engine.write(0, b"C" * 8)
    rio.crash()
    rio.reboot()
    recovered = InlineLogEngine.create(rio, CONFIG, fresh=False)
    recovered.recover()
    # Only the first record rolls back; the stale 7 must not.
    assert recovered.read(0, 8) == b"B" * 8
    assert recovered.read(8, 56) == b"B" * 56


def test_log_exhaustion_raises():
    engine = make("v3-full")
    engine.begin_transaction()
    with pytest.raises(AllocationError):
        for offset in range(0, 64 * 1024, 64):
            engine.set_range(offset, 64)
    engine.abort_transaction()


def test_no_pointer_writes_in_log_region():
    """The paper-relevant property: V3's log region receives only
    record headers and pre-image payloads — never allocator-pointer
    updates — so its write-through stream is perfectly contiguous."""
    engine = make("v3-stream")
    offsets = []
    engine.log_region.add_observer(lambda event: offsets.append(
        (event.offset, event.length)
    ))
    engine.begin_transaction()
    engine.set_range(0, 8)
    engine.set_range(100, 8)
    engine.commit_transaction()
    # Writes are strictly sequential from the log base.
    cursor = 0
    for offset, length in offsets:
        assert offset == cursor
        cursor += length


def test_epoch_survives_many_transactions():
    engine = make("v3-epochs")
    for index in range(100):
        engine.begin_transaction()
        engine.set_range(0, 8)
        engine.write(0, bytes([index % 250 + 1]) * 8)
        engine.commit_transaction()
    assert engine.commit_sequence == 100
    assert engine._parse_log() == []
