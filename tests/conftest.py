"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.memory.rio import RioMemory
from repro.vista.api import EngineConfig

MB = 1024 * 1024

#: Small sizes keep the suite fast; semantics do not depend on size.
SMALL_CONFIG = EngineConfig(
    db_bytes=256 * 1024,
    log_bytes=128 * 1024,
    range_records=256,
)


@pytest.fixture
def small_config() -> EngineConfig:
    return SMALL_CONFIG


@pytest.fixture
def rio() -> RioMemory:
    return RioMemory("test-node")


def make_rio(name: str = "test-node") -> RioMemory:
    return RioMemory(name)
