"""Chrome trace_event export of causal commit spans.

The causal links (trace_id / span_id / parent_id) live in event attrs,
so they must survive both exporters: the JSONL round trip must rebuild
identical span trees, and the Chrome export must carry the links in
``args`` on phase-``X`` complete events — that is what makes a commit
render as a parent bar with tiled phase bars under it in Perfetto.
"""

import json

import pytest

from repro.obs import Observer, chrome_trace_dict, read_jsonl, write_jsonl
from repro.obs.export import write_chrome_trace
from repro.obs.spans import COMMIT_PHASE, COMMIT_SPAN, collect_commit_spans
from repro.obs.trace import KIND_SPAN
from repro.replication.active import ActiveReplicatedSystem
from repro.workloads.debit_credit import DebitCreditWorkload
from repro.workloads.driver import run_workload


def _traced_run(seed, transactions=10):
    observer = Observer()
    system = ActiveReplicatedSystem(observer=observer)
    workload = DebitCreditWorkload(system.config.db_bytes, seed=seed)
    system.sync_initial()
    run_workload(system, workload, transactions)
    return list(observer.recorder.events)


@pytest.mark.parametrize("seed", [11, 2026])
def test_span_links_survive_jsonl_round_trip(tmp_path, seed):
    events = _traced_run(seed)
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, events)
    reloaded, _ = read_jsonl(path)
    assert reloaded == events
    assert collect_commit_spans(reloaded) == collect_commit_spans(events)
    # Every parent/child link resolves after the round trip.
    parents = {
        e.attrs["span_id"] for e in reloaded if e.name == COMMIT_SPAN
    }
    children = [e for e in reloaded if e.name == COMMIT_PHASE]
    assert children
    assert all(c.attrs["parent_id"] in parents for c in children)


@pytest.mark.parametrize("seed", [11, 2026])
def test_chrome_export_keeps_parent_links(seed):
    events = _traced_run(seed)
    chrome = chrome_trace_dict(events)
    complete = [e for e in chrome["traceEvents"] if e.get("ph") == "X"]
    span_events = [e for e in events if e.kind == KIND_SPAN]
    assert len(complete) == len(span_events)
    parent_records = [
        record for record in complete if record["name"] == COMMIT_SPAN
    ]
    child_records = [
        record for record in complete if record["name"] == COMMIT_PHASE
    ]
    assert parent_records and child_records
    parent_ids = {record["args"]["span_id"] for record in parent_records}
    for record in child_records:
        assert record["args"]["parent_id"] in parent_ids
        assert record["args"]["trace_id"]
        assert record["dur"] > 0
    # Parents and their children ride the same component lane.
    by_id = {record["args"]["span_id"]: record for record in parent_records}
    for record in child_records:
        parent = by_id[record["args"]["parent_id"]]
        assert record["tid"] == parent["tid"]
        assert record["ts"] >= parent["ts"]
        assert record["ts"] + record["dur"] <= (
            parent["ts"] + parent["dur"] + 1e-9
        )


def test_chrome_file_is_valid_json(tmp_path):
    events = _traced_run(seed=11, transactions=4)
    path = tmp_path / "trace.chrome.json"
    write_chrome_trace(path, events)
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    names = {record["name"] for record in payload["traceEvents"]}
    assert COMMIT_SPAN in names and COMMIT_PHASE in names


def test_seeded_runs_reproduce_identical_span_trees():
    # The trace records sizes and counts, never account contents, and
    # Debit-Credit commits do fixed-shape work — so a re-run under the
    # same seed must rebuild the exact same span trees.
    first = collect_commit_spans(_traced_run(11))
    second = collect_commit_spans(_traced_run(2026))
    assert len(first) == len(second) == 10
    assert collect_commit_spans(_traced_run(11)) == first
    assert collect_commit_spans(_traced_run(2026)) == second
