"""The sim-time time-series sampler: exactness and byte-identity.

The load-bearing properties:

* the sampler is an *observer*, never a participant — the experiment's
  rendered numbers are byte-identical with and without it, across job
  counts, fast path on or off, and any sampling interval;
* windowed goodput derived from the cumulative completion column
  equals the trace's own per-window completion counts exactly;
* the canonical JSONL encoding round-trips losslessly and is identical
  whether the frame came from the live sampler or was rebuilt from the
  trace's ``series.sample`` events.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import fastpath
from repro.obs.series import (
    DipSummary,
    SeriesFrame,
    derive_dip,
    series_interval_us,
    snap_tick,
    windowed_goodput,
)


def _sharding_series_bytes(task):
    """Worker for the cross-process byte-identity test (module level:
    must be picklable for the spawn pool)."""
    seed, disable_fastpath = task
    from repro import fastpath as fp
    from repro.experiments.extension_sharding import failover_timeline

    if disable_fastpath:
        with fp.disabled():
            timeline = failover_timeline(seed=seed)
    else:
        timeline = failover_timeline(seed=seed)
    return timeline.series.to_bytes()


# -- frame basics ---------------------------------------------------


def test_frame_append_and_accessors():
    frame = SeriesFrame()
    frame.append(0.0, {"a": 1.0, "b": 10.0})
    frame.append(5.0, {"a": 2.0, "b": 9.0})
    assert len(frame) == 2
    assert frame.times_us == [0.0, 5.0]
    assert frame.values("a") == [1.0, 2.0]
    assert frame.series("b") == ([0.0, 5.0], [10.0, 9.0])
    assert frame.last("b") == 9.0


def test_frame_rejects_column_drift():
    frame = SeriesFrame()
    frame.append(0.0, {"a": 1.0})
    with pytest.raises(ValueError):
        frame.append(1.0, {"a": 1.0, "b": 2.0})


def test_jsonl_and_dict_round_trips(tmp_path):
    frame = SeriesFrame()
    for i in range(7):
        frame.append(i * 250.0, {"z.col": float(i), "a.col": i * 0.5})
    path = str(tmp_path / "frame.jsonl")
    frame.write_jsonl(path)
    again = SeriesFrame.read_jsonl(path)
    assert again.to_bytes() == frame.to_bytes()
    assert SeriesFrame.from_dict(frame.to_dict()).to_bytes() == frame.to_bytes()


def test_csv_export_has_sorted_header(tmp_path):
    frame = SeriesFrame()
    frame.append(0.0, {"b": 1.0, "a": 2.0})
    path = tmp_path / "frame.csv"
    frame.write_csv(str(path))
    header = path.read_text().splitlines()[0]
    assert header == "time_us,a,b"


def test_render_handles_empty_and_flat_series():
    assert "empty" in SeriesFrame().render()
    frame = SeriesFrame()
    for i in range(3):
        frame.append(float(i), {"flat": 4.0})
    text = frame.render()
    assert "flat" in text and "min 4" in text and "max 4" in text


# -- tick snapping and the env knob ---------------------------------


def test_snap_tick_divides_the_window_exactly():
    for requested, window, expected in [
        (333.0, 1000.0, 250.0),
        (1000.0, 1000.0, 1000.0),
        (499.0, 1000.0, 250.0),
        (500.0, 1000.0, 500.0),
    ]:
        snapped = snap_tick(requested, window)
        assert snapped == expected
        parts = window / snapped
        assert parts == int(parts)


def test_series_interval_env(monkeypatch):
    monkeypatch.delenv("REPRO_SERIES", raising=False)
    assert series_interval_us(1000.0, 1000.0) == 1000.0
    monkeypatch.setenv("REPRO_SERIES", "0")
    assert series_interval_us(1000.0, 1000.0) == 1000.0
    monkeypatch.setenv("REPRO_SERIES", "250")
    assert series_interval_us(1000.0, 1000.0) == 250.0
    monkeypatch.setenv("REPRO_SERIES", "1")
    # "1" means "on, pick a finer default", snapped to divide windows.
    fine = series_interval_us(1000.0, 1000.0)
    assert fine < 1000.0 and (1000.0 / fine) == int(1000.0 / fine)


# -- windowed derivations -------------------------------------------


def test_windowed_goodput_attributes_deltas_to_trailing_window():
    frame = SeriesFrame()
    # Ticks every 500 us, completions jump by 3 in (0, 500] and by 5
    # in (500, 1000]: both land in window 0 with 1000-us windows.
    for ts, total in [(0.0, 0.0), (500.0, 3.0), (1000.0, 8.0), (1500.0, 8.0),
                      (2000.0, 10.0)]:
        frame.append(ts, {"done": total})
    assert windowed_goodput(frame, "done", 1000.0) == [8.0, 2.0]


def test_derive_dip_finds_floor_and_recovery():
    windows = [8.0, 8.0, 6.0, 6.0, 7.0, 8.0, 8.0]
    dip = derive_dip(windows, 1000.0, 8.0)
    assert dip == DipSummary(
        normal=8.0, dip_start_window=2, dip_depth=2.0, dip_floor=6.0,
        recover_window=5, time_to_recover_us=3000.0,
    )
    assert dip.outage_windows == 3
    assert derive_dip([8.0, 8.0], 1000.0, 8.0) is None


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10**6),
             min_size=1, max_size=40),
    st.sampled_from([250.0, 500.0, 1000.0]),
)
def test_goodput_sums_to_total_increase(increments, tick_us):
    """Conservation: however deltas are bucketed into windows, their
    sum is exactly the counter's total increase. Counters are
    integer-valued (completion counts, repair keys), so every delta
    and every partial sum is exactly representable."""
    frame = SeriesFrame()
    total = 0
    for i, inc in enumerate(increments):
        total += inc
        frame.append(i * tick_us, {"done": float(total)})
    deltas = windowed_goodput(frame, "done", 1000.0)
    assert sum(deltas) == frame.last("done") - frame.values("done")[0]


# -- the sampler against the real experiment ------------------------


def test_sharding_series_matches_trace_and_is_deterministic():
    from repro.experiments.extension_sharding import failover_timeline

    a = failover_timeline(seed=42)
    b = failover_timeline(seed=42)
    assert a.series.to_bytes() == b.series.to_bytes()
    # Exactness: the series' windowed deltas equal the trace's counts.
    deltas = a.goodput_windows()
    counts = a.trace_report().window_counts(len(deltas))
    assert deltas == [float(c) for c in counts]
    # A different workload seed samples the same columns on the same
    # ticks (the seed varies keys and payloads, not the offered slots).
    c = failover_timeline(seed=7)
    assert c.series.names == a.series.names
    assert len(c.series) == len(a.series)


def test_sharding_series_bytes_identical_across_jobs_and_fastpath():
    from repro.fastpath.parallel import run_tasks

    tasks = [(42, False), (42, True), (7, False), (7, True)]
    sequential = [_sharding_series_bytes(t) for t in tasks]
    parallel = run_tasks(_sharding_series_bytes, tasks, 2)
    assert parallel == sequential
    assert sequential[0] == sequential[1], "fastpath must not shift samples"
    assert sequential[2] == sequential[3]


def test_sampling_interval_does_not_change_the_experiment(monkeypatch):
    """A 4x finer tick changes how often we *look*, never what the
    system *does*: same goodput windows, same dip, more samples."""
    from repro.experiments.extension_sharding import failover_timeline

    monkeypatch.delenv("REPRO_SERIES", raising=False)
    coarse = failover_timeline(seed=42)
    monkeypatch.setenv("REPRO_SERIES", "250")
    fine = failover_timeline(seed=42)
    assert len(fine.series) > len(coarse.series)
    assert fine.goodput_windows() == coarse.goodput_windows()
    assert fine.series_dip() == coarse.series_dip()
    assert fine.series.last("router.completed") == \
        coarse.series.last("router.completed")


def test_frame_from_trace_events_is_byte_identical(tmp_path):
    from repro.obs import Observer, write_jsonl
    from repro.obs.export import read_jsonl
    from repro.experiments.extension_sharding import failover_timeline

    observer = Observer()
    timeline = failover_timeline(seed=42, observer=observer)
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(path, timeline.trace_events, metrics=observer.registry)
    events, _ = read_jsonl(path)
    rebuilt = SeriesFrame.from_events(events)
    assert rebuilt.to_bytes() == timeline.series.to_bytes()
