"""SLO availability accounting: nines, scopes, and audit coupling."""

import pytest

from repro.obs import TraceEvent, write_jsonl
from repro.obs.slo import (
    MAX_NINES,
    ScopeAvailability,
    compute_slo,
    nines,
    slo_from_trace_file,
)


def _crash(ts, scope="shard.1"):
    return TraceEvent(ts, f"{scope}.cluster", "fault.crash",
                      attrs={"node": "p"})


def _takeover(detected, restored, scope="shard.1"):
    return TraceEvent(detected, f"{scope}.cluster", "takeover", kind="span",
                      dur_us=restored - detected, attrs={"bytes_restored": 7})


def _complete(ts, shard):
    return TraceEvent(ts, "router", "txn.complete",
                      attrs={"shard": shard, "latency_us": 1.0})


def test_nines_math():
    assert nines(0.9) == pytest.approx(1.0)
    assert nines(0.999) == pytest.approx(3.0)
    assert nines(1.0) == MAX_NINES
    assert nines(0.0) == 0.0
    assert nines(-0.5) == 0.0


def test_scope_availability_derivations():
    scope = ScopeAvailability("shard.2", horizon_us=10_000.0,
                              downtime_us=100.0, failovers=1,
                              windows=((500.0, 600.0),))
    assert scope.label == "shard.2"
    assert scope.served_us == 9_900.0
    assert scope.availability == pytest.approx(0.99)
    assert scope.nines == pytest.approx(2.0)
    payload = scope.to_dict()
    assert payload["windows_us"] == [[500.0, 600.0]]


def test_compute_slo_charges_downtime_to_the_crashed_shard():
    events = [
        _complete(100.0, 0), _complete(100.0, 1),
        _crash(2_000.0),
        _takeover(2_500.0, 4_000.0),
        _complete(5_000.0, 0), _complete(5_000.0, 1),
        _complete(10_000.0, 0), _complete(10_000.0, 1),
    ]
    report = compute_slo(events)
    assert report.horizon_us == 10_000.0
    by_scope = {s.scope: s for s in report.scopes}
    assert set(by_scope) == {"shard.0", "shard.1"}
    assert by_scope["shard.0"].downtime_us == 0.0
    assert by_scope["shard.0"].availability == 1.0
    # Downtime runs crash -> restoration, not detection -> restoration.
    assert by_scope["shard.1"].downtime_us == pytest.approx(2_000.0)
    assert by_scope["shard.1"].availability == pytest.approx(0.8)
    assert report.cluster_availability == pytest.approx(0.9)
    assert report.total_downtime_us == pytest.approx(2_000.0)


def test_explicit_horizon_clamps_downtime():
    events = [_crash(8_000.0), _takeover(8_500.0, 12_000.0)]
    report = compute_slo(events, horizon_us=10_000.0)
    scope = report.scopes[0]
    # Only the in-horizon part of the outage is charged.
    assert scope.downtime_us == pytest.approx(2_000.0)
    assert scope.availability == pytest.approx(0.8)


def test_unsharded_pair_uses_cluster_scope():
    events = [_crash(100.0, scope=""), _takeover(150.0, 300.0, scope="")]
    report = compute_slo(events, horizon_us=1_000.0)
    assert len(report.scopes) == 1
    assert report.scopes[0].label == "cluster"
    assert report.scopes[0].downtime_us == pytest.approx(200.0)


def test_empty_trace_is_vacuously_available():
    report = compute_slo([])
    assert report.scopes == []
    assert report.cluster_availability == 1.0
    assert "no serving scopes" in report.render()


def test_audit_ok_is_carried_and_rendered():
    events = [_complete(10.0, 0)]
    unaudited = compute_slo(events)
    assert unaudited.audit_ok is None
    assert "trace audit" not in unaudited.render()
    confirmed = compute_slo(events, audit_ok=True)
    assert "PASS" in confirmed.render()
    tainted = compute_slo(events, audit_ok=False)
    assert "NOT" in tainted.render()
    assert tainted.to_dict()["audit_ok"] is False


def test_slo_from_trace_file_audits_on_request(tmp_path):
    events = [
        _complete(100.0, 0),
        _crash(2_000.0),
        # A completion inside the downtime window: audit must fail,
        # and the SLO report must say its numbers are tainted.
        _complete(2_500.0, 1),
        _takeover(2_200.0, 4_000.0),
        _complete(9_000.0, 1),
    ]
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, events)
    unaudited = slo_from_trace_file(path)
    assert unaudited.audit_ok is None
    audited = slo_from_trace_file(path, audited=True)
    assert audited.audit_ok is False
    assert audited.horizon_us == unaudited.horizon_us


def test_report_to_dict_shape():
    events = [_crash(100.0), _takeover(150.0, 300.0), _complete(500.0, 1)]
    payload = compute_slo(events, audit_ok=True).to_dict()
    assert payload["audit_ok"] is True
    assert payload["cluster_nines"] == pytest.approx(
        nines(payload["cluster_availability"])
    )
    assert [s["scope"] for s in payload["scopes"]] == ["shard.1"]
