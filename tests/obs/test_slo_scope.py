"""Per-scope SLO filtering, in the library and on the CLI."""

import json

import pytest

from repro.obs import TraceEvent, write_jsonl
from repro.obs.report import main as report_main
from repro.obs.slo import _scope_selected, compute_slo


def _completion(ts, scope):
    return TraceEvent(ts, "router", "txn.complete", attrs={
        "key": 0, "shard": 0, "scope": scope, "attempts": 1,
        "latency_us": 10.0,
    })


def _window(scope, crash_at, restored_at):
    """A crash plus its takeover span, in the shared vocabulary."""
    component = f"{scope}.cluster" if scope else "cluster"
    return [
        TraceEvent(crash_at, component, "fault.crash",
                   attrs={"node": "n0", "reason": "test"}),
        TraceEvent(crash_at, component, "takeover", kind="span",
                   dur_us=restored_at - crash_at,
                   attrs={"bytes_restored": 0}),
    ]


def _events():
    events = [
        _completion(100.0, "group.0"),
        _completion(200.0, "group.1"),
        _completion(300.0, "shard.0"),
    ]
    events += _window("group.1", 1_000.0, 3_000.0)
    events += _window("shard.0", 2_000.0, 2_500.0)
    events.append(_completion(10_000.0, "group.0"))
    return events


def test_scope_selection_matches_exact_and_dotted_prefix():
    assert _scope_selected("group.1", None)
    assert _scope_selected("group.1", ["group.1"])
    assert _scope_selected("group.1", ["group"])
    assert not _scope_selected("group.1", ["group.10"])
    assert not _scope_selected("shard.0", ["group"])
    # The anonymous scope reports under the label "cluster".
    assert _scope_selected("", ["cluster"])


def test_compute_slo_reports_every_scope_without_a_filter():
    report = compute_slo(_events())
    assert [s.scope for s in report.scopes] == ["group.0", "group.1", "shard.0"]
    by_scope = {s.scope: s for s in report.scopes}
    assert by_scope["group.0"].downtime_us == 0.0
    assert by_scope["group.1"].downtime_us == 2_000.0
    assert by_scope["shard.0"].downtime_us == 500.0
    assert report.horizon_us == 10_000.0


def test_scope_filter_isolates_one_architecture():
    report = compute_slo(_events(), scopes=["group"])
    assert [s.scope for s in report.scopes] == ["group.0", "group.1"]
    # The cluster roll-up averages only the selected scopes.
    assert report.cluster_availability == pytest.approx(
        (1.0 + 0.8) / 2
    )
    only_shard = compute_slo(_events(), scopes=["shard.0"])
    assert [s.scope for s in only_shard.scopes] == ["shard.0"]


def test_filters_compose_and_can_select_nothing():
    both = compute_slo(_events(), scopes=["group.0", "shard.0"])
    assert [s.scope for s in both.scopes] == ["group.0", "shard.0"]
    empty = compute_slo(_events(), scopes=["nonexistent"])
    assert empty.scopes == []
    assert empty.cluster_availability == 1.0


def _write_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(str(path), _events(), metrics=None)
    return str(path)


def test_cli_scope_filter_narrows_the_slo_section(tmp_path, capsys):
    path = _write_trace(tmp_path)
    assert report_main([path, "--slo", "--scope", "group.1",
                        "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    scopes = [s["scope"] for s in payload["slo"]["scopes"]]
    assert scopes == ["group.1"]


def test_cli_scope_is_repeatable(tmp_path, capsys):
    path = _write_trace(tmp_path)
    assert report_main([path, "--slo", "--scope", "group.0",
                        "--scope", "shard.0", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    scopes = [s["scope"] for s in payload["slo"]["scopes"]]
    assert scopes == ["group.0", "shard.0"]


def test_cli_scope_without_slo_is_an_error(tmp_path, capsys):
    path = _write_trace(tmp_path)
    with pytest.raises(SystemExit) as excinfo:
        report_main([path, "--scope", "group.0"])
    assert excinfo.value.code == 2
    assert "--scope requires --slo" in capsys.readouterr().err
