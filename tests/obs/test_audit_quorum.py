"""The auditor's quorum rules: intersection and vv monotonicity."""

from repro.obs import TraceEvent
from repro.obs.audit import audit_events


def _write(ts, vv, key=0, coordinator=0, acks=2, required=2,
           n=3, r=2, w=2, mode="strict", component="group.0.quorum"):
    return TraceEvent(ts, component, "quorum.write", attrs={
        "key": key, "coordinator": coordinator, "n": n, "r": r, "w": w,
        "mode": mode, "acks": acks, "required": required, "vv": vv,
    })


def _read(ts, vv, key=0, acks=2, required=2, n=3, r=2, w=2,
          mode="strict", component="group.0.quorum"):
    return TraceEvent(ts, component, "quorum.read", attrs={
        "key": key, "coordinator": 0, "n": n, "r": r, "w": w,
        "mode": mode, "acks": acks, "required": required,
        "siblings": 1, "vv": vv,
    })


def _rules(report):
    return sorted({violation.rule for violation in report.violations})


def test_clean_quorum_stream_passes():
    report = audit_events([
        _write(1.0, "0:1"),
        _read(2.0, "0:1"),
        _write(3.0, "0:2"),
        _read(4.0, "0:2,1:1"),
    ])
    assert report.ok
    assert report.events_seen == 4


def test_underquorum_operation_is_flagged():
    report = audit_events([_write(1.0, "0:1", acks=1, required=2)])
    assert _rules(report) == ["quorum-intersection"]
    violation = report.violations[0]
    assert violation.attrs == {"acks": 1, "required": 2}
    assert "gathered 1 acks" in violation.message


def test_strict_nonintersecting_configuration_is_flagged():
    report = audit_events([_read(1.0, "0:1", r=1, w=2, n=3)])
    assert _rules(report) == ["quorum-intersection"]
    assert report.violations[0].attrs == {"n": 3, "r": 1, "w": 2}
    # The same arithmetic is fine in sloppy mode: hints cover the gap.
    sloppy = audit_events([
        _read(1.0, "0:1", r=1, w=2, n=3, mode="sloppy", required=1)
    ])
    assert sloppy.ok


def test_write_coordinator_counter_must_advance():
    report = audit_events([
        _write(1.0, "0:2"),
        _write(2.0, "0:2"),  # same coordinator, same counter: stuck
    ])
    assert _rules(report) == ["vv-monotone"]
    assert report.violations[0].ts_us == 2.0
    assert "did not advance" in report.violations[0].message


def test_write_counters_are_tracked_per_key_and_coordinator():
    report = audit_events([
        _write(1.0, "0:5", key=3),
        _write(2.0, "0:1", key=4),        # different key: fresh counter
        _write(3.0, "1:1", coordinator=1),  # different coordinator
        _write(4.0, "0:6", key=3),
    ])
    assert report.ok


def test_strict_read_must_descend_its_predecessor():
    report = audit_events([
        _read(1.0, "0:3,1:1"),
        _read(2.0, "0:2"),  # went backwards: quorum did not intersect
    ])
    assert _rules(report) == ["vv-monotone"]
    assert report.violations[0].attrs["previous"] == "0:3,1:1"


def test_sloppy_read_may_regress():
    report = audit_events([
        _read(1.0, "0:3", mode="sloppy", required=1),
        _read(2.0, "0:1", mode="sloppy", required=1),
    ])
    assert report.ok


def test_read_state_accumulates_across_concurrent_branches():
    # Two concurrent reads merge into the floor; a later read must
    # descend the merge of everything seen, not just the last event.
    report = audit_events([
        _read(1.0, "0:1"),
        _read(2.0, "0:1,1:1"),
        _read(3.0, "0:1"),  # drops 1:1 — not descending the merge
    ])
    assert _rules(report) == ["vv-monotone"]


def test_quorum_state_is_scoped_by_component():
    report = audit_events([
        _write(1.0, "0:4", component="group.0.quorum"),
        _write(2.0, "0:1", component="group.1.quorum"),
    ])
    assert report.ok
