"""The wall-clock profiler: classification, collapsed stacks, timers.

``sys.setprofile`` is never used (it would distort the measured code);
attribution comes from a sampler thread reading the target thread's
frames plus exact ``perf_counter`` timers at event-dispatch
boundaries. These tests pin the classifier's longest-prefix rules, the
collapsed-stack format round trip, and that a real simulation's wall
clock is almost entirely attributed to repro subsystems.
"""

import json
import time

import pytest

from repro.obs.prof import (
    ProfileReport,
    StackSampler,
    SubsystemTimers,
    classify_module,
    classify_stack,
    collapsed_text,
    normalize_event_name,
    parse_collapsed,
    profile,
)


# -- classification -------------------------------------------------


def test_classify_module_longest_prefix_wins():
    assert classify_module("repro.fastpath.kernels") == "kernels"
    assert classify_module("repro.fastpath.replay") == "replay-cache"
    assert classify_module("repro.fastpath.store") == "fastpath"
    assert classify_module("repro.quorum.merkle") == "merkle"
    assert classify_module("repro.quorum.group") == "quorum"
    assert classify_module("repro.sim.engine") == "sim-core"
    assert classify_module("repro.unmapped_layer") == "repro-misc"
    assert classify_module("json.decoder") is None


def test_classify_stack_walks_leaf_to_root():
    stack = [
        "runpy:_run_module_as_main",
        "repro.experiments.runner:main",
        "repro.sim.engine:run",
        "heapq:heappop",  # leaf is stdlib; nearest repro frame wins
    ]
    assert classify_stack(stack) == "sim-core"
    assert classify_stack(["json:loads", "heapq:heappop"]) == "other"
    assert classify_stack([]) == "other"


def test_normalize_event_name_folds_indices():
    assert normalize_event_name("shard.2.heartbeat") == "shard.N.heartbeat"
    assert normalize_event_name("series-tick") == "series-tick"
    assert normalize_event_name("txn-1487-retry") == "txn-N-retry"


# -- collapsed stacks -----------------------------------------------


def test_collapsed_round_trip():
    samples = {
        ("a:f", "b:g", "c:h"): 12,
        ("a:f",): 3,
        ("a:f", "b:g"): 1,
    }
    text = collapsed_text(samples)
    assert "a:f;b:g;c:h 12" in text.splitlines()
    assert parse_collapsed(text) == samples


def test_parse_collapsed_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_collapsed("no-count-here\n")
    with pytest.raises(ValueError):
        parse_collapsed("stack notanumber\n")
    assert parse_collapsed("\n\n") == {}


# -- the sampler on a real run --------------------------------------


def _spin_simulation() -> int:
    """A real discrete-event run hot enough to catch samples."""
    from repro.sim import Simulator

    sim = Simulator()
    count = 0

    def work() -> None:
        nonlocal count
        # Enough arithmetic per event to spend real wall-clock inside
        # a repro.* frame.
        count += sum(i * i for i in range(400)) % 7

    for i in range(30_000):
        sim.schedule_at(float(i), work, name=f"work-{i}")
    sim.run()
    return count


def test_profile_attributes_simulation_wall_clock():
    _, report = profile(_spin_simulation, interval_s=0.001, label="sim spin")
    assert report.total_samples > 10, "sampler caught too few frames"
    # The run is a pure simulator loop: nearly everything lands in a
    # repro subsystem (the ISSUE's >= 95% bar, with headroom for
    # interpreter startup edges).
    assert report.attributed_fraction >= 0.95, report.fractions
    assert report.wall_s > 0
    text = report.render()
    assert "sim spin" in text and "%" in text
    # Collapsed output parses back to the sampler's exact counts.
    parsed = parse_collapsed(report.collapsed)
    assert sum(parsed.values()) == report.total_samples


def test_sampler_start_stop_is_reentrant_safe():
    sampler = StackSampler(interval_s=0.005)
    with sampler:
        time.sleep(0.02)
    first = sampler.total_samples
    assert first >= 1
    # Stopping twice is a no-op, not an error.
    sampler.stop()
    assert sampler.total_samples == first


# -- exact dispatch timers ------------------------------------------


def test_subsystem_timers_attribute_event_dispatch():
    from repro.sim import Simulator

    sim = Simulator()
    timers = SubsystemTimers()
    hits = []

    def burn() -> None:
        hits.append(sum(i for i in range(200)))

    for i in range(50):
        sim.schedule_at(float(i), burn, name=f"burn-{i}")
    sim.run(on_event=timers.on_event)
    assert len(hits) == 50
    assert timers.events == 50
    by_sub = timers.by_subsystem()
    # The action is defined here (tests are outside repro.*): "other".
    assert set(by_sub) == {"other"}
    (subsystem, name, secs, count), = timers.rows()
    assert (subsystem, name, count) == ("other", "burn-N", 50)
    assert secs >= 0.0


def test_on_event_hook_preserves_pop_order_and_results():
    from repro.sim import Simulator

    plain, hooked = [], []
    for sink in (plain, hooked):
        sim = Simulator()
        for i in (3.0, 1.0, 2.0):
            sim.schedule_at(i, lambda i=i: sink.append(i), name="e")
        if sink is hooked:
            timers = SubsystemTimers()
            sim.run(on_event=timers.on_event)
        else:
            sim.run()
    assert hooked == plain == [1.0, 2.0, 3.0]


# -- report assembly ------------------------------------------------


def test_report_dict_and_chrome_merge(tmp_path):
    timers = SubsystemTimers()
    report = ProfileReport(
        wall_s=1.0,
        sample_interval_s=0.002,
        total_samples=100,
        fractions={"sim-core": 0.7, "other": 0.3},
        collapsed=collapsed_text(
            {("repro.sim.engine:run",): 70, ("json:loads",): 30}
        ),
        timers=timers,
        label="synthetic",
    )
    payload = report.to_dict()
    assert payload["fractions"]["sim-core"] == 0.7
    assert report.attributed_fraction == pytest.approx(0.7)

    base = {"traceEvents": [{"ph": "X", "name": "existing"}]}
    merged = report.chrome_trace_dict(base)
    names = {e.get("name") for e in merged["traceEvents"]}
    assert "existing" in names and "sim-core" in names
    out = tmp_path / "merged.json"
    report.write_chrome_trace(str(out), base)
    assert json.loads(out.read_text())["traceEvents"]

    collapsed_path = tmp_path / "stacks.collapsed"
    report.write_collapsed(str(collapsed_path))
    assert parse_collapsed(collapsed_path.read_text()) == {
        ("repro.sim.engine:run",): 70, ("json:loads",): 30,
    }
