"""Causal commit spans: recording, tiling, and phase attribution."""

import pytest

from repro.obs import NULL_OBSERVER, Observer, read_jsonl, write_jsonl
from repro.obs.spans import (
    COMMIT_PHASE,
    COMMIT_SPAN,
    PHASE_APPLY,
    PHASE_BARRIER,
    PHASE_DOUBLING,
    PHASE_ENGINE,
    PHASE_SHIP,
    CommitSpanRecorder,
    attribute_commits,
    collect_commit_spans,
)
from repro.replication.active import ActiveReplicatedSystem
from repro.replication.commit_safety import CommitSafety
from repro.replication.passive import PassiveReplicatedSystem
from repro.vista.api import EngineConfig
from repro.workloads.debit_credit import DebitCreditWorkload
from repro.workloads.driver import run_workload


def _run(system, seed=7, transactions=15):
    workload = DebitCreditWorkload(system.config.db_bytes, seed=seed)
    system.sync_initial()
    run_workload(system, workload, transactions)
    return system


# -- the recorder ------------------------------------------------------------


def test_recorder_emits_parent_and_tiled_children():
    observer = Observer(clock=lambda: 100.0)
    recorder = CommitSpanRecorder(observer, "replication.test")
    recorder.phase(PHASE_ENGINE, 3.0)
    recorder.phase(PHASE_SHIP, 1.5)
    recorder.phase(PHASE_APPLY, 0.5)
    trace_id = recorder.finish(wire_bytes=64)

    events = observer.recorder.events
    parent = next(e for e in events if e.name == COMMIT_SPAN)
    children = [e for e in events if e.name == COMMIT_PHASE]
    assert parent.attrs["trace_id"] == trace_id
    assert parent.dur_us == pytest.approx(5.0)
    assert parent.end_us == pytest.approx(100.0)
    assert parent.attrs["wire_bytes"] == 64
    assert len(children) == 3
    # Children tile the parent: each starts where the previous ended.
    cursor = parent.ts_us
    for child, (phase, dur) in zip(
        children, [(PHASE_ENGINE, 3.0), (PHASE_SHIP, 1.5), (PHASE_APPLY, 0.5)]
    ):
        assert child.attrs["parent_id"] == parent.attrs["span_id"]
        assert child.attrs["trace_id"] == trace_id
        assert child.attrs["phase"] == phase
        assert child.ts_us == pytest.approx(cursor)
        assert child.dur_us == pytest.approx(dur)
        cursor = child.end_us
    assert cursor == pytest.approx(parent.end_us)


def test_recorder_skips_zero_phases_and_resets():
    observer = Observer()
    recorder = CommitSpanRecorder(observer, "c")
    recorder.phase(PHASE_ENGINE, 2.0)
    recorder.phase(PHASE_BARRIER, 0.0)  # 1-safe: no barrier wait
    recorder.finish()
    children = [e for e in observer.recorder.events if e.name == COMMIT_PHASE]
    assert [c.attrs["phase"] for c in children] == [PHASE_ENGINE]
    # The second commit starts from an empty phase list.
    recorder.phase(PHASE_DOUBLING, 1.0)
    recorder.finish()
    trees = collect_commit_spans(observer.recorder.events)
    assert [t.phases for t in trees] == [
        {PHASE_ENGINE: 2.0}, {PHASE_DOUBLING: 1.0}
    ]


def test_recorder_rejects_bad_phases():
    recorder = CommitSpanRecorder(Observer(), "c")
    with pytest.raises(ValueError):
        recorder.phase("warp", 1.0)
    with pytest.raises(ValueError):
        recorder.phase(PHASE_ENGINE, -0.1)


def test_span_ids_are_unique_across_scopes():
    observer = Observer()
    a = CommitSpanRecorder(observer.scoped("shard.0"), "replication")
    b = CommitSpanRecorder(observer.scoped("shard.1"), "replication")
    a.phase(PHASE_ENGINE, 1.0)
    a.finish()
    b.phase(PHASE_ENGINE, 1.0)
    b.finish()
    ids = [
        e.attrs["span_id"] for e in observer.recorder.events
        if "span_id" in e.attrs
    ]
    assert len(ids) == len(set(ids))


# -- systems under load ------------------------------------------------------


def test_passive_commit_spans_tile_exactly():
    observer = Observer()
    system = _run(PassiveReplicatedSystem("v3", observer=observer))
    trees = collect_commit_spans(observer.recorder.events)
    assert len(trees) == 15
    for tree in trees:
        assert tree.phase_sum_us == pytest.approx(tree.dur_us, abs=1e-9)
        assert set(tree.phases) <= {PHASE_ENGINE, PHASE_DOUBLING, PHASE_BARRIER}
        assert tree.phases[PHASE_ENGINE] > 0
        assert tree.attrs["safety"] == "1-safe"
        assert tree.component == "replication.passive"


def test_active_commit_spans_have_ship_and_apply():
    observer = Observer()
    system = _run(ActiveReplicatedSystem(observer=observer))
    trees = collect_commit_spans(observer.recorder.events)
    assert len(trees) == 15
    for tree in trees:
        assert tree.phase_sum_us == pytest.approx(tree.dur_us, abs=1e-9)
        assert PHASE_SHIP in tree.phases
        assert PHASE_APPLY in tree.phases
        # 1-safe: no synchronous barrier phase.
        assert PHASE_BARRIER not in tree.phases
    assert system.redo_records_shipped > 0


def test_two_safe_commits_carry_a_barrier_phase():
    observer = Observer()
    _run(ActiveReplicatedSystem(safety=CommitSafety.TWO_SAFE, observer=observer))
    trees = collect_commit_spans(observer.recorder.events)
    san = ActiveReplicatedSystem().san
    for tree in trees:
        assert tree.attrs["safety"] == "2-safe"
        assert tree.phases[PHASE_BARRIER] == pytest.approx(2.0 * san.latency_us)


def test_detached_system_records_nothing():
    # Pin the null observer explicitly so the test holds under
    # REPRO_OBS=1, where the process default is a live observer.
    system = _run(PassiveReplicatedSystem("v3", observer=NULL_OBSERVER))
    assert system._spans is None
    assert not system.observer.enabled


# -- attribution -------------------------------------------------------------


def test_attribution_sums_and_shares():
    observer = Observer()
    _run(ActiveReplicatedSystem(observer=observer), transactions=10)
    attribution = attribute_commits(observer.recorder.events)
    assert attribution.commits == 10
    assert sum(attribution.phase_totals.values()) == pytest.approx(
        attribution.total_us
    )
    assert sum(
        attribution.share(p) for p in attribution.phase_totals
    ) == pytest.approx(1.0)
    commit = attribution.latency["commit"]
    assert commit.count == 10
    assert commit.p50_us <= commit.p95_us <= commit.p99_us <= commit.max_us
    rendered = attribution.render()
    assert "end-to-end" in rendered and "engine" in rendered
    payload = attribution.to_dict()
    assert payload["commits"] == 10
    assert set(payload["latency_us"]) == set(attribution.latency)


def test_attribution_filters_by_component_prefix():
    observer = Observer()
    for shard in range(2):
        scoped = observer.scoped(f"shard.{shard}")
        recorder = CommitSpanRecorder(scoped, "replication")
        recorder.phase(PHASE_ENGINE, 1.0 + shard)
        recorder.finish()
    only = attribute_commits(observer.recorder.events, "shard.1")
    assert only.commits == 1
    assert only.total_us == pytest.approx(2.0)
    both = attribute_commits(observer.recorder.events)
    assert both.commits == 2


def test_empty_attribution_renders():
    attribution = attribute_commits([])
    assert attribution.commits == 0
    assert "no commit spans" in attribution.render()


def test_spans_survive_jsonl_round_trip(tmp_path):
    observer = Observer()
    _run(PassiveReplicatedSystem("v1", observer=observer), transactions=8)
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, observer.recorder.events)
    reloaded, _ = read_jsonl(path)
    original = collect_commit_spans(observer.recorder.events)
    round_tripped = collect_commit_spans(reloaded)
    assert round_tripped == original


def test_standalone_engine_spans_via_driver():
    from repro.memory.rio import RioMemory
    from repro.vista.factory import create_engine

    observer = Observer()
    engine = create_engine("v3", RioMemory("node"))
    workload = DebitCreditWorkload(engine.config.db_bytes, seed=3)
    run_workload(engine, workload, 6, observer=observer)
    trees = collect_commit_spans(observer.recorder.events)
    assert len(trees) == 6
    for tree in trees:
        assert set(tree.phases) == {PHASE_ENGINE}
        assert tree.component == "engine.v3"
        assert tree.attrs["safety"] == "local"
