"""The perf-trajectory tracker: schema, gate math, migration, CLI.

``repro-bench-v1`` is the one canonical benchmark format; every suite
writes it and one compare implementation replaces the per-script ratio
gates. These tests pin the regression arithmetic in both directions,
the legacy flattening, the history trajectory, and the CLI exit codes
CI relies on.
"""

import json

import pytest

from repro.obs.bench import (
    BENCH_FORMAT,
    append_history,
    compare_reports,
    load_report,
    machine_stanza,
    main,
    make_report,
    metric,
    migrate_legacy,
    save_report,
)


def _report(**values):
    metrics = {}
    for name, spec in values.items():
        metrics[name.replace("__", ".")] = spec
    return make_report("demo", metrics)


# -- schema ---------------------------------------------------------


def test_metric_serializes_only_non_defaults():
    assert metric(3.0) == {"value": 3.0}
    assert metric(3.0, unit="x", gate=True) == {
        "value": 3.0, "unit": "x", "gate": True,
    }
    assert metric(1.5, direction="lower") == {
        "value": 1.5, "direction": "lower",
    }
    with pytest.raises(ValueError):
        metric(1.0, direction="sideways")


def test_save_load_round_trip(tmp_path):
    report = _report(speedup=metric(2.0, unit="x", gate=True))
    path = str(tmp_path / "BENCH_demo.json")
    save_report(report, path)
    again = load_report(path)
    assert again == report
    assert again["format"] == BENCH_FORMAT
    assert set(again["machine"]) >= {"cpus", "python", "platform"}


def test_load_rejects_legacy_payloads(tmp_path):
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"grid": {"speedup": 2.0}}))
    with pytest.raises(ValueError, match="migrate"):
        load_report(str(path))


def test_machine_stanza_note_is_optional():
    assert "note" not in machine_stanza()
    assert machine_stanza("pinned cpu")["note"] == "pinned cpu"


# -- the regression gate --------------------------------------------


def test_compare_passes_within_gate(capsys):
    old = _report(speedup=metric(2.0, gate=True))
    new = _report(speedup=metric(1.7))
    assert compare_reports(old, new, gate=0.8) == []
    assert "ok" in capsys.readouterr().out


def test_compare_fails_on_30_percent_regression(capsys):
    old = _report(speedup=metric(2.0, gate=True))
    new = _report(speedup=metric(1.4))  # 70% of baseline < 80% gate
    assert compare_reports(old, new, gate=0.8) == ["speedup"]
    assert "REGRESSED" in capsys.readouterr().out


def test_compare_lower_is_better_direction():
    old = _report(wall_s=metric(10.0, gate=True, direction="lower"))
    ok = _report(wall_s=metric(12.0))     # +20% <= 10/0.8 ceiling
    bad = _report(wall_s=metric(13.0))    # +30% past the ceiling
    assert compare_reports(old, ok, gate=0.8, out=_DevNull()) == []
    assert compare_reports(old, bad, gate=0.8, out=_DevNull()) == ["wall_s"]


def test_compare_missing_gated_metric_fails():
    old = _report(speedup=metric(2.0, gate=True))
    new = make_report("demo", {})
    assert compare_reports(old, new, out=_DevNull()) == ["speedup"]


def test_compare_without_gates_is_vacuous():
    old = _report(info=metric(1.0))
    new = _report(info=metric(0.0))
    assert compare_reports(old, new, out=_DevNull()) == []


class _DevNull:
    def write(self, _):
        pass

    def flush(self):
        pass


# -- history trajectory ---------------------------------------------


def test_append_history_records_values_only():
    baseline = _report(speedup=metric(2.0, gate=True))
    measured = _report(speedup=metric(2.2, unit="x"))
    append_history(baseline, measured, label="pr-7")
    (entry,) = baseline["history"]
    assert entry["label"] == "pr-7"
    assert entry["metrics"] == {"speedup": 2.2}


# -- legacy migration -----------------------------------------------


def test_migrate_legacy_flattens_nested_numbers():
    legacy = {
        "machine": {"cpus": 4, "python": "3.11.7", "platform": "test"},
        "grid": {"speedup": 2.5, "output_identical": True,
                 "label": "ignored-string"},
        "cells": {"fast_s": 1.25},
    }
    migrated = migrate_legacy(
        legacy, "fastpath",
        gates={"grid.speedup": "higher"},
        units={"grid.speedup": "x"},
    )
    metrics = migrated["metrics"]
    assert metrics["grid.speedup"] == {
        "value": 2.5, "unit": "x", "gate": True,
    }
    assert metrics["grid.output_identical"]["value"] == 1.0
    assert "grid.label" not in metrics
    assert migrated["machine"]["cpus"] == 4
    # Already-migrated payloads pass through untouched.
    assert migrate_legacy(migrated, "fastpath") == migrated


# -- CLI ------------------------------------------------------------


def test_cli_compare_exit_codes(tmp_path, capsys):
    old_path = str(tmp_path / "old.json")
    good_path = str(tmp_path / "good.json")
    bad_path = str(tmp_path / "bad.json")
    save_report(_report(speedup=metric(2.0, gate=True)), old_path)
    save_report(_report(speedup=metric(1.9)), good_path)
    save_report(_report(speedup=metric(1.4)), bad_path)

    assert main(["compare", old_path, good_path, "--gate", "0.8"]) == 0
    assert main(["compare", old_path, bad_path, "--gate", "0.8"]) == 1
    capsys.readouterr()


def test_cli_show_and_append(tmp_path, capsys):
    base_path = str(tmp_path / "base.json")
    new_path = str(tmp_path / "new.json")
    save_report(_report(speedup=metric(2.0, gate=True)), base_path)
    save_report(_report(speedup=metric(2.1)), new_path)

    assert main(["show", base_path]) == 0
    assert "speedup" in capsys.readouterr().out

    assert main(["append", base_path, new_path, "--label", "run-1"]) == 0
    assert load_report(base_path)["history"][0]["label"] == "run-1"
    capsys.readouterr()


def test_cli_migrate(tmp_path, capsys):
    legacy_path = tmp_path / "legacy.json"
    out_path = str(tmp_path / "migrated.json")
    legacy_path.write_text(json.dumps({
        "machine": {"cpus": 1},
        "grid": {"speedup": 3.0},
    }))
    assert main([
        "migrate", str(legacy_path), "--suite", "demo", "--output", out_path,
        "--gate-metric", "grid.speedup",
    ]) == 0
    migrated = load_report(out_path)
    assert migrated["metrics"]["grid.speedup"]["gate"] is True
    capsys.readouterr()
