"""The multi-window burn-rate alert engine and its verification."""

import pytest

from repro.obs import TraceEvent
from repro.obs.alerts import (
    ALERT_FIRE,
    ALERT_RESOLVE,
    BurnRateRule,
    DEFAULT_RULES,
    downtime_windows,
    evaluate_alerts,
    fire_schedule,
    rules_from_events,
    sample_ticks,
    verify_alerts,
)

PAGE = DEFAULT_RULES[0]


def _crash(ts, scope="shard.2"):
    return TraceEvent(ts, f"{scope}.cluster", "fault.crash",
                      attrs={"node": "p"})


def _takeover(ts, dur, scope="shard.2"):
    return TraceEvent(ts, f"{scope}.cluster", "takeover", kind="span",
                      dur_us=dur, attrs={})


def _tick(ts):
    return TraceEvent(ts, "series", "series.sample", attrs={"goodput": 1})


def test_rule_validation_and_burn_math():
    with pytest.raises(ValueError):
        BurnRateRule("r", 1.5, 10.0, 20.0, 1.0)
    with pytest.raises(ValueError):
        BurnRateRule("r", 0.99, 20.0, 10.0, 1.0)  # long < short
    with pytest.raises(ValueError):
        BurnRateRule("r", 0.99, 10.0, 20.0, 0.0)
    rule = BurnRateRule("r", 0.999, 1_000.0, 4_000.0, 10.0)
    assert rule.error_budget == pytest.approx(0.001)
    assert rule.burn(10.0, 1_000.0) == pytest.approx(10.0)
    assert BurnRateRule.from_attrs(rule.to_attrs()) == rule


def test_downtime_windows_pair_crash_with_takeover_end():
    events = [_crash(1_000.0), _takeover(1_500.0, 2_000.0)]
    assert downtime_windows(events) == {"shard.2": [(1_000.0, 3_500.0)]}
    # An unresolved crash stays an open window.
    assert downtime_windows([_crash(5.0)]) == {"shard.2": [(5.0, None)]}


def test_sample_ticks_prefer_the_sampler():
    with_sampler = [_tick(100.0), _tick(200.0), _crash(150.0)]
    assert sample_ticks(with_sampler) == [100.0, 200.0]
    without = [_crash(1_000.0), _takeover(1_500.0, 2_000.0)]
    assert sample_ticks(without) == [1_000.0, 1_500.0, 3_500.0]


def test_fire_and_resolve_lifecycle():
    # 3 ms outage, ticks every 1 ms: the page rule (2 ms/8 ms windows,
    # burn > 10x the 99.9% budget) fires during the outage and resolves
    # once the short window no longer overlaps it.
    windows = {"shard.2": [(2_000.0, 5_000.0)]}
    ticks = [float(t) for t in range(0, 16_000, 1_000)]
    schedule = fire_schedule(windows, ticks, rules=[PAGE])
    fires = [e for e in schedule if e.name == ALERT_FIRE]
    resolves = [e for e in schedule if e.name == ALERT_RESOLVE]
    assert len(fires) == 1 and len(resolves) == 1
    fire, resolve = fires[0], resolves[0]
    assert fire.ts_us == 3_000.0
    assert fire.attrs["scope"] == "shard.2"
    assert fire.attrs["rule"] == "page"
    assert fire.attrs["short_burn"] > PAGE.burn_threshold
    assert fire.attrs["long_burn"] > PAGE.burn_threshold
    # Short window is 2 ms: the first tick whose trailing window no
    # longer overlaps the outage (ended 5 ms) is 7 ms.
    assert resolve.ts_us == 7_000.0
    assert resolve.ts_us > fire.ts_us


def test_short_blip_does_not_page():
    # 15 us of downtime: the short window burns hot but the long
    # window stays under threshold, so the pair never fires.
    windows = {"shard.2": [(2_000.0, 2_015.0)]}
    ticks = [float(t) for t in range(0, 12_000, 500)]
    assert fire_schedule(windows, ticks, rules=[PAGE]) == []


def test_evaluate_alerts_is_idempotent():
    events = [
        _crash(2_000.0), _takeover(2_100.0, 2_900.0),
    ] + [_tick(float(t)) for t in range(0, 16_000, 500)]
    alerts = evaluate_alerts(events)
    assert alerts  # the 3 ms outage must alert
    again = evaluate_alerts(list(events) + alerts)
    assert again == alerts
    assert rules_from_events(alerts) == list(DEFAULT_RULES)


def test_verify_alerts_pass_false_fire_and_missed():
    base = [
        _crash(2_000.0), _takeover(2_100.0, 2_900.0),
    ] + [_tick(float(t)) for t in range(0, 16_000, 500)]
    alerts = evaluate_alerts(base)
    ok = verify_alerts(base + alerts)
    assert ok.ok and ok.recorded == ok.expected == len(alerts)

    bogus = TraceEvent(
        9_999.0, "alerts", ALERT_FIRE,
        attrs={**PAGE.to_attrs(), "scope": "shard.9"},
    )
    false_fire = verify_alerts(base + alerts + [bogus])
    assert not false_fire.ok
    assert any("shard.9" in item for item in false_fire.false_fires)

    missing = verify_alerts(base + alerts[1:])
    assert not missing.ok and missing.missed


def test_unannotated_trace_with_outage_reports_missed_windows():
    base = [
        _crash(2_000.0), _takeover(2_100.0, 2_900.0),
    ] + [_tick(float(t)) for t in range(0, 16_000, 500)]
    verification = verify_alerts(base)
    assert verification.recorded == 0
    assert not verification.ok and verification.missed
