"""The metrics registry: counters, gauges, histograms, namespace."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_is_monotone():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_set_is_idempotent_bridge():
    counter = Counter("c")
    counter.set(10)
    counter.set(10)
    assert counter.value == 10


def test_gauge_set_and_add():
    gauge = Gauge("g")
    gauge.set(5)
    gauge.add(-2)
    assert gauge.value == 3


def test_histogram_buckets_and_summary():
    hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 1.0, 5.0, 50.0, 500.0):
        hist.observe(value)
    # bisect_left: 0.5 and 1.0 land in bucket 0 (<= 1.0 edge), 5.0 in
    # bucket 1, 50.0 in bucket 2, 500.0 overflows.
    assert hist.bucket_counts == [2, 1, 1, 1]
    summary = hist.summary()
    assert summary["count"] == 5
    assert summary["min"] == 0.5
    assert summary["max"] == 500.0
    assert summary["mean"] == pytest.approx(111.3)
    # p99 of 5 observations is the last one — the overflow bucket
    # reports the exact max, not a bucket edge.
    assert summary["p99"] == 500.0


def test_histogram_quantile_reports_bucket_edges():
    hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 5.0, 50.0):
        hist.observe(value)
    assert hist.quantile(0.0) == 1.0  # first observation's bucket edge
    assert hist.quantile(0.5) == 10.0
    assert hist.quantile(1.0) == 100.0
    # Overflow bucket reports the true max, not an edge.
    hist.observe(9_999.0)
    assert hist.quantile(1.0) == 9_999.0


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=(10.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", bounds=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h").quantile(1.5)


def test_empty_histogram_summary_is_zeroed():
    summary = Histogram("h").summary()
    assert summary["count"] == 0
    assert summary["mean"] == 0.0
    assert summary["p95"] == 0.0
    assert summary["p99"] == 0.0


def test_registry_creates_on_first_use():
    registry = MetricsRegistry()
    registry.counter("a.b").inc()
    assert registry.counter("a.b").value == 1
    registry.gauge("a.g").set(7)
    assert registry.value("a.b") == 1
    assert registry.value("a.g") == 7
    assert registry.value("missing", default=-1.0) == -1.0
    assert len(registry) == 2


def test_registry_rejects_kind_collisions():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")
    with pytest.raises(ValueError):
        registry.histogram("x")


def test_names_prefix_is_dot_aware():
    registry = MetricsRegistry()
    registry.counter("shard.0.router.retries")
    registry.counter("shard.0.router.redirects")
    registry.counter("shard.10.router.retries")
    assert registry.names("shard.0") == [
        "shard.0.router.redirects",
        "shard.0.router.retries",
    ]
    # "shard.1" must not match "shard.10.…".
    assert registry.names("shard.1") == []
    assert len(registry.names()) == 3


def test_snapshot_is_json_safe_and_stable():
    import json

    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a").inc(1)
    registry.gauge("g").set(3)
    registry.histogram("h", bounds=DEFAULT_BOUNDS).observe(12.0)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["histograms"]["h"]["count"] == 1
    json.dumps(snap)  # must not raise


def test_histogram_merge_folds_everything():
    a = Histogram("h")
    b = Histogram("h")
    for value in (2.0, 30.0):
        a.observe(value)
    for value in (700.0, 0.5):
        b.observe(value)
    a.merge(b)
    assert a.count == 4
    assert a.sum == pytest.approx(732.5)
    assert a.min == 0.5
    assert a.max == 700.0
    assert sum(a.bucket_counts) == 4
    # Quantiles come back out of the merged buckets: the 700.0
    # observation sits in the 1000-edge bucket, so p99 reports that
    # edge (bucket-approximated, like every finite-bucket quantile).
    assert a.summary()["p99"] == 1000.0
    # Merging an empty histogram changes nothing.
    before = (list(a.bucket_counts), a.count, a.sum, a.min, a.max)
    a.merge(Histogram("h"))
    assert (list(a.bucket_counts), a.count, a.sum, a.min, a.max) == before


def test_histogram_merge_rejects_mismatched_bounds():
    a = Histogram("h", bounds=(1.0, 2.0))
    b = Histogram("h", bounds=(1.0, 3.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_registry_merge_by_kind():
    left = MetricsRegistry()
    left.counter("txns").inc(10)
    left.gauge("lag").set(5.0)
    left.histogram("lat").observe(3.0)
    right = MetricsRegistry()
    right.counter("txns").inc(7)
    right.counter("only.right").inc(1)
    right.gauge("lag").set(2.0)
    right.histogram("lat").observe(40.0)
    left.merge(right)
    assert left.value("txns") == 17  # counters add
    assert left.value("only.right") == 1
    assert left.value("lag") == 2.0  # gauges: last write wins
    assert left.histogram("lat").count == 2


def test_merge_snapshot_equals_live_merge():
    def build(shift):
        registry = MetricsRegistry()
        registry.counter("c").inc(3 + shift)
        registry.gauge("g").set(float(shift))
        hist = registry.histogram("h")
        hist.observe(1.0 + shift)
        hist.observe(600.0)
        return registry

    live = build(0)
    live.merge(build(4))

    from_snapshot = build(0)
    from_snapshot.merge_snapshot(build(4).snapshot())
    assert from_snapshot.snapshot() == live.snapshot()


def test_merge_snapshot_into_empty_registry():
    source = MetricsRegistry()
    source.counter("c").inc(2)
    source.histogram("h").observe(9.0)
    target = MetricsRegistry()
    target.merge_snapshot(source.snapshot())
    assert target.snapshot() == source.snapshot()
