"""The online trace auditor: every rule, broken and clean."""

import pytest

from repro.obs import Observer, TraceEvent, write_jsonl
from repro.obs.audit import TraceAuditor, audit_events, audit_trace_file
from repro.replication.active import ActiveReplicatedSystem
from repro.replication.commit_safety import CommitSafety
from repro.replication.passive import PassiveReplicatedSystem
from repro.workloads.debit_credit import DebitCreditWorkload
from repro.workloads.driver import run_workload


def _ring_event(ts, produced, consumed, capacity=1024, name="ring.publish"):
    return TraceEvent(ts, "redo.producer", name, attrs={
        "produced": produced, "consumed": consumed, "capacity": capacity,
    })


def _rules(report):
    return sorted({violation.rule for violation in report.violations})


# -- ring rules --------------------------------------------------------------


def test_clean_ring_stream_passes():
    report = audit_events([
        _ring_event(1.0, 100, 0),
        _ring_event(2.0, 300, 100),
        _ring_event(3.0, 500, 500),
    ])
    assert report.ok
    assert report.events_seen == 3


def test_ring_overrun_is_flagged():
    report = audit_events([
        _ring_event(1.0, 100, 0),
        _ring_event(2.0, 2000, 100),  # lag 1900 > capacity 1024
    ])
    assert _rules(report) == ["ring-overrun"]
    violation = report.violations[0]
    assert violation.ts_us == 2.0
    assert "lapped" in violation.message
    assert violation.attrs["capacity"] == 1024


def test_ring_pointer_regressions_are_flagged():
    backwards_producer = audit_events([
        _ring_event(1.0, 500, 100),
        _ring_event(2.0, 400, 100),
    ])
    assert _rules(backwards_producer) == ["ring-monotone"]
    backwards_consumer = audit_events([
        _ring_event(1.0, 500, 400),
        _ring_event(2.0, 600, 300),
    ])
    assert _rules(backwards_consumer) == ["ring-monotone"]
    consumer_ahead = audit_events([_ring_event(1.0, 100, 200)])
    assert _rules(consumer_ahead) == ["ring-monotone"]


def test_lag_bound_is_opt_in():
    events = [_ring_event(1.0, 900, 100)]  # lag 800 fits capacity
    assert audit_events(events).ok
    bounded = audit_events(events, max_lag_bytes=500)
    assert _rules(bounded) == ["lag-bound"]
    assert bounded.violations[0].attrs == {"lag": 800, "bound": 500}


def test_ring_apply_events_share_the_pointer_checks():
    report = audit_events([
        TraceEvent(1.0, "redo.applier", "ring.apply", attrs={
            "produced": 100, "consumed": 300, "capacity": 1024,
        }),
    ])
    assert _rules(report) == ["ring-monotone"]


# -- commit ordering ---------------------------------------------------------


def test_two_safe_commit_with_lag_is_a_lost_commit_window():
    report = audit_events([
        TraceEvent(5.0, "replication.active", "commit", attrs={
            "safety": "2-safe", "ring_lag_bytes": 96,
        }),
    ])
    assert _rules(report) == ["commit-ordering"]
    assert report.commits_checked == 1
    assert "unapplied" in report.violations[0].message


def test_one_safe_commit_with_lag_is_allowed():
    report = audit_events([
        TraceEvent(5.0, "replication.active", "commit", attrs={
            "safety": "1-safe", "ring_lag_bytes": 96,
        }),
        TraceEvent(6.0, "replication.passive", "commit", attrs={
            "safety": "1-safe",
        }),
    ])
    assert report.ok
    assert report.commits_checked == 2


# -- epochs ------------------------------------------------------------------


def test_non_monotone_view_id_is_flagged():
    report = audit_events([
        TraceEvent(1.0, "membership", "view.change", attrs={"view_id": 2}),
        TraceEvent(2.0, "membership", "view.change", attrs={"view_id": 2}),
    ])
    assert _rules(report) == ["epoch-monotone"]


def test_non_monotone_service_epoch_is_flagged():
    report = audit_events([
        TraceEvent(1.0, "shard.0.cluster", "service.restored",
                   attrs={"epoch": 3}),
        TraceEvent(2.0, "shard.0.cluster", "service.restored",
                   attrs={"epoch": 2}),
    ])
    assert _rules(report) == ["epoch-monotone"]


def test_epochs_are_tracked_per_component():
    report = audit_events([
        TraceEvent(1.0, "shard.0.cluster", "service.restored",
                   attrs={"epoch": 5}),
        TraceEvent(2.0, "shard.1.cluster", "service.restored",
                   attrs={"epoch": 2}),
    ])
    assert report.ok


# -- downtime windows --------------------------------------------------------


def _crash(ts, scope="shard.1"):
    return TraceEvent(ts, f"{scope}.cluster", "fault.crash",
                      attrs={"node": "p"})


def _takeover(detected, restored, scope="shard.1"):
    return TraceEvent(detected, f"{scope}.cluster", "takeover", kind="span",
                      dur_us=restored - detected, attrs={"bytes_restored": 1})


def _complete(ts, shard=1):
    return TraceEvent(ts, "router", "txn.complete",
                      attrs={"shard": shard, "latency_us": 1.0})


def test_completion_inside_downtime_is_flagged():
    report = audit_events([
        _crash(100.0),
        _complete(150.0, shard=1),  # inside the open window
        _takeover(200.0, 400.0),
    ])
    assert _rules(report) == ["downtime-completion"]
    assert report.violations[0].attrs["scope"] == "shard.1"


def test_other_shards_complete_freely_during_downtime():
    report = audit_events([
        _crash(100.0),
        _complete(150.0, shard=0),
        _takeover(200.0, 400.0),
        _complete(500.0, shard=1),  # after restoration
    ])
    assert report.ok


def test_unsharded_downtime_blocks_all_completions():
    report = audit_events([
        _crash(100.0, scope=""),
        _complete(150.0, shard=3),
    ])
    # A bare-"cluster" crash declares the whole service down.
    assert _rules(report) == ["downtime-completion"]


def test_completion_before_crash_is_fine():
    report = audit_events([
        _complete(50.0, shard=1),
        _crash(100.0),
        _takeover(200.0, 400.0),
    ])
    assert report.ok


# -- span tiling -------------------------------------------------------------


def _span_pair(parent_dur, child_durs):
    events = [TraceEvent(0.0, "replication.passive", "commit.span",
                         kind="span", dur_us=parent_dur,
                         attrs={"trace_id": 1, "span_id": 10})]
    cursor = 0.0
    for dur in child_durs:
        events.append(TraceEvent(cursor, "replication.passive",
                                 "commit.phase", kind="span", dur_us=dur,
                                 attrs={"trace_id": 1, "span_id": 11,
                                        "parent_id": 10, "phase": "engine"}))
        cursor += dur
    return events


def test_span_sum_mismatch_is_flagged():
    report = audit_events(_span_pair(10.0, [3.0, 3.0]))
    assert _rules(report) == ["span-sum"]
    assert report.spans_checked == 1


def test_span_sum_within_tolerance_passes():
    report = audit_events(_span_pair(6.0, [3.0, 3.0]))
    assert report.ok


def test_orphan_phase_child_is_flagged():
    orphan = TraceEvent(0.0, "c", "commit.phase", kind="span", dur_us=1.0,
                        attrs={"trace_id": 1, "span_id": 2, "parent_id": 99,
                               "phase": "engine"})
    report = audit_events([orphan])
    assert _rules(report) == ["span-sum"]
    assert "unknown parent" in report.violations[0].message


# -- real traces, streaming, files -------------------------------------------


def _driven_events(system, transactions=12, seed=5):
    workload = DebitCreditWorkload(system.config.db_bytes, seed=seed)
    system.sync_initial()
    run_workload(system, workload, transactions)
    return list(system.observer.recorder.events)


@pytest.mark.parametrize("safety", [CommitSafety.ONE_SAFE,
                                    CommitSafety.TWO_SAFE])
def test_active_system_trace_is_clean(safety):
    observer = Observer()
    events = _driven_events(
        ActiveReplicatedSystem(safety=safety, observer=observer)
    )
    report = audit_events(events)
    assert report.ok, report.render()
    assert report.commits_checked == 12
    assert report.spans_checked == 12


def test_passive_system_trace_is_clean():
    observer = Observer()
    events = _driven_events(PassiveReplicatedSystem("v3", observer=observer))
    report = audit_events(events)
    assert report.ok, report.render()


def test_streaming_feed_matches_batch():
    observer = Observer()
    events = _driven_events(ActiveReplicatedSystem(observer=observer))
    auditor = TraceAuditor()
    for event in events:
        auditor.feed(event)
    streamed = auditor.finish()
    batch = audit_events(events)
    assert streamed.to_dict() == batch.to_dict()


def test_audit_trace_file_round_trip(tmp_path):
    observer = Observer()
    events = _driven_events(ActiveReplicatedSystem(observer=observer))
    # Seeded overrun: both pointers keep advancing past the real run's
    # (so monotonicity holds) but the lag explodes past the capacity.
    events.append(_ring_event(99.0, 10_000_000, 9_000_000))
    path = tmp_path / "broken.jsonl"
    write_jsonl(path, events)
    report = audit_trace_file(path)
    assert not report.ok
    assert _rules(report) == ["ring-overrun"]
    rendered = report.render()
    assert "FAIL" in rendered and "ring-overrun" in rendered
    payload = report.to_dict()
    assert payload["ok"] is False
    assert payload["violations"][0]["rule"] == "ring-overrun"
