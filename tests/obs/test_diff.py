"""Structural cross-run diffing: canonical ids, localization, CLI."""

import json

import pytest

from repro.obs import TraceEvent, write_jsonl
from repro.obs.diff import (
    canonicalize_events,
    diff_events,
    diff_files,
    diff_series,
    main,
)
from repro.obs.series import SeriesFrame


def _event(ts, name="e", component="c", dur=0.0, **attrs):
    kind = "span" if dur else "instant"
    return TraceEvent(ts, component, name, kind=kind, dur_us=dur, attrs=attrs)


# -- canonicalization --------------------------------------------------------


def test_canonicalize_renumbers_by_first_appearance():
    events = [
        _event(1.0, trace_id=70, span_id=71),
        _event(2.0, trace_id=70, parent_id=71, span_id=75),
        _event(3.0, commit_trace_id=70),
    ]
    canon = canonicalize_events(events)
    assert canon[0].attrs == {"trace_id": 1, "span_id": 2}
    assert canon[1].attrs == {"trace_id": 1, "parent_id": 2, "span_id": 3}
    assert canon[2].attrs == {"commit_trace_id": 1}
    # Dense ids in allocation order are a fixed point.
    assert canonicalize_events(canon) == canon


def test_shifted_id_allocation_diffs_clean():
    base = [_event(1.0, trace_id=1, span_id=2), _event(2.0, trace_id=3)]
    shifted = [_event(1.0, trace_id=9, span_id=10), _event(2.0, trace_id=11)]
    assert diff_events(base, shifted).identical


# -- event diffs -------------------------------------------------------------


def test_self_diff_is_identical():
    events = [_event(float(i), x=i) for i in range(10)]
    diff = diff_events(events, events)
    assert diff.identical
    assert diff.first_divergence is None
    assert "IDENTICAL" in diff.render()


def test_field_level_divergence_is_localized():
    base = [_event(1.0), _event(2.0, x=1), _event(3.0)]
    current = [_event(1.0), _event(2.5, x=2), _event(3.0)]
    diff = diff_events(base, current)
    assert not diff.identical
    assert diff.first_divergence == 1
    fields = {d.field for d in diff.divergences}
    assert fields == {"ts_us", "attrs"}
    payload = diff.to_dict()
    assert payload["identical"] is False
    assert payload["divergences"][0]["index"] == 1


def test_added_and_removed_events_reported_as_presence():
    base = [_event(1.0), _event(2.0)]
    current = [_event(1.0)]
    diff = diff_events(base, current)
    assert diff.first_divergence == 1
    assert diff.divergences[-1].field == "presence"
    assert diff.divergences[-1].current == "(absent)"


def test_divergence_truncation():
    base = [_event(float(i), x=0) for i in range(50)]
    current = [_event(float(i), x=1) for i in range(50)]
    diff = diff_events(base, current, max_divergences=5)
    assert diff.truncated
    assert len(diff.divergences) == 5


def test_phase_deltas_cover_commit_and_recovery_vocabularies():
    def run(ship_us):
        return [
            TraceEvent(10.0, "c", "commit.span", kind="span", dur_us=ship_us,
                       attrs={"trace_id": 1, "span_id": 2}),
            TraceEvent(10.0, "c", "commit.phase", kind="span", dur_us=ship_us,
                       attrs={"trace_id": 1, "span_id": 3, "parent_id": 2,
                              "phase": "ship"}),
            TraceEvent(50.0, "shard.1.cluster", "recovery.span", kind="span",
                       dur_us=30.0, attrs={"trace_id": 4, "span_id": 5}),
            TraceEvent(50.0, "shard.1.cluster", "recovery.phase", kind="span",
                       dur_us=30.0, attrs={"trace_id": 4, "span_id": 6,
                                           "parent_id": 5, "phase": "detect"}),
        ]

    diff = diff_events(run(5.0), run(7.0))
    assert diff.phase_deltas["commit.ship"] == (5.0, 7.0)
    assert diff.phase_deltas["recovery.detect"] == (30.0, 30.0)
    assert "commit.ship" in diff.render()
    assert diff.to_dict()["phase_deltas_us"]["commit.ship"]["delta"] == 2.0


# -- series diffs ------------------------------------------------------------


def _frame(values):
    frame = SeriesFrame()
    for ts, value in values:
        frame.append(ts, {"goodput": value})
    return frame


def test_series_self_diff_and_divergence():
    frame = _frame([(0.0, 1.0), (100.0, 2.0)])
    assert diff_series(frame, frame).identical
    other = _frame([(0.0, 1.0), (100.0, 3.0)])
    diff = diff_series(frame, other)
    assert not diff.identical
    assert diff.divergences[0].field == "goodput"
    assert diff.divergences[0].index == 1


def test_series_column_mismatch_short_circuits():
    frame = _frame([(0.0, 1.0)])
    other = SeriesFrame()
    other.append(0.0, {"latency": 5.0})
    diff = diff_series(frame, other)
    assert diff.divergences[0].field == "columns"


# -- files and CLI -----------------------------------------------------------


def test_diff_files_sniffs_and_refuses_mixed_kinds(tmp_path):
    trace = tmp_path / "trace.jsonl"
    write_jsonl(trace, [_event(1.0, x=1)])
    series = tmp_path / "series.jsonl"
    _frame([(0.0, 1.0)]).write_jsonl(series)
    assert diff_files(str(trace), str(trace)).identical
    assert diff_files(str(series), str(series)).identical
    with pytest.raises(ValueError, match="cannot diff"):
        diff_files(str(series), str(trace))


def test_cli_exit_codes_and_json(tmp_path, capsys):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    write_jsonl(a, [_event(1.0, x=1)])
    write_jsonl(b, [_event(1.0, x=2)])
    assert main([str(a), str(a)]) == 0
    capsys.readouterr()
    assert main([str(a), str(b), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["identical"] is False
