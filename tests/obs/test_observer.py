"""Trace events, the recorder, and the observer front-end."""

import pytest

from repro.obs import (
    NULL_OBSERVER,
    KIND_INSTANT,
    KIND_SPAN,
    NullObserver,
    Observer,
    TraceEvent,
    TraceRecorder,
)
from repro.obs.observer import (
    OBS_ENV_VAR,
    get_default_observer,
    resolve_observer,
)
from repro.obs.trace import select_events


# -- TraceEvent ---------------------------------------------------------------

def test_event_validation():
    with pytest.raises(ValueError):
        TraceEvent(0.0, "c", "n", kind="bogus")
    with pytest.raises(ValueError):
        TraceEvent(0.0, "c", "n", kind=KIND_INSTANT, dur_us=5.0)
    with pytest.raises(ValueError):
        TraceEvent(0.0, "c", "n", kind=KIND_SPAN, dur_us=-1.0)
    span = TraceEvent(10.0, "c", "n", kind=KIND_SPAN, dur_us=5.0)
    assert span.end_us == 15.0


def test_event_dict_round_trip():
    event = TraceEvent(3.5, "shard.1.router", "txn.retry",
                       attrs={"attempt": 2})
    assert TraceEvent.from_dict(event.to_dict()) == event
    span = TraceEvent(1.0, "cluster", "takeover", kind=KIND_SPAN,
                      dur_us=9.0, attrs={"bytes_restored": 4096})
    assert TraceEvent.from_dict(span.to_dict()) == span


def test_recorder_select():
    recorder = TraceRecorder()
    recorder.instant(1.0, "shard.0.router", "txn.submit", key=5)
    recorder.instant(2.0, "shard.1.router", "txn.submit", key=6)
    recorder.span(3.0, 4.0, "shard.1.cluster", "takeover")
    assert len(recorder) == 3
    assert len(recorder.select(name="txn.submit")) == 2
    assert len(recorder.select(component_prefix="shard.1")) == 2
    only = recorder.select(name="txn.submit", component_prefix="shard.1")
    assert [e.attrs["key"] for e in only] == [6]
    # Prefix match is dot-aware: "shard" matches, "shard.10" does not.
    assert len(recorder.select(component_prefix="shard")) == 3
    assert select_events(recorder.events, component_prefix="shard.10") == []
    recorder.clear()
    assert len(recorder) == 0


# -- Observer -----------------------------------------------------------------

def test_null_observer_is_inert_and_shared():
    assert not NULL_OBSERVER.enabled
    assert NULL_OBSERVER.scoped("x") is NULL_OBSERVER
    assert NULL_OBSERVER.metric_name("a.b") == "a.b"
    assert NULL_OBSERVER.now == 0.0
    # Every hook is a no-op.
    NULL_OBSERVER.count("c")
    NULL_OBSERVER.gauge("g", 1.0)
    NULL_OBSERVER.observe("h", 1.0)
    NULL_OBSERVER.event("c", "n", extra=1)
    NULL_OBSERVER.event_at(5.0, "c", "n")
    NULL_OBSERVER.span("c", "n", 0.0, 1.0)
    NULL_OBSERVER.bind_clock(lambda: 99.0)
    assert NULL_OBSERVER.now == 0.0


def test_observer_records_metrics_and_events():
    observer = Observer(clock=lambda: 42.0)
    observer.count("hits", 2)
    observer.gauge("depth", 7)
    observer.observe("lat", 12.0)
    event = observer.event("router", "txn.complete", shard=1)
    assert observer.registry.value("hits") == 2
    assert observer.registry.value("depth") == 7
    assert observer.registry.histogram("lat").count == 1
    assert event.ts_us == 42.0
    assert observer.event_at(7.0, "router", "txn.submit").ts_us == 7.0
    span = observer.span("cluster", "takeover", 10.0, 25.0, bytes_restored=3)
    assert span.dur_us == 15.0


def test_scoped_observer_prefixes_and_shares_state():
    root = Observer(clock=lambda: 1.0)
    shard = root.scoped("shard.3")
    shard.count("router.retries")
    event = shard.event("cluster", "fault.crash", node="p")
    assert root.registry.value("shard.3.router.retries") == 1
    assert event.component == "shard.3.cluster"
    assert shard.metric_name("x") == "shard.3.x"
    assert root.recorder is shard.recorder
    # Nested scoping composes prefixes; empty prefix is the identity.
    nested = shard.scoped("sub")
    assert nested.metric_name("y") == "shard.3.sub.y"
    assert shard.scoped("") is shard


def test_clock_binding_is_first_wins_through_scopes():
    root = Observer()
    shard = root.scoped("shard.0")
    assert shard.now == 0.0
    shard.bind_clock(lambda: 10.0)
    assert root.now == 10.0
    # Second binding loses...
    root.bind_clock(lambda: 99.0)
    assert shard.now == 10.0
    # ...unless forced.
    root.bind_clock(lambda: 99.0, force=True)
    assert shard.now == 99.0


# -- process default ----------------------------------------------------------

def test_default_observer_follows_env(monkeypatch):
    monkeypatch.delenv(OBS_ENV_VAR, raising=False)
    assert get_default_observer() is NULL_OBSERVER
    assert resolve_observer(None) is NULL_OBSERVER
    monkeypatch.setenv(OBS_ENV_VAR, "0")
    assert get_default_observer() is NULL_OBSERVER
    monkeypatch.setenv(OBS_ENV_VAR, "1")
    live = get_default_observer()
    assert isinstance(live, Observer)
    assert get_default_observer() is live  # one shared instance
    assert resolve_observer(None) is live
    mine = NullObserver()
    assert resolve_observer(mine) is mine  # explicit always wins
