"""Timeline reconstruction and the report CLI."""

from repro.obs import TraceEvent, analyze_timeline, write_jsonl
from repro.obs.report import LatencySummary, main


def _failover_events():
    events = [
        TraceEvent(2_500.0, "shard.1.cluster", "fault.crash",
                   attrs={"node": "shard1/primary"}),
        TraceEvent(3_100.0, "shard.1.cluster", "takeover", kind="span",
                   dur_us=6_900.0, attrs={"bytes_restored": 2_070_000}),
    ]
    # Two completions per 1000 us window on shard 0, none on shard 1
    # during its outage.
    for window in range(12):
        ts = window * 1_000.0 + 100.0
        events.append(TraceEvent(ts, "router", "txn.submit",
                                 attrs={"key": 0, "shard": 0}))
        events.append(TraceEvent(ts + 50.0, "router", "txn.complete",
                                 attrs={"shard": 0, "latency_us": 50.0}))
    events.append(TraceEvent(2_600.0, "router", "txn.retry",
                             attrs={"shard": 1, "attempt": 1}))
    events.append(TraceEvent(2_600.0, "router", "txn.redirect",
                             attrs={"shard": 1, "stale_epoch": 1}))
    events.append(TraceEvent(11_000.0, "router", "txn.drop",
                             attrs={"shard": 1, "attempts": 12}))
    return events


def test_analyze_timeline_reconstructs_failover():
    report = analyze_timeline(_failover_events(), window_us=1_000.0)
    assert len(report.failovers) == 1
    span = report.failovers[0]
    assert span.scope == "shard.1"
    assert span.shard_id == 1
    assert span.crashed_node == "shard1/primary"
    assert span.crash_at_us == 2_500.0
    assert span.detection_us == 600.0
    assert span.takeover_us == 6_900.0
    assert span.downtime_us == 7_500.0
    assert span.restored_at_us == 10_000.0
    assert report.routing == {
        "routed": 12, "completed": 12, "retries": 1,
        "redirects": 1, "dropped": 1,
    }
    assert report.per_shard_completions == {0: 12}
    assert report.latency.count == 12
    assert report.latency.p50_us == 50.0
    assert report.window_counts(12) == [1] * 12
    assert report.horizon_windows() == 12


def test_takeover_without_crash_event_still_reports():
    events = [
        TraceEvent(5.0, "cluster", "takeover", kind="span", dur_us=10.0),
    ]
    report = analyze_timeline(events)
    span = report.failovers[0]
    assert span.scope == ""  # an unsharded pair
    assert span.shard_id is None
    assert span.crashed_node == "?"
    assert span.crash_at_us == 5.0  # falls back to detection time
    assert span.bytes_restored == 0


def test_render_marks_crash_and_recovery():
    text = analyze_timeline(_failover_events(), window_us=1_000.0).render()
    assert "shard 1: crash of 'shard1/primary' at 2.50 ms" in text
    assert "detected +600 us" in text
    assert "downtime 7.50 ms" in text
    assert "<- crash" in text
    assert "<- restored" in text
    assert "12 routed" in text
    assert "latency: mean 50 us" in text
    assert "completions by shard: shard 0: 12" in text


def test_render_without_failovers():
    events = [TraceEvent(10.0, "router", "txn.complete",
                         attrs={"shard": 0, "latency_us": 10.0})]
    text = analyze_timeline(events).render()
    assert "no failover events in this trace" in text


def test_latency_summary_percentiles_are_exact():
    summary = LatencySummary.from_values(list(range(1, 101)))
    assert summary.p50_us == 50
    assert summary.p95_us == 95
    assert summary.max_us == 100
    assert LatencySummary.from_values([]) == LatencySummary()


def test_cli_renders_and_converts(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    write_jsonl(trace, _failover_events())
    chrome = tmp_path / "t.chrome.json"
    assert main([str(trace), "--window-us", "1000",
                 "--chrome-trace", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "Failover timeline" in out
    assert "downtime 7.50 ms" in out
    assert chrome.exists()
    assert "chrome trace written" in out


def test_cli_module_entrypoint(tmp_path):
    import os
    import pathlib
    import subprocess
    import sys

    import repro

    src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ, PYTHONPATH=src)
    trace = tmp_path / "t.jsonl"
    write_jsonl(trace, _failover_events())
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs.report", str(trace)],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Failover timeline" in proc.stdout


def test_latency_summary_p99_and_to_dict():
    summary = LatencySummary.from_values(list(range(1, 101)))
    assert summary.p99_us == 99
    payload = summary.to_dict()
    assert payload["p99_us"] == 99
    assert payload["count"] == 100


def test_timeline_to_dict_shape():
    report = analyze_timeline(_failover_events(), window_us=1_000.0)
    payload = report.to_dict()
    assert payload["completions"] == 12
    assert payload["failovers"][0]["shard"] == 1
    assert payload["failovers"][0]["downtime_us"] == 7_500.0
    assert payload["routing"]["retries"] == 1
    assert payload["latency_us"]["p50_us"] == 50.0
    assert payload["per_shard_completions"] == {"0": 12}
    assert payload["window_counts"] == [1] * 12


def test_cli_audit_slo_spans_text(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    write_jsonl(trace, _failover_events())
    assert main([str(trace), "--audit", "--slo"]) == 0
    out = capsys.readouterr().out
    assert "Trace audit: PASS" in out
    assert "Availability" in out
    assert "serving windows confirmed" in out


def test_cli_audit_fails_on_violations(tmp_path, capsys):
    events = _failover_events()
    # A completion on the crashed shard inside its downtime window.
    events.append(TraceEvent(3_000.0, "router", "txn.complete",
                             attrs={"shard": 1, "latency_us": 5.0}))
    trace = tmp_path / "bad.jsonl"
    write_jsonl(trace, events)
    assert main([str(trace), "--audit"]) == 1
    out = capsys.readouterr().out
    assert "downtime-completion" in out
    # Without --audit the same trace renders fine and exits 0.
    assert main([str(trace)]) == 0


def test_cli_json_format_sections(tmp_path, capsys):
    import json

    trace = tmp_path / "t.jsonl"
    write_jsonl(trace, _failover_events())
    assert main([str(trace), "--audit", "--slo", "--spans",
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"timeline", "audit", "slo", "attribution"}
    assert payload["audit"]["ok"] is True
    assert payload["slo"]["audit_ok"] is True
    assert payload["timeline"]["routing"]["completed"] == 12
    assert payload["attribution"]["commits"] == 0
    # The crashed shard's availability reflects its 7.5 ms outage.
    scopes = {s["scope"]: s for s in payload["slo"]["scopes"]}
    assert scopes["shard.1"]["downtime_us"] == 7_500.0


def test_cli_json_without_sections_is_timeline_only(tmp_path, capsys):
    import json

    trace = tmp_path / "t.jsonl"
    write_jsonl(trace, _failover_events())
    assert main([str(trace), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"timeline"}


def _events_with_series():
    events = _failover_events()
    for tick in range(3):
        events.append(TraceEvent(
            tick * 1_000.0, "series", "series.sample",
            attrs={"router.completed": float(tick * 2), "queue": 1.0},
        ))
    return sorted(events, key=lambda e: e.ts_us)


def test_cli_series_from_trace(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    write_jsonl(str(trace), _events_with_series())
    assert main([str(trace), "--series"]) == 0
    out = capsys.readouterr().out
    assert "series: 3 samples" in out
    assert "router.completed" in out


def test_cli_series_out_and_series_file_input(tmp_path, capsys):
    from repro.obs.series import SeriesFrame

    trace = tmp_path / "trace.jsonl"
    series_path = tmp_path / "series.jsonl"
    write_jsonl(str(trace), _events_with_series())
    assert main([str(trace), "--series",
                 "--series-out", str(series_path)]) == 0
    capsys.readouterr()
    frame = SeriesFrame.read_jsonl(str(series_path))
    assert len(frame) == 3

    # The written series file is itself a valid CLI input, rendered
    # standalone in both formats.
    assert main([str(series_path), "--series"]) == 0
    assert "series: 3 samples" in capsys.readouterr().out
    import json

    assert main([str(series_path), "--series", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert list(payload) == ["series"]
    assert payload["series"]["columns"] == ["queue", "router.completed"]


def test_cli_output_writes_file_and_keeps_exit_code(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    write_jsonl(str(trace), _failover_events())
    target = tmp_path / "deep" / "dir" / "report.txt"
    assert main([str(trace), str("--output"), str(target)]) == 0
    assert capsys.readouterr().out == ""
    assert "failover timeline" in target.read_text() or target.read_text()

    # Audit violations still fail the exit code when writing to a file.
    events = _failover_events()
    events.append(TraceEvent(3_000.0, "router", "txn.complete",
                             attrs={"shard": 1, "latency_us": 5.0}))
    bad = tmp_path / "bad.jsonl"
    write_jsonl(str(bad), events)
    bad_target = tmp_path / "bad.txt"
    assert main([str(bad), "--audit", "--output", str(bad_target)]) == 1
    assert "downtime-completion" in bad_target.read_text()


def test_cli_series_out_requires_series(tmp_path, capsys):
    import pytest

    trace = tmp_path / "trace.jsonl"
    write_jsonl(str(trace), _failover_events())
    with pytest.raises(SystemExit):
        main([str(trace), "--series-out", "x.jsonl"])
    capsys.readouterr()
