"""The recovery-span recorder and its trace-side reconstruction."""

import pytest

from repro.obs import Observer, TraceEvent
from repro.obs.recovery import (
    PHASE_CATCHUP,
    PHASE_DETECT,
    PHASE_PROMOTE,
    PHASE_VIEW,
    RECOVERY_PHASE,
    RECOVERY_PHASES,
    RECOVERY_RESUME,
    RECOVERY_SPAN,
    RecoverySpanRecorder,
    collect_recoveries,
    scope_of_component,
)


def _events_named(observer, name):
    return [e for e in observer.recorder.events if e.name == name]


def test_recorder_emits_root_and_tiling_children():
    observer = Observer()
    recorder = RecoverySpanRecorder(observer, "shard.2.cluster")
    recorder.phase(PHASE_DETECT, 1_000.0, 1_550.0, timeout_us=500.0)
    recorder.phase(PHASE_VIEW, 1_550.0, 1_550.0)
    recorder.phase(PHASE_PROMOTE, 1_550.0, 1_550.0)
    recorder.phase(PHASE_CATCHUP, 1_550.0, 15_531.0, bytes_restored=4096)
    link = recorder.finish(node="shard2/backup")

    roots = _events_named(observer, RECOVERY_SPAN)
    children = _events_named(observer, RECOVERY_PHASE)
    assert len(roots) == 1
    root = roots[0]
    assert root.ts_us == 1_000.0
    assert root.dur_us == 14_531.0
    assert root.attrs["node"] == "shard2/backup"
    assert root.attrs["trace_id"] == link.trace_id
    assert root.attrs["span_id"] == link.span_id
    # Zero-width phases (view, promote) are skipped on emission.
    assert [c.attrs["phase"] for c in children] == [
        PHASE_DETECT, PHASE_CATCHUP,
    ]
    assert all(c.attrs["parent_id"] == link.span_id for c in children)
    # The emitted children still tile the root exactly.
    assert children[0].ts_us == root.ts_us
    assert children[0].end_us == children[1].ts_us
    assert children[1].end_us == root.end_us


def test_recorder_rejects_bad_phases():
    recorder = RecoverySpanRecorder(Observer(), "cluster")
    with pytest.raises(ValueError, match="unknown recovery phase"):
        recorder.phase("restart", 0.0, 1.0)
    with pytest.raises(ValueError, match="ends before it starts"):
        recorder.phase(PHASE_DETECT, 10.0, 5.0)
    recorder.phase(PHASE_DETECT, 0.0, 10.0)
    with pytest.raises(ValueError, match="must tile"):
        recorder.phase(PHASE_CATCHUP, 12.0, 20.0)
    with pytest.raises(ValueError, match="no recorded phases"):
        RecoverySpanRecorder(Observer(), "cluster").finish()


def test_phase_order_is_the_vocabulary_order():
    assert RECOVERY_PHASES == (
        PHASE_DETECT, PHASE_VIEW, PHASE_PROMOTE, PHASE_CATCHUP,
    )


def test_scope_of_component():
    assert scope_of_component("shard.2.cluster") == "shard.2"
    assert scope_of_component("group.1.cluster") == "group.1"
    assert scope_of_component("cluster") == ""


def test_collect_recoveries_joins_phases_and_resume():
    observer = Observer()
    recorder = RecoverySpanRecorder(observer, "shard.0.cluster")
    recorder.phase(PHASE_DETECT, 100.0, 150.0)
    recorder.phase(PHASE_CATCHUP, 150.0, 400.0, bytes_restored=64)
    link = recorder.finish(node="n0")
    observer.event_at(
        425.0, "router", RECOVERY_RESUME,
        trace_id=link.trace_id, parent_id=link.span_id,
        shard=0, commit_trace_id=77,
    )

    trees = collect_recoveries(observer.recorder.events)
    assert len(trees) == 1
    tree = trees[0]
    assert tree.scope == "shard.0"
    assert tree.start_us == 100.0
    assert tree.dur_us == 300.0
    assert tree.phases == {PHASE_DETECT: 50.0, PHASE_CATCHUP: 250.0}
    assert tree.phase_sum_us == tree.dur_us
    assert tree.dominant_phase == PHASE_CATCHUP
    assert tree.resume_gap_us == 25.0
    assert tree.resume_commit_trace_id == 77


def test_collect_recoveries_component_prefix_filter():
    observer = Observer()
    for shard in (0, 1):
        recorder = RecoverySpanRecorder(observer, f"shard.{shard}.cluster")
        recorder.phase(PHASE_DETECT, 10.0, 20.0)
        recorder.finish()
    all_trees = collect_recoveries(observer.recorder.events)
    assert [t.scope for t in all_trees] == ["shard.0", "shard.1"]
    only_one = collect_recoveries(
        observer.recorder.events, component_prefix="shard.1"
    )
    assert [t.scope for t in only_one] == ["shard.1"]


def test_collect_recoveries_survives_jsonl_roundtrip(tmp_path):
    from repro.obs import read_jsonl, write_jsonl

    observer = Observer()
    recorder = RecoverySpanRecorder(observer, "shard.3.cluster")
    recorder.phase(PHASE_DETECT, 5.0, 9.0)
    recorder.phase(PHASE_CATCHUP, 9.0, 21.0)
    recorder.finish(node="n3")
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, observer.recorder.events)
    events, _ = read_jsonl(path)
    trees = collect_recoveries(events)
    assert len(trees) == 1
    assert trees[0].phases == {PHASE_DETECT: 4.0, PHASE_CATCHUP: 12.0}


def test_resume_without_commit_link_is_gap_only():
    observer = Observer()
    recorder = RecoverySpanRecorder(observer, "shard.1.cluster")
    recorder.phase(PHASE_DETECT, 0.0, 10.0)
    link = recorder.finish()
    observer.event_at(
        12.0, "router", RECOVERY_RESUME,
        trace_id=link.trace_id, parent_id=link.span_id, shard=1,
    )
    tree = collect_recoveries(observer.recorder.events)[0]
    assert tree.resume_gap_us == 2.0
    assert tree.resume_commit_trace_id is None
