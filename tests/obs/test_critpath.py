"""The generic critical-path walker and the downtime decomposition."""

import pytest

from repro.obs import Observer, TraceEvent
from repro.obs.critpath import (
    SpanNode,
    collect_span_forest,
    critical_path,
    critical_path_us,
    crosscheck_recovery_slo,
    decompose_recoveries,
    recovery_forest,
    self_time_us,
)
from repro.obs.recovery import (
    PHASE_CATCHUP,
    PHASE_DETECT,
    RECOVERY_RESUME,
    RecoverySpanRecorder,
)


def _span(ts, dur, name="span", **attrs):
    return TraceEvent(ts, "c", name, kind="span", dur_us=dur, attrs=attrs)


def _node(ts, dur, span_id, parent_id=None, **attrs):
    return SpanNode(
        event=_span(ts, dur, **attrs),
        span_id=span_id,
        parent_id=parent_id,
        trace_id=1,
    )


def _tree(root, *children):
    root.children.extend(children)
    return root


# -- the walker on hand-built geometries -------------------------------------


def test_tiling_children_cover_the_whole_root():
    root = _tree(
        _node(0.0, 100.0, 1),
        _node(0.0, 30.0, 2, parent_id=1),
        _node(30.0, 70.0, 3, parent_id=1),
    )
    segments = critical_path(root)
    assert [(s.node.span_id, s.start_us, s.end_us) for s in segments] == [
        (2, 0.0, 30.0), (3, 30.0, 100.0),
    ]
    assert critical_path_us(root) == 100.0
    assert self_time_us(root) == 0.0


def test_gaps_are_the_roots_own_time():
    root = _tree(
        _node(0.0, 100.0, 1),
        _node(10.0, 20.0, 2, parent_id=1),
        _node(60.0, 10.0, 3, parent_id=1),
    )
    segments = critical_path(root)
    assert [(s.node.span_id, s.dur_us) for s in segments] == [
        (1, 10.0), (2, 20.0), (1, 30.0), (3, 10.0), (1, 30.0),
    ]
    assert critical_path_us(root) == 30.0
    assert self_time_us(root) == 70.0


def test_overlapping_children_count_once():
    # Two children overlap on [20, 40]; the later-ending one owns it.
    root = _tree(
        _node(0.0, 100.0, 1),
        _node(10.0, 30.0, 2, parent_id=1),
        _node(20.0, 40.0, 3, parent_id=1),
    )
    assert critical_path_us(root) == 50.0  # [10, 60], not 30 + 40


def test_children_clip_to_the_parent():
    root = _tree(
        _node(50.0, 50.0, 1),
        _node(0.0, 200.0, 2, parent_id=1),  # sticks out both sides
    )
    assert critical_path_us(root) == 50.0
    assert self_time_us(root) == 0.0


def test_nested_descendants_attribute_to_the_deepest():
    grandchild = _node(20.0, 10.0, 3, parent_id=2)
    child = _tree(_node(10.0, 40.0, 2, parent_id=1), grandchild)
    root = _tree(_node(0.0, 100.0, 1), child)
    segments = critical_path(root)
    by_owner = {}
    for segment in segments:
        owner = segment.node.span_id
        by_owner[owner] = by_owner.get(owner, 0.0) + segment.dur_us
    assert by_owner == {1: 60.0, 2: 30.0, 3: 10.0}


def test_collect_span_forest_resolves_parents_and_filters():
    events = [
        _span(0.0, 10.0, name="a.span", trace_id=1, span_id=1),
        _span(0.0, 4.0, name="a.phase", trace_id=1, span_id=2, parent_id=1),
        _span(0.0, 3.0, name="b.span", trace_id=2, span_id=3, parent_id=99),
        TraceEvent(1.0, "c", "instant", attrs={"span_id": 4}),
    ]
    roots = collect_span_forest(events)
    assert [r.span_id for r in roots] == [1, 3]  # orphan 3 becomes a root
    assert [c.span_id for c in roots[0].children] == [2]
    only_a = collect_span_forest(events, names=("a.span", "a.phase"))
    assert [r.span_id for r in only_a] == [1]


# -- the decomposition over recorded recoveries ------------------------------


def _record_failover(observer, scope, crash, detect, restore, resume=None):
    recorder = RecoverySpanRecorder(observer, f"{scope}.cluster")
    detected = crash + detect
    recorder.phase(PHASE_DETECT, crash, detected)
    recorder.phase(PHASE_CATCHUP, detected, detected + restore)
    link = recorder.finish(node=f"{scope}/backup")
    if resume is not None:
        observer.event_at(
            detected + restore + resume, "router", RECOVERY_RESUME,
            trace_id=link.trace_id, parent_id=link.span_id,
        )
    return link


def test_decompose_recoveries_per_scope_tables():
    observer = Observer()
    _record_failover(observer, "shard.2", 1_000.0, 500.0, 4_500.0, resume=250.0)
    _record_failover(observer, "shard.2", 20_000.0, 500.0, 1_500.0)
    _record_failover(observer, "group.1", 5_000.0, 0.0, 3_000.0)

    decomposition = decompose_recoveries(observer.recorder.events)
    assert decomposition.recoveries == 3
    assert [s.label for s in decomposition.scopes] == ["group.1", "shard.2"]

    shard = decomposition.scope("shard.2")
    assert shard.recoveries == 2
    assert shard.total_downtime_us == 7_000.0
    assert shard.dominant_phase == PHASE_CATCHUP
    assert shard.share(PHASE_CATCHUP) == pytest.approx(6_000.0 / 7_000.0)
    assert shard.resume_gaps == 1
    assert shard.latency["recovery"].mean_us == pytest.approx(3_500.0)
    assert shard.latency["resume"].mean_us == pytest.approx(250.0)

    rendered = decomposition.render()
    assert "shard.2" in rendered and "dominant phase: catchup" in rendered
    payload = decomposition.to_dict()
    assert payload["recoveries"] == 3
    assert payload["scopes"][1]["phase_shares"][PHASE_CATCHUP] > 0.8


def test_decompose_recoveries_scope_filter():
    observer = Observer()
    _record_failover(observer, "shard.2", 0.0, 10.0, 90.0)
    _record_failover(observer, "group.1", 0.0, 0.0, 50.0)
    only_groups = decompose_recoveries(
        observer.recorder.events, scopes=["group"]
    )
    assert [s.label for s in only_groups.scopes] == ["group.1"]
    with pytest.raises(KeyError):
        only_groups.scope("shard.2")


def test_recovery_forest_walks_like_any_dag():
    observer = Observer()
    _record_failover(observer, "shard.0", 0.0, 100.0, 900.0)
    roots = recovery_forest(observer.recorder.events)
    assert len(roots) == 1
    assert critical_path_us(roots[0]) == pytest.approx(1_000.0)
    assert self_time_us(roots[0]) == pytest.approx(0.0)


# -- the SLO cross-check -----------------------------------------------------


class _FakeScope:
    def __init__(self, scope, failovers, downtime_us, windows):
        self.scope = scope
        self.label = scope or "cluster"
        self.failovers = failovers
        self.downtime_us = downtime_us
        self.windows = windows


class _FakeSlo:
    def __init__(self, scopes):
        self.scopes = scopes


def test_crosscheck_accepts_matching_roots_and_windows():
    observer = Observer()
    _record_failover(observer, "shard.2", 1_000.0, 500.0, 4_500.0)
    slo = _FakeSlo([
        _FakeScope("shard.2", 1, 5_000.0, [(1_000.0, 6_000.0)]),
        _FakeScope("shard.3", 0, 0.0, []),
    ])
    decomposition = crosscheck_recovery_slo(observer.recorder.events, slo)
    assert decomposition.recoveries == 1


def test_crosscheck_flags_count_sum_window_and_orphan_mismatches():
    observer = Observer()
    _record_failover(observer, "shard.2", 1_000.0, 500.0, 4_500.0)
    events = observer.recorder.events

    missing = _FakeSlo([_FakeScope("shard.2", 2, 5_000.0,
                                   [(1_000.0, 6_000.0)] * 2)])
    with pytest.raises(AssertionError, match="recovery span"):
        crosscheck_recovery_slo(events, missing)

    wrong_sum = _FakeSlo([_FakeScope("shard.2", 1, 9_000.0,
                                     [(1_000.0, 10_000.0)])])
    with pytest.raises(AssertionError, match="sum to"):
        crosscheck_recovery_slo(events, wrong_sum)

    wrong_window = _FakeSlo([_FakeScope("shard.2", 1, 5_000.0,
                                        [(2_000.0, 7_000.0)])])
    with pytest.raises(AssertionError, match="matches no SLO"):
        crosscheck_recovery_slo(events, wrong_window)

    orphan = _FakeSlo([])
    with pytest.raises(AssertionError, match="does not know"):
        crosscheck_recovery_slo(events, orphan)
