"""Exporter round-trips: JSONL and Chrome trace_event."""

import json

import pytest

from repro.obs import (
    Observer,
    TraceEvent,
    analyze_timeline,
    chrome_trace_dict,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)

EVENTS = [
    TraceEvent(0.0, "shard.0.router", "txn.submit", attrs={"key": 1}),
    TraceEvent(5.0, "shard.1.cluster", "fault.crash", attrs={"node": "p"}),
    TraceEvent(5.7, "shard.1.cluster", "takeover", kind="span", dur_us=9.3,
               attrs={"bytes_restored": 4096, "new_primary": "b"}),
    TraceEvent(20.0, "shard.0.router", "txn.complete",
               attrs={"shard": 0, "latency_us": 20.0}),
]


def test_jsonl_round_trip(tmp_path):
    observer = Observer(clock=lambda: 1.0)
    observer.count("router.routed", 3)
    observer.observe("router.latency_us", 42.0)
    path = write_jsonl(tmp_path / "t.jsonl", EVENTS, metrics=observer.registry)
    events, snapshot = read_jsonl(path)
    assert events == EVENTS
    assert snapshot == observer.registry.snapshot()


def test_jsonl_without_metrics(tmp_path):
    path = write_jsonl(tmp_path / "t.jsonl", EVENTS)
    events, snapshot = read_jsonl(path)
    assert events == EVENTS
    assert snapshot is None


def test_jsonl_rejects_garbage(tmp_path):
    bad_format = tmp_path / "bad.jsonl"
    bad_format.write_text('{"type":"meta","format":"not-a-trace"}\n')
    with pytest.raises(ValueError):
        read_jsonl(bad_format)
    bad_type = tmp_path / "worse.jsonl"
    bad_type.write_text('{"type":"mystery"}\n')
    with pytest.raises(ValueError):
        read_jsonl(bad_type)


def test_jsonl_is_line_stable(tmp_path):
    first = write_jsonl(tmp_path / "a.jsonl", EVENTS).read_text()
    second = write_jsonl(tmp_path / "b.jsonl", EVENTS).read_text()
    assert first == second
    for line in first.splitlines():
        json.loads(line)  # every line is standalone JSON


def test_chrome_trace_structure(tmp_path):
    trace = chrome_trace_dict(EVENTS)
    records = trace["traceEvents"]
    names = {r["args"]["name"] for r in records if r["ph"] == "M"}
    assert names == {"shard.0.router", "shard.1.cluster"}
    spans = [r for r in records if r["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["dur"] == 9.3 and spans[0]["ts"] == 5.7
    instants = [r for r in records if r["ph"] == "i"]
    assert len(instants) == 3
    # Same component -> same thread lane.
    by_component = {r["args"]["name"]: r["tid"] for r in records
                    if r["ph"] == "M"}
    for record in spans + instants:
        assert record["tid"] == by_component[record["cat"]]
    path = write_chrome_trace(tmp_path / "t.json", EVENTS)
    assert json.loads(path.read_text()) == trace


@pytest.mark.parametrize("seed", [7, 1234])
def test_failover_trace_round_trips_through_disk(tmp_path, seed):
    """The satellite contract: dump a real failover trace to JSONL,
    reload it, and the report reproduces the same downtime and
    throughput numbers as the in-memory analysis."""
    from repro.experiments.extension_sharding import failover_timeline

    timeline = failover_timeline(
        num_shards=2,
        slots=12,
        crashed_shard=1,
        db_bytes_per_shard=4 * 1024 * 1024,
        seed=seed,
        trace_path=tmp_path / "failover.jsonl",
    )
    events, snapshot = read_jsonl(tmp_path / "failover.jsonl")
    assert events == timeline.trace_events
    assert snapshot is not None  # the metrics snapshot rode along

    live = analyze_timeline(timeline.trace_events, window_us=timeline.slot_us)
    reloaded = analyze_timeline(events, window_us=timeline.slot_us)
    assert reloaded.failovers == live.failovers
    assert reloaded.routing == live.routing
    assert reloaded.completions == live.completions
    assert reloaded.latency == live.latency
    assert reloaded.render() == live.render()
    span = reloaded.failovers[0]
    assert span.downtime_us == timeline.takeover.downtime_us
    assert [
        reloaded.completions_between(s.start_us, s.start_us + timeline.slot_us)
        for s in timeline.samples[:12]
    ] == [s.completed for s in timeline.samples[:12]]
