"""The recovery-span-tiles-downtime and alert-grounded auditor rules,
each exercised with deliberately broken synthetic traces."""

from repro.obs import TraceEvent
from repro.obs.alerts import DEFAULT_RULES, evaluate_alerts
from repro.obs.audit import audit_events


def _rules(report):
    return sorted({violation.rule for violation in report.violations})


def _failover(scope="shard.2", crash=1_000.0, detect=500.0,
              restore=2_000.0, base_id=900):
    """One synthetic failover: crash, takeover span, and a recovery
    span whose detect+catchup children tile the downtime exactly."""
    component = f"{scope}.cluster"
    detected = crash + detect
    end = detected + restore
    return [
        TraceEvent(crash, component, "fault.crash", attrs={"node": "p"}),
        TraceEvent(detected, component, "takeover", kind="span",
                   dur_us=restore, attrs={"bytes_restored": 64}),
        TraceEvent(crash, component, "recovery.span", kind="span",
                   dur_us=end - crash,
                   attrs={"trace_id": base_id, "span_id": base_id + 1}),
        TraceEvent(crash, component, "recovery.phase", kind="span",
                   dur_us=detect,
                   attrs={"trace_id": base_id, "span_id": base_id + 2,
                          "parent_id": base_id + 1, "phase": "detect"}),
        TraceEvent(detected, component, "recovery.phase", kind="span",
                   dur_us=restore,
                   attrs={"trace_id": base_id, "span_id": base_id + 3,
                          "parent_id": base_id + 1, "phase": "catchup"}),
    ]


def _reattr(event, **changes):
    return TraceEvent(
        changes.pop("ts_us", event.ts_us), event.component, event.name,
        kind=event.kind, dur_us=changes.pop("dur_us", event.dur_us),
        attrs={**event.attrs, **changes},
    )


# -- recovery-span-tiles-downtime --------------------------------------------


def test_clean_recovery_trace_passes():
    assert audit_events(_failover()).ok


def test_rule_is_gated_on_recovery_spans_being_present():
    # Pre-recovery traces (crash + takeover, no spans) stay clean.
    legacy = [event for event in _failover()
              if not event.name.startswith("recovery.")]
    assert audit_events(legacy).ok


def test_phase_sum_mismatch_is_flagged():
    events = _failover()
    events[4] = _reattr(events[4], dur_us=events[4].dur_us - 300.0)
    report = audit_events(events)
    assert "recovery-span-tiles-downtime" in _rules(report)
    assert any("phase\nsum" in v.message or "phase sum" in v.message
               for v in report.violations)


def test_non_tiling_children_are_flagged():
    events = _failover()
    # Shift catchup 100us late: a hole opens after detect.
    events[4] = _reattr(events[4], ts_us=events[4].ts_us + 100.0,
                        dur_us=events[4].dur_us - 100.0)
    report = audit_events(events)
    assert "recovery-span-tiles-downtime" in _rules(report)
    assert any("must tile" in v.message for v in report.violations)


def test_unknown_phase_is_flagged():
    events = _failover()
    events[3] = _reattr(events[3], phase="reboot")
    report = audit_events(events)
    assert any("unknown recovery phase" in v.message
               for v in report.violations)


def test_orphan_phase_child_is_flagged():
    events = _failover()
    events.append(_reattr(events[4], parent_id=12_345, span_id=999))
    report = audit_events(events)
    assert any("unknown parent" in v.message for v in report.violations)


def test_downtime_window_without_recovery_span_is_flagged():
    # shard.2 recovers properly; shard.3's crash has no recovery span,
    # which the rule (armed by shard.2's spans) must flag.
    events = _failover() + [
        event for event in _failover(scope="shard.3", base_id=950)
        if not event.name.startswith("recovery.")
    ]
    report = audit_events(events)
    violation = next(v for v in report.violations
                     if "no\nmatching" in v.message
                     or "no matching" in v.message)
    assert violation.component == "shard.3"
    assert violation.attrs["window_end_us"] > violation.attrs["window_start_us"]


def test_recovery_span_without_downtime_window_is_flagged():
    events = _failover() + [
        event for event in _failover(scope="shard.3", base_id=950)
        if event.name.startswith("recovery.")
    ]
    report = audit_events(events)
    assert any("matches no downtime window" in v.message
               for v in report.violations)


def test_mismatched_root_bounds_are_flagged():
    events = _failover()
    # Root starts 200us after the crash: child tiling still holds but
    # the root no longer matches the downtime window.
    for index in (2, 3):
        events[index] = _reattr(events[index],
                                ts_us=events[index].ts_us + 200.0)
    events[3] = _reattr(events[3], dur_us=events[3].dur_us - 200.0)
    report = audit_events(events)
    assert "recovery-span-tiles-downtime" in _rules(report)


# -- alert-grounded ----------------------------------------------------------


def _alert_fire(ts, scope, rule=DEFAULT_RULES[0]):
    return TraceEvent(ts, "alerts", "alert.fire",
                      attrs={**rule.to_attrs(), "scope": scope})


def _alerting_base():
    """A 4.5 ms outage plus sampler ticks long enough for every
    default rule to fire *and* resolve."""
    ticks = [
        TraceEvent(float(ts), "series", "series.sample",
                   attrs={"goodput": 1})
        for ts in range(0, 21_000, 1_000)
    ]
    return _failover(restore=4_000.0) + ticks


def test_justified_alerts_pass():
    base = _alerting_base()
    alerts = evaluate_alerts(base)
    fires = [e for e in alerts if e.name == "alert.fire"]
    resolves = [e for e in alerts if e.name == "alert.resolve"]
    assert len(fires) == len(resolves) == len(DEFAULT_RULES)
    assert audit_events(base + alerts).ok


def test_rule_is_gated_on_alert_events_being_present():
    # Alert-worthy downtime with no recorded alerts: the rule stays
    # quiet (report-level verify_alerts covers un-annotated traces).
    assert audit_events(_alerting_base()).ok


def test_false_fire_is_flagged():
    base = _alerting_base()
    events = base + evaluate_alerts(base)
    events.append(_alert_fire(100.0, "shard.7"))
    report = audit_events(events)
    assert _rules(report) == ["alert-grounded"]
    assert any("not justified" in v.message.replace("\n", " ")
               for v in report.violations)


def test_missed_window_is_flagged():
    base = _alerting_base()
    alerts = evaluate_alerts(base)
    fires = [e for e in alerts if e.name == "alert.fire"]
    # Drop one fire; its rule survives in the matching resolve's attrs.
    events = base + [e for e in alerts if e is not fires[0]]
    report = audit_events(events)
    assert _rules(report) == ["alert-grounded"]
    assert any("missed window" in v.message for v in report.violations)
