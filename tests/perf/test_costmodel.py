"""The cost model: counts -> time, with sane monotonicity."""

import pytest

from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.perf.costmodel import CostModel
from repro.san.packets import PacketTrace
from repro.vista.stats import AccessProfile, EngineCounters
from repro.workloads.driver import RunResult

MB = 1024 * 1024


def make_result(workload="debit-credit", transactions=10, **counter_kwargs):
    counters = EngineCounters(transactions=transactions, **counter_kwargs)
    profile = AccessProfile()
    profile.declare("db", 50 * MB)
    return RunResult(
        workload=workload,
        target_kind="test",
        transactions=transactions,
        counters=counters,
        profile=profile,
    )


def test_base_cost_comes_from_workload():
    model = CostModel()
    dc = model.engine_cpu_us(make_result("debit-credit"))
    oe = model.engine_cpu_us(make_result("order-entry"))
    assert dc["base"] == DEFAULT_CALIBRATION.txn_base_us["debit-credit"]
    assert oe["base"] == DEFAULT_CALIBRATION.txn_base_us["order-entry"]
    assert oe["base"] > dc["base"]


def test_heap_operations_cost_time():
    model = CostModel()
    without = make_result()
    with_allocs = make_result(mallocs=80, frees=80)
    assert (
        model.engine_cpu_us(with_allocs).total_us()
        > model.engine_cpu_us(without).total_us()
    )
    delta = (
        model.engine_cpu_us(with_allocs)["heap"]
    )
    assert delta == pytest.approx(
        8 * (DEFAULT_CALIBRATION.malloc_us + DEFAULT_CALIBRATION.free_us)
    )


def test_comparison_cost_for_diffing():
    model = CostModel()
    result = make_result(bytes_compared=620)
    assert model.engine_cpu_us(result)["compare"] == pytest.approx(
        62 * DEFAULT_CALIBRATION.compare_byte_us
    )


def test_cache_stall_grows_with_working_set():
    model = CostModel()
    small = make_result()
    small.profile.declare("db", 10 * MB)
    small.profile.touch_random("db", 0, 1)
    big = make_result()
    big.profile.declare("db", 1024 * MB)
    big.profile.touch_random("db", 0, 1)
    assert model.cache_stall_us(big) > model.cache_stall_us(small)


def test_sequential_access_cheaper_than_random_at_scale():
    model = CostModel()
    random_touch = make_result()
    random_touch.profile.touch_random("db", 0, 64 * 10)
    sequential = make_result()
    sequential.profile.touch_sequential("db", 64 * 10)
    # At a 50 MB working set random touches mostly miss; sequential
    # misses once per line too — they should be comparable, while a
    # cache-resident working set makes random far cheaper.
    resident = make_result()
    resident.profile.declare("db", 1 * MB)
    resident.profile.touch_random("db", 0, 64 * 10)
    assert model.cache_stall_us(resident) < model.cache_stall_us(random_touch)


def test_link_time_from_packet_trace():
    model = CostModel()
    result = make_result()
    result.packet_trace = PacketTrace({32: 20})
    expected = PacketTrace({32: 2}).link_time_us(DEFAULT_CALIBRATION.san)
    assert model.link_time_us(result) == pytest.approx(expected)


def test_link_time_zero_without_trace():
    assert CostModel().link_time_us(make_result()) == 0.0


def test_io_issue_cost():
    model = CostModel()
    result = make_result()
    result.io_stores = 100
    result.traffic_bytes = {"modified": 1000}
    per_txn = model.io_issue_us(result)
    assert per_txn == pytest.approx(
        10 * DEFAULT_CALIBRATION.io_store_us
        + 100 * DEFAULT_CALIBRATION.io_byte_us
    )


def test_combine_cpu_and_link_partial_overlap():
    model = CostModel()
    combined = model.combine_cpu_and_link(10.0, 4.0)
    assert combined == pytest.approx(10.0 + DEFAULT_CALIBRATION.overlap * 4.0)
    assert model.combine_cpu_and_link(4.0, 10.0) == combined


def test_breakdown_totals():
    model = CostModel()
    result = make_result(set_ranges=40, db_writes=40, db_bytes_written=280)
    breakdown = model.breakdown(result)
    assert breakdown.cpu_total_us == pytest.approx(
        breakdown.cpu.total_us()
        + breakdown.cache_stall_us
        + breakdown.io_issue_us
    )
