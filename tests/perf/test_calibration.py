"""Calibration constants and the paper's reference numbers."""

import pytest

from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION, PAPER


def test_default_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_CALIBRATION.overlap = 0.9


def test_with_bases_returns_modified_copy():
    updated = DEFAULT_CALIBRATION.with_bases({"debit-credit": 9.9})
    assert updated.txn_base_us["debit-credit"] == 9.9
    assert updated.txn_base_us["order-entry"] == (
        DEFAULT_CALIBRATION.txn_base_us["order-entry"]
    )
    assert DEFAULT_CALIBRATION.txn_base_us["debit-credit"] != 9.9


def test_overlap_is_a_fraction():
    assert 0.0 <= DEFAULT_CALIBRATION.overlap <= 1.0


def test_paper_reference_orderings():
    """Sanity-check the transcribed paper numbers themselves."""
    for workload in ("debit-credit", "order-entry"):
        standalone = PAPER["standalone"][workload]
        assert standalone["v3"] > standalone["v1"] > standalone["v2"] > standalone["v0"]
        passive = PAPER["passive"][workload]
        assert passive["v3"] > passive["v2"] > passive["v1"] > passive["v0"]
        assert PAPER["active"][workload]["active"] > passive["v3"]
        sizes = PAPER["dbsize"][workload]
        assert sizes["10MB"] > sizes["100MB"] > sizes["1GB"]


def test_paper_traffic_per_txn_consistency():
    """Per-transaction traffic must reflect the MB tables' ratios."""
    dc = PAPER["traffic_per_txn"]["debit-credit"]
    assert dc["v0"]["meta"] > 10 * dc["v0"]["undo"]
    assert dc["v2"]["undo"] == dc["v2"]["modified"]
    assert dc["active"]["undo"] == 0.0


def test_figure1_reference_monotonic():
    curve = PAPER["figure1"]
    assert curve[4] < curve[8] < curve[16] < curve[32]
