"""The throughput estimator: composition rules and SMP capping."""

import pytest

from repro.memory.rio import RioMemory
from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.perf.throughput import (
    ThroughputEstimator,
    ThroughputReport,
    calibrate_bases,
)
from repro.perf.costmodel import CostModel
from repro.replication.passive import PassiveReplicatedSystem
from repro.vista import EngineConfig, create_engine
from repro.workloads import DebitCreditWorkload, run_workload

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=4 * MB, nominal_db_bytes=50 * MB,
                      log_bytes=256 * 1024)


def standalone_result(version="v3", txns=150):
    engine = create_engine(version, RioMemory(f"tp-{version}"), CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=2)
    workload.setup(engine)
    return run_workload(engine, workload, txns)


def passive_result(version="v3", txns=150):
    system = PassiveReplicatedSystem(version, CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=2)
    workload.setup(system)
    system.sync_initial()
    return run_workload(system, workload, txns)


def test_standalone_report_has_no_link_time():
    report = ThroughputEstimator().standalone(standalone_result())
    assert report.link_us == 0.0
    assert report.tps == pytest.approx(1e6 / report.txn_time_us)
    assert report.mode == "standalone"


def test_passive_slower_than_standalone():
    estimator = ThroughputEstimator()
    standalone = estimator.standalone(standalone_result())
    passive = estimator.passive(passive_result())
    assert passive.tps < standalone.tps
    assert passive.link_us > 0


def test_passive_time_is_max_plus_overlap():
    estimator = ThroughputEstimator()
    report = estimator.passive(passive_result())
    expected = max(report.cpu_us, report.link_us) + (
        DEFAULT_CALIBRATION.overlap * min(report.cpu_us, report.link_us)
    )
    assert report.txn_time_us == pytest.approx(expected)


def test_two_safe_slower_than_one_safe():
    from repro.replication.active import ActiveReplicatedSystem

    system = ActiveReplicatedSystem(CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=2)
    workload.setup(system)
    system.sync_initial()
    result = run_workload(system, workload, 150)
    estimator = ThroughputEstimator()
    one_safe = estimator.active(result)
    two_safe = estimator.active(result, two_safe=True)
    assert two_safe.tps < one_safe.tps
    # The difference is roughly the SAN round trip.
    assert two_safe.txn_time_us - one_safe.txn_time_us >= (
        2 * DEFAULT_CALIBRATION.san.latency_us * 0.9
    )


def test_smp_linear_when_link_is_free():
    estimator = ThroughputEstimator()
    report = estimator.standalone(standalone_result())
    assert estimator.smp_aggregate(report, 4) == pytest.approx(4 * report.tps)


def test_smp_capped_by_link_capacity():
    estimator = ThroughputEstimator()
    report = estimator.passive(passive_result("v1"))
    cap = 1e6 / report.link_us
    assert estimator.smp_aggregate(report, 4) == pytest.approx(
        min(4 * report.tps, cap)
    )
    assert estimator.smp_aggregate(report, 4) < 4 * report.tps


def test_smp_rejects_zero_processors():
    estimator = ThroughputEstimator()
    report = estimator.standalone(standalone_result())
    with pytest.raises(ValueError):
        estimator.smp_aggregate(report, 0)


def test_calibrate_bases_hits_target_exactly():
    result = standalone_result("v3")
    calibrated = calibrate_bases(
        DEFAULT_CALIBRATION, {"debit-credit": result},
        targets={"debit-credit": 372_692.0},
    )
    estimator = ThroughputEstimator(calibrated)
    assert estimator.standalone(result).tps == pytest.approx(372_692.0, rel=1e-6)


def test_calibrate_bases_defaults_to_paper_v3():
    result = standalone_result("v3")
    calibrated = calibrate_bases(DEFAULT_CALIBRATION, {"debit-credit": result})
    estimator = ThroughputEstimator(calibrated)
    assert estimator.standalone(result).tps == pytest.approx(372_692.0, rel=1e-6)


def test_report_from_time():
    model = CostModel()
    breakdown = model.breakdown(standalone_result())
    report = ThroughputReport.from_time("x", 4.0, breakdown, 4.0, 0.0)
    assert report.tps == pytest.approx(250_000)
