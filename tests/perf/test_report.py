"""Report formatting helpers."""

import pytest

from repro.perf.report import ReportTable, ascii_series, ratio


def test_table_renders_aligned_columns():
    table = ReportTable("Title", ["name", "value"])
    table.add_row("short", 1)
    table.add_row("a-much-longer-name", 123456)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "name" in lines[2]
    assert "123,456" in text


def test_table_rejects_wrong_arity():
    table = ReportTable("T", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_notes_rendered():
    table = ReportTable("T", ["a"])
    table.add_row(1)
    table.add_note("something important")
    assert "note: something important" in table.render()


def test_float_formatting():
    table = ReportTable("T", ["a", "b"])
    table.add_row(0.1234, 123456.7)
    text = table.render()
    assert "0.12" in text
    assert "123,457" in text


def test_ratio():
    assert ratio(150.0, 100.0) == "1.50x"
    assert ratio(1.0, 0.0) == "-"


def test_ascii_series_shape():
    text = ascii_series(
        "Fig", [1, 2], [("A", [100.0, 200.0]), ("B", [50.0, 50.0])]
    )
    lines = text.splitlines()
    assert lines[0] == "Fig"
    assert any("A" == line for line in lines)
    # The largest value gets the longest bar.
    bars = [line.count("#") for line in lines if "#" in line]
    assert max(bars) == bars[1]  # A's 200 point


def test_ascii_series_empty_safe():
    text = ascii_series("Fig", [], [])
    assert "Fig" in text
