"""The discrete-event SMP contention simulation."""

import pytest

from repro.hardware.specs import MEMORY_CHANNEL_II
from repro.perf.smp_sim import packet_sequence, simulate_smp
from repro.san.packets import PacketTrace


def test_packet_sequence_distributes_evenly():
    trace = PacketTrace({32: 10, 4: 5})
    per_txn = packet_sequence(trace, 5)
    assert len(per_txn) == 5
    assert sum(len(packets) for packets in per_txn) == 15
    sizes = sorted(size for packets in per_txn for size in packets)
    assert sizes == [4] * 5 + [32] * 10


def test_packet_sequence_empty_trace():
    per_txn = packet_sequence(PacketTrace(), 3)
    assert per_txn == [[], [], []]


def test_packet_sequence_rejects_zero_transactions():
    with pytest.raises(ValueError):
        packet_sequence(PacketTrace(), 0)


def test_cpu_bound_stream_scales_linearly():
    # Tiny packets: the link never binds; throughput = n / cpu.
    result = simulate_smp(
        txn_cpu_us=10.0, txn_packets=[[4]], processors=4,
        duration_us=10_000.0,
    )
    assert result.aggregate_tps == pytest.approx(4 * 1e5, rel=0.02)
    assert result.link_utilization < 0.2


def test_link_bound_streams_cap_at_link_capacity():
    # Each txn posts 8 x 32-byte packets (~3.15 us of link) but only
    # 1 us of CPU: the link caps the aggregate.
    packets = [[32] * 8]
    link_per_txn = 8 * MEMORY_CHANNEL_II.packet_time_us(32)
    result = simulate_smp(
        txn_cpu_us=1.0, txn_packets=packets, processors=4,
        duration_us=20_000.0,
    )
    cap = 1e6 / link_per_txn
    assert result.aggregate_tps == pytest.approx(cap, rel=0.05)
    assert result.link_utilization > 0.95


def test_adding_processors_beyond_saturation_is_flat():
    packets = [[32] * 8]
    at_two = simulate_smp(1.0, packets, 2, duration_us=20_000.0)
    at_four = simulate_smp(1.0, packets, 4, duration_us=20_000.0)
    assert at_four.aggregate_tps <= at_two.aggregate_tps * 1.05


def test_streams_progress_fairly():
    result = simulate_smp(
        txn_cpu_us=2.0, txn_packets=[[32] * 4], processors=3,
        duration_us=20_000.0,
    )
    counts = result.per_stream_completed
    assert max(counts) - min(counts) <= max(counts) * 0.1 + 2


def test_rejects_zero_processors():
    with pytest.raises(ValueError):
        simulate_smp(1.0, [[4]], 0)


def test_write_buffer_backpressure_limits_single_stream():
    """A link-heavy stream cannot run ahead of its write buffers."""
    # 400 bytes of packets per txn >> the 192-byte buffer capacity.
    packets = [[32] * 12 + [4] * 4]
    result = simulate_smp(
        txn_cpu_us=0.5, txn_packets=packets, processors=1,
        duration_us=10_000.0,
    )
    link_per_txn = (12 * MEMORY_CHANNEL_II.packet_time_us(32)
                    + 4 * MEMORY_CHANNEL_II.packet_time_us(4))
    # Throughput is close to pure link speed, not CPU speed.
    assert result.aggregate_tps < 1.2 * 1e6 / link_per_txn
    assert result.per_stream_completed[0] > 0
