"""The exception hierarchy: everything derives from ReproError and
carries useful context."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError) or obj is errors.ReproError


def test_out_of_bounds_carries_context():
    err = errors.OutOfBoundsError("db", 10, 20, 16)
    assert err.region == "db"
    assert err.offset == 10
    assert err.length == 20
    assert err.size == 16
    assert "db" in str(err)
    assert "[10, 30)" in str(err)


def test_range_not_declared_carries_span():
    err = errors.RangeNotDeclaredError(100, 8)
    assert err.offset == 100
    assert "[100, 108)" in str(err)


def test_subsystem_grouping():
    assert issubclass(errors.OutOfBoundsError, errors.MemoryError_)
    assert issubclass(errors.AllocationError, errors.MemoryError_)
    assert issubclass(errors.NoTransactionError, errors.TransactionError)
    assert issubclass(errors.RedoLogFullError, errors.ReplicationError)
    assert issubclass(errors.ClockError, errors.SimulationError)


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.RedoLogFullError("full")
