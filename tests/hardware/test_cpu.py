"""CostAccumulator: named CPU-time accounting."""

import pytest

from repro.hardware.cpu import CostAccumulator


def test_charges_accumulate_by_component():
    acc = CostAccumulator()
    acc.charge("copy", 1.0)
    acc.charge("copy", 0.5)
    acc.charge("alloc", 2.0)
    assert acc["copy"] == pytest.approx(1.5)
    assert acc["alloc"] == pytest.approx(2.0)
    assert acc.total_us() == pytest.approx(3.5)


def test_unknown_component_reads_zero():
    assert CostAccumulator()["nothing"] == 0.0


def test_negative_charge_rejected():
    with pytest.raises(ValueError):
        CostAccumulator().charge("x", -0.1)


def test_merge():
    a = CostAccumulator({"x": 1.0})
    b = CostAccumulator({"x": 2.0, "y": 3.0})
    a.merge(b)
    assert a["x"] == 3.0
    assert a["y"] == 3.0


def test_scaled_returns_copy():
    acc = CostAccumulator({"x": 2.0})
    half = acc.scaled(0.5)
    assert half["x"] == 1.0
    assert acc["x"] == 2.0


def test_items_sorted():
    acc = CostAccumulator({"b": 1.0, "a": 2.0})
    assert [name for name, _value in acc.items()] == ["a", "b"]
