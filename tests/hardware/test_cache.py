"""Cache models: the exact simulator and the analytic estimate."""

import random

import pytest

from repro.hardware.cache import AnalyticCacheModel, DirectMappedCache
from repro.hardware.specs import CacheSpec

SMALL = CacheSpec(size_bytes=1024, line_size=64, miss_penalty_us=0.1)


def test_cold_access_misses_then_hits():
    cache = DirectMappedCache(SMALL)
    assert cache.access(0) is False
    assert cache.access(0) is True
    assert cache.access(63) is True  # same line
    assert cache.access(64) is False  # next line


def test_direct_mapped_conflict():
    cache = DirectMappedCache(SMALL)
    cache.access(0)
    # 1024 bytes = 16 lines; address 1024 maps to the same set as 0.
    assert cache.access(1024) is False
    assert cache.access(0) is False  # evicted by the conflict


def test_access_range_counts_misses():
    cache = DirectMappedCache(SMALL)
    assert cache.access_range(0, 128) == 2
    assert cache.access_range(0, 128) == 0
    assert cache.access_range(10, 0) == 0


def test_flush_invalidates():
    cache = DirectMappedCache(SMALL)
    cache.access(0)
    cache.flush()
    assert cache.access(0) is False


def test_miss_rate_statistic():
    cache = DirectMappedCache(SMALL)
    cache.access(0)
    cache.access(0)
    assert cache.miss_rate == pytest.approx(0.5)
    cache.reset_stats()
    assert cache.miss_rate == 0.0


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        DirectMappedCache(CacheSpec(size_bytes=100, line_size=64,
                                    miss_penalty_us=0.1))


def test_analytic_fitting_working_set_hits_floor():
    model = AnalyticCacheModel(SMALL, conflict_floor=0.02)
    assert model.miss_rate(512) == pytest.approx(0.02)


def test_analytic_large_working_set():
    model = AnalyticCacheModel(SMALL, conflict_floor=0.0)
    # Working set 4x the cache: 3/4 of accesses miss.
    assert model.miss_rate(4096) == pytest.approx(0.75)


def test_analytic_monotonic_in_working_set():
    model = AnalyticCacheModel(SMALL)
    rates = [model.miss_rate(size) for size in (512, 1024, 2048, 8192, 1 << 20)]
    assert rates == sorted(rates)
    assert rates[-1] <= 1.0


def test_analytic_zero_working_set():
    assert AnalyticCacheModel(SMALL).miss_rate(0) == 0.0


def test_analytic_miss_time():
    model = AnalyticCacheModel(SMALL, conflict_floor=0.0)
    # 10 random lines over a 4x working set at 0.1 us per miss.
    assert model.miss_time_us(4096, 10) == pytest.approx(0.75 * 10 * 0.1)


def test_sequential_miss_time_is_once_per_line():
    model = AnalyticCacheModel(SMALL)
    assert model.sequential_miss_time_us(640) == pytest.approx(1.0)


def test_analytic_validated_against_exact_simulation():
    """The closed form should track a real direct-mapped cache under
    uniform random accesses to within a few percent."""
    spec = CacheSpec(size_bytes=4096, line_size=64, miss_penalty_us=0.1)
    cache = DirectMappedCache(spec)
    model = AnalyticCacheModel(spec, conflict_floor=0.0)
    working_set = 16384  # 4x cache
    rng = random.Random(1)
    for _ in range(2000):  # warm up
        cache.access(rng.randrange(working_set))
    cache.reset_stats()
    for _ in range(20000):
        cache.access(rng.randrange(working_set))
    assert cache.miss_rate == pytest.approx(model.miss_rate(working_set), abs=0.05)
