"""The 6x32-byte write-buffer coalescing model — the mechanism behind
Figure 1 and the logging-vs-mirroring result."""

import pytest

from repro.hardware.writebuffer import WriteBufferModel, packets_for_stores


def test_contiguous_stores_coalesce_to_full_packet():
    sizes = packets_for_stores([(0, 4), (4, 4), (8, 4), (12, 4),
                                (16, 4), (20, 4), (24, 4), (28, 4)])
    assert sizes == [32]


def test_full_block_drains_immediately():
    emitted = []
    model = WriteBufferModel(on_packet=emitted.append)
    model.write(0, 32)
    assert emitted == [32]  # no barrier needed


def test_scattered_words_stay_small():
    # 4-byte stores to distinct blocks: no coalescing possible.
    sizes = packets_for_stores([(0, 4), (100, 4), (200, 4), (300, 4)])
    assert sizes == [4, 4, 4, 4]


def test_large_write_splits_at_block_boundaries():
    sizes = packets_for_stores([(0, 80)])
    assert sizes == [32, 32, 16]


def test_unaligned_write_splits_correctly():
    sizes = packets_for_stores([(30, 8)])  # spans blocks [0,32) and [32,64)
    assert sorted(sizes) == [2, 6]


def test_rewriting_same_bytes_does_not_grow_packet():
    emitted = []
    model = WriteBufferModel(on_packet=emitted.append)
    model.write(0, 8)
    model.write(0, 8)
    model.write(0, 8)
    model.barrier()
    assert emitted == [8]


def test_fifo_displacement_at_capacity():
    emitted = []
    model = WriteBufferModel(num_buffers=2, on_packet=emitted.append)
    model.write(0, 4)     # block 0
    model.write(100, 4)   # block 3
    model.write(200, 4)   # block 6 -> displaces block 0
    assert emitted == [4]
    model.barrier()
    assert emitted == [4, 4, 4]


def test_barrier_flushes_everything():
    emitted = []
    model = WriteBufferModel(on_packet=emitted.append)
    model.write(0, 10)
    model.write(64, 6)
    model.barrier()
    assert sorted(emitted) == [6, 10]
    model.barrier()  # idempotent
    assert len(emitted) == 2


def test_histogram_and_means():
    model = WriteBufferModel()
    model.write(0, 32)
    model.write(100, 4)
    model.barrier()
    assert model.histogram == {32: 1, 4: 1}
    assert model.packets_emitted == 2
    assert model.bytes_emitted == 36
    assert model.mean_packet_bytes() == pytest.approx(18.0)


def test_mean_of_empty_model_is_zero():
    assert WriteBufferModel().mean_packet_bytes() == 0.0


def test_reset_clears_state():
    model = WriteBufferModel()
    model.write(0, 8)
    model.reset()
    model.barrier()
    assert model.packets_emitted == 0


def test_zero_length_write_is_noop():
    model = WriteBufferModel()
    model.write(0, 0)
    model.barrier()
    assert model.packets_emitted == 0


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        WriteBufferModel(num_buffers=0)
    with pytest.raises(ValueError):
        WriteBufferModel(block_bytes=24)


def test_interleaved_streams_coalesce_independently():
    """A log-like stream and a scattered stream share the buffers: the
    log still forms large packets."""
    emitted = []
    model = WriteBufferModel(on_packet=emitted.append)
    log = 0
    for i in range(8):
        model.write(log, 4)        # sequential log stream
        log += 4
        model.write(1000 + 64 * i, 4)  # scattered stores
    model.barrier()
    # The log block accumulates until FIFO displacement (at 6 distinct
    # blocks) evicts it — still far larger than any scattered packet.
    assert max(emitted) >= 24
    assert emitted.count(4) >= 6


def test_barrier_between_each_store_prevents_coalescing():
    sizes = packets_for_stores(
        [(0, 4), (4, 4), (8, 4)], barrier_between=True
    )
    assert sizes == [4, 4, 4]
