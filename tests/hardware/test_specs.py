"""Hardware parameter records and the SAN packet-cost curve."""

import pytest

from repro.hardware.specs import (
    ALPHASERVER_4100,
    MEMORY_CHANNEL_II,
    CacheSpec,
    SanSpec,
)


def test_alpha_parameters_match_the_paper():
    assert ALPHASERVER_4100.cpu_mhz == 600.0
    assert ALPHASERVER_4100.num_cpus == 4
    assert ALPHASERVER_4100.write_buffers == 6
    assert ALPHASERVER_4100.write_buffer_bytes == 32
    assert ALPHASERVER_4100.board_cache.size_bytes == 8 * 1024 * 1024
    assert ALPHASERVER_4100.board_cache.line_size == 64


def test_cycle_conversion():
    assert ALPHASERVER_4100.cycles_to_us(600.0) == pytest.approx(1.0)
    assert ALPHASERVER_4100.cycle_us == pytest.approx(1 / 600)


def test_memory_channel_latency_matches_paper():
    assert MEMORY_CHANNEL_II.latency_us == 3.3
    assert MEMORY_CHANNEL_II.max_packet_bytes == 32


def test_figure1_endpoints_from_fit():
    """The fitted curve must hit the paper's measured endpoints."""
    low = MEMORY_CHANNEL_II.effective_bandwidth_mb_per_s(4)
    high = MEMORY_CHANNEL_II.effective_bandwidth_mb_per_s(32)
    assert low == pytest.approx(14.0, rel=0.10)
    assert high == pytest.approx(80.0, rel=0.06)


def test_bandwidth_monotonic_in_packet_size():
    values = [
        MEMORY_CHANNEL_II.effective_bandwidth_mb_per_s(size)
        for size in (4, 8, 16, 32)
    ]
    assert values == sorted(values)


def test_packet_time_rejects_bad_sizes():
    with pytest.raises(ValueError):
        MEMORY_CHANNEL_II.packet_time_us(0)
    with pytest.raises(ValueError):
        MEMORY_CHANNEL_II.packet_time_us(64)


def test_packet_time_components():
    san = SanSpec("test", 1.0, 0.5, 100.0, 32)
    assert san.packet_time_us(10) == pytest.approx(0.5 + 0.1)


def test_cache_lines_spanned():
    cache = CacheSpec(size_bytes=1024, line_size=64, miss_penalty_us=0.1)
    assert cache.lines_spanned(0, 1) == 1
    assert cache.lines_spanned(0, 64) == 1
    assert cache.lines_spanned(0, 65) == 2
    assert cache.lines_spanned(63, 2) == 2
    assert cache.lines_spanned(10, 0) == 0
    assert cache.num_lines == 16
