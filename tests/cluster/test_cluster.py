"""ReplicatedCluster: the wired-up two-node cluster with detection
and takeover."""

import pytest

from repro.cluster.cluster import ReplicatedCluster
from repro.errors import ConfigurationError
from repro.vista import EngineConfig
from repro.workloads import DebitCreditWorkload

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=4 * MB, log_bytes=512 * 1024)


def make(mode="active", version="v3"):
    return ReplicatedCluster(
        mode=mode, version=version, config=CONFIG,
        heartbeat_interval_us=100.0, heartbeat_timeout_us=500.0,
    )


def test_unknown_mode_rejected():
    with pytest.raises(ConfigurationError):
        ReplicatedCluster(mode="weird")


@pytest.mark.parametrize("mode,version", [
    ("active", "v3"), ("passive", "v0"), ("passive", "v1"),
    ("passive", "v2"), ("passive", "v3"),
])
def test_crash_detection_and_takeover(mode, version):
    cluster = make(mode, version)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=17)
    workload.setup(cluster.serving)
    if mode == "active":
        cluster.system.sync_initial()
    else:
        cluster.system.sync_initial()
    cluster.run_transactions(workload, 30)
    cluster.schedule_primary_crash(at_us=2_000.0)
    cluster.run_until(20_000.0)

    assert cluster.takeover is not None
    report = cluster.takeover
    assert report.crash_at_us == 2_000.0
    assert 0 < report.detection_us <= 600.0 + 1e-9
    assert report.downtime_us >= report.detection_us
    assert cluster.membership.primary == "backup"

    # The promoted backup serves and holds the committed state.
    workload.verify(cluster.serving)
    cluster.run_transactions(workload, 10)
    workload.verify(cluster.serving)


def test_mirror_versions_restore_more_bytes():
    results = {}
    for version in ("v1", "v3"):
        cluster = make("passive", version)
        workload = DebitCreditWorkload(CONFIG.db_bytes, seed=17)
        workload.setup(cluster.serving)
        cluster.system.sync_initial()
        cluster.run_transactions(workload, 10)
        cluster.schedule_primary_crash(at_us=1_000.0)
        cluster.run_until(10_000.0)
        results[version] = cluster.takeover
    assert results["v1"].bytes_restored == CONFIG.db_bytes
    assert results["v3"].bytes_restored < 4096
    assert results["v1"].downtime_us > results["v3"].downtime_us


def test_no_takeover_without_crash():
    cluster = make()
    cluster.run_until(10_000.0)
    assert cluster.takeover is None
    assert cluster.membership.primary == "primary"


def test_repr():
    cluster = make()
    assert "normal" in repr(cluster)
