"""Network-partition plans on the shared fault injector."""

import pytest

from repro.cluster.faults import FaultInjector, PartitionPlan
from repro.obs import Observer


def test_heal_cannot_precede_the_cut():
    with pytest.raises(ValueError):
        PartitionPlan(at_time_us=500.0, heal_at_us=100.0)
    # Healing at the same instant is allowed (a zero-length blip).
    PartitionPlan(at_time_us=500.0, heal_at_us=500.0)


def test_partition_then_heal_fire_in_order_with_trace_events():
    observer = Observer()
    injector = FaultInjector(observer=observer)
    log = []
    plan = PartitionPlan(
        at_time_us=100.0, heal_at_us=300.0, description="[0] | [1, 2]"
    )
    injector.schedule_partition(
        plan, lambda: log.append("cut"), lambda: log.append("heal")
    )
    assert injector.pending == 2

    assert injector.on_time(50.0) is False
    assert log == []
    assert injector.on_time(100.0) is True
    assert log == ["cut"]
    assert injector.pending == 1
    # The cut never re-fires while waiting for the heal.
    assert injector.on_time(200.0) is False
    assert injector.on_time(300.0) is True
    assert log == ["cut", "heal"]
    assert injector.pending == 0

    events = [e for e in observer.recorder.select()
              if e.name in ("fault.partition", "fault.heal")]
    assert [e.name for e in events] == ["fault.partition", "fault.heal"]
    assert [e.ts_us for e in events] == [100.0, 300.0]
    for event in events:
        assert event.attrs["symmetric"] is True
        assert event.attrs["sides"] == "[0] | [1, 2]"
        assert "PartitionPlan" in event.attrs["plan"]

    assert len(injector.fired) == 2
    assert injector.fired[0].plan is plan
    assert injector.fired[1].plan is plan


def test_cut_and_heal_fire_together_when_time_jumps_past_both():
    injector = FaultInjector()
    log = []
    injector.schedule_partition(
        PartitionPlan(at_time_us=100.0, heal_at_us=200.0),
        lambda: log.append("cut"), lambda: log.append("heal"),
    )
    assert injector.on_time(1_000.0) is True
    assert log == ["cut", "heal"]
    assert injector.pending == 0


def test_partition_without_heal_is_permanent():
    observer = Observer()
    injector = FaultInjector(observer=observer)
    log = []
    injector.schedule_partition(
        PartitionPlan(at_time_us=100.0, symmetric=False),
        lambda: log.append("cut"),
    )
    injector.on_time(100.0)
    injector.on_time(9_999.0)
    assert log == ["cut"]
    assert injector.pending == 0
    events = observer.recorder.select(name="fault.partition")
    assert len(events) == 1
    assert events[0].attrs["symmetric"] is False
    assert not observer.recorder.select(name="fault.heal")


def test_partitions_coexist_with_crash_plans():
    from repro.cluster.faults import CrashPlan

    injector = FaultInjector()
    log = []
    injector.schedule(CrashPlan(at_time_us=150.0), lambda: log.append("crash"))
    injector.schedule_partition(
        PartitionPlan(at_time_us=100.0, heal_at_us=200.0),
        lambda: log.append("cut"), lambda: log.append("heal"),
    )
    assert injector.pending == 3
    injector.on_time(100.0)
    injector.on_time(150.0)
    injector.on_time(200.0)
    assert log == ["cut", "crash", "heal"]
    assert injector.pending == 0
