"""Heartbeat failure detection and membership views on the DES."""

import pytest

from repro.cluster.membership import HeartbeatMonitor, Membership
from repro.cluster.node import Node
from repro.sim.engine import Simulator


def test_healthy_primary_never_declared_dead():
    sim = Simulator()
    node = Node("primary")
    failures = []
    monitor = HeartbeatMonitor(
        sim, node, lambda: failures.append(sim.now),
        interval_us=100.0, timeout_us=500.0,
    )
    monitor.start()
    sim.run(until=10_000.0)
    assert failures == []
    monitor.stop()


def test_crash_detected_within_timeout_plus_poll():
    sim = Simulator()
    node = Node("primary")
    failures = []
    monitor = HeartbeatMonitor(
        sim, node, lambda: failures.append(sim.now),
        interval_us=100.0, timeout_us=500.0,
    )
    monitor.start()
    sim.schedule_at(2_000.0, node.crash)
    sim.run(until=10_000.0)
    assert len(failures) == 1
    detection_latency = failures[0] - 2_000.0
    assert 0 < detection_latency <= 500.0 + 100.0 + 1e-9


def test_detection_fires_once():
    sim = Simulator()
    node = Node("primary")
    failures = []
    monitor = HeartbeatMonitor(
        sim, node, lambda: failures.append(sim.now),
        interval_us=50.0, timeout_us=200.0,
    )
    monitor.start()
    sim.schedule_at(100.0, node.crash)
    sim.run(until=5_000.0)
    assert len(failures) == 1
    assert monitor.detected_at_us == failures[0]


def test_stop_cancels_monitoring():
    sim = Simulator()
    node = Node("primary")
    failures = []
    monitor = HeartbeatMonitor(
        sim, node, lambda: failures.append(1),
        interval_us=50.0, timeout_us=200.0,
    )
    monitor.start()
    sim.schedule_at(100.0, monitor.stop)
    sim.schedule_at(150.0, node.crash)
    sim.run(until=5_000.0)
    assert failures == []


def test_timeout_must_exceed_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        HeartbeatMonitor(sim, Node("n"), lambda: None,
                         interval_us=100.0, timeout_us=100.0)


class TestMembership:
    def test_fail_member_promotes_survivor(self):
        view = Membership(members=["primary", "backup"], primary="primary")
        view.fail("primary")
        assert view.primary == "backup"
        assert view.members == ["backup"]
        assert view.view_id == 1

    def test_fail_non_primary_keeps_leader(self):
        view = Membership(members=["primary", "backup"], primary="primary")
        view.fail("backup")
        assert view.primary == "primary"

    def test_fail_unknown_is_noop(self):
        view = Membership(members=["a"], primary="a")
        view.fail("ghost")
        assert view.view_id == 0

    def test_last_member_failure_rejected(self):
        view = Membership(members=["a"], primary="a")
        with pytest.raises(ValueError):
            view.fail("a")

    def test_history_records_views(self):
        view = Membership(members=["a", "b", "c"], primary="a")
        view.fail("a")
        view.fail("b")
        assert view.history == [
            (1, ("b", "c"), "b"),
            (2, ("c",), "c"),
        ]
