"""Heartbeat failure detection and membership views on the DES."""

import pytest

from repro.cluster.membership import HeartbeatMonitor, Membership
from repro.cluster.node import Node
from repro.sim.engine import Simulator


def test_healthy_primary_never_declared_dead():
    sim = Simulator()
    node = Node("primary")
    failures = []
    monitor = HeartbeatMonitor(
        sim, node, lambda: failures.append(sim.now),
        interval_us=100.0, timeout_us=500.0,
    )
    monitor.start()
    sim.run(until=10_000.0)
    assert failures == []
    monitor.stop()


def test_crash_detected_within_timeout_plus_poll():
    sim = Simulator()
    node = Node("primary")
    failures = []
    monitor = HeartbeatMonitor(
        sim, node, lambda: failures.append(sim.now),
        interval_us=100.0, timeout_us=500.0,
    )
    monitor.start()
    sim.schedule_at(2_000.0, node.crash)
    sim.run(until=10_000.0)
    assert len(failures) == 1
    detection_latency = failures[0] - 2_000.0
    assert 0 < detection_latency <= 500.0 + 100.0 + 1e-9


def test_detection_fires_once():
    sim = Simulator()
    node = Node("primary")
    failures = []
    monitor = HeartbeatMonitor(
        sim, node, lambda: failures.append(sim.now),
        interval_us=50.0, timeout_us=200.0,
    )
    monitor.start()
    sim.schedule_at(100.0, node.crash)
    sim.run(until=5_000.0)
    assert len(failures) == 1
    assert monitor.detected_at_us == failures[0]


def test_stop_cancels_monitoring():
    sim = Simulator()
    node = Node("primary")
    failures = []
    monitor = HeartbeatMonitor(
        sim, node, lambda: failures.append(1),
        interval_us=50.0, timeout_us=200.0,
    )
    monitor.start()
    sim.schedule_at(100.0, monitor.stop)
    sim.schedule_at(150.0, node.crash)
    sim.run(until=5_000.0)
    assert failures == []


def test_timeout_must_exceed_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        HeartbeatMonitor(sim, Node("n"), lambda: None,
                         interval_us=100.0, timeout_us=100.0)


class TestMembership:
    def test_fail_member_promotes_survivor(self):
        view = Membership(members=["primary", "backup"], primary="primary")
        view.fail("primary")
        assert view.primary == "backup"
        assert view.members == ["backup"]
        assert view.view_id == 1

    def test_fail_non_primary_keeps_leader(self):
        view = Membership(members=["primary", "backup"], primary="primary")
        view.fail("backup")
        assert view.primary == "primary"

    def test_fail_unknown_is_noop(self):
        view = Membership(members=["a"], primary="a")
        view.fail("ghost")
        assert view.view_id == 0
        assert len(view.history) == 1  # just the initial view

    def test_last_member_failure_rejected(self):
        view = Membership(members=["a"], primary="a")
        with pytest.raises(ValueError):
            view.fail("a")

    def test_primary_must_be_a_member(self):
        with pytest.raises(ValueError):
            Membership(members=["a", "b"], primary="ghost")

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            Membership(members=["a", "a"], primary="a")

    def test_history_records_every_view_including_initial(self):
        view = Membership(members=["a", "b", "c"], primary="a")
        view.fail("a")
        view.fail("b")
        assert view.history == [
            (0, ("a", "b", "c"), "a"),
            (1, ("b", "c"), "b"),
            (2, ("c",), "c"),
        ]


class TestMultiMemberViews:
    def test_promotion_is_seniority_ordered_not_list_ordered(self):
        view = Membership(members=["a", "b", "c", "d"], primary="a")
        # b fails first, then the primary: promotion must pick c (the
        # most senior survivor), never depend on removal order.
        view.fail("b")
        view.fail("a")
        assert view.primary == "c"
        assert view.members == ["c", "d"]

    def test_promotion_chain_is_deterministic(self):
        names = ["n0", "n1", "n2", "n3", "n4"]
        view = Membership(members=list(names), primary="n0")
        for expected in ("n1", "n2", "n3", "n4"):
            view.fail(view.primary)
            assert view.primary == expected

    def test_join_records_a_view_change(self):
        view = Membership(members=["a", "b"], primary="a")
        view.join("c")
        assert view.members == ["a", "b", "c"]
        assert view.view_id == 1
        assert view.history[-1] == (1, ("a", "b", "c"), "a")

    def test_rejoin_gets_fresh_lowest_seniority(self):
        view = Membership(members=["a", "b", "c"], primary="a")
        view.fail("b")
        view.join("b")  # b flaps: back in, but most junior now
        view.fail("a")
        # c (rank 2) outranks the rejoined b (rank 3).
        assert view.primary == "c"

    def test_join_existing_member_is_noop(self):
        view = Membership(members=["a", "b"], primary="a")
        view.join("a")
        assert view.view_id == 0

    def test_rank_reflects_join_order(self):
        view = Membership(members=["a", "b"], primary="a")
        view.join("c")
        assert view.rank("a") == 0
        assert view.rank("c") == 2
        with pytest.raises(ValueError):
            view.rank("ghost")

    def test_eight_member_view_history_replays_failures(self):
        members = [f"shard{i}/{role}" for i in range(4)
                   for role in ("primary", "backup")]
        view = Membership(members=list(members), primary=members[0])
        view.fail("shard2/primary")
        view.fail("shard0/primary")
        assert len(view.history) == 3
        final_id, final_members, final_primary = view.history[-1]
        assert final_id == view.view_id == 2
        assert len(final_members) == 6
        assert final_primary == "shard0/backup"
