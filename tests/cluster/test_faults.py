"""Declarative fault injection."""

import pytest

from repro.cluster.faults import CrashPlan, FaultInjector


def test_plan_requires_exactly_one_trigger():
    with pytest.raises(ValueError):
        CrashPlan()
    with pytest.raises(ValueError):
        CrashPlan(after_transactions=1, at_time_us=1.0)
    CrashPlan(after_transactions=1)
    CrashPlan(at_time_us=5.0)


def test_transaction_count_trigger():
    injector = FaultInjector()
    crashed = []
    injector.schedule(CrashPlan(after_transactions=3), lambda: crashed.append(1))
    assert not injector.on_transaction_committed(2)
    assert injector.on_transaction_committed(3)
    assert crashed == [1]
    assert injector.pending == 0


def test_plan_fires_only_once():
    injector = FaultInjector()
    crashed = []
    injector.schedule(CrashPlan(after_transactions=1), lambda: crashed.append(1))
    injector.on_transaction_committed(1)
    injector.on_transaction_committed(2)
    assert crashed == [1]


def test_time_trigger():
    injector = FaultInjector()
    crashed = []
    injector.schedule(CrashPlan(at_time_us=10.0), lambda: crashed.append(1))
    assert not injector.on_time(9.9)
    assert injector.on_time(10.0)
    assert crashed == [1]


def test_multiple_plans():
    injector = FaultInjector()
    order = []
    injector.schedule(CrashPlan(after_transactions=2), lambda: order.append("a"))
    injector.schedule(CrashPlan(after_transactions=5), lambda: order.append("b"))
    injector.on_transaction_committed(2)
    assert order == ["a"]
    injector.on_transaction_committed(5)
    assert order == ["a", "b"]


def test_next_transaction_boundary():
    injector = FaultInjector()
    injector.schedule(CrashPlan(after_transactions=9), lambda: None)
    injector.schedule(CrashPlan(after_transactions=4), lambda: None)
    assert injector.next_transaction_boundary().after_transactions == 4
    assert FaultInjector().next_transaction_boundary() is None


def test_fired_history():
    injector = FaultInjector()
    plan = CrashPlan(after_transactions=1)
    injector.schedule(plan, lambda: None)
    injector.on_transaction_committed(1)
    assert injector.fired == [plan]
