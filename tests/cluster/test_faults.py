"""Declarative fault injection."""

import pytest

from repro.cluster.faults import CrashPlan, FaultInjector


def test_plan_requires_exactly_one_trigger():
    with pytest.raises(ValueError):
        CrashPlan()
    with pytest.raises(ValueError):
        CrashPlan(after_transactions=1, at_time_us=1.0)
    CrashPlan(after_transactions=1)
    CrashPlan(at_time_us=5.0)


def test_transaction_count_trigger():
    injector = FaultInjector()
    crashed = []
    injector.schedule(CrashPlan(after_transactions=3), lambda: crashed.append(1))
    assert not injector.on_transaction_committed(2)
    assert injector.on_transaction_committed(3)
    assert crashed == [1]
    assert injector.pending == 0


def test_plan_fires_only_once():
    injector = FaultInjector()
    crashed = []
    injector.schedule(CrashPlan(after_transactions=1), lambda: crashed.append(1))
    injector.on_transaction_committed(1)
    injector.on_transaction_committed(2)
    assert crashed == [1]


def test_time_trigger():
    injector = FaultInjector()
    crashed = []
    injector.schedule(CrashPlan(at_time_us=10.0), lambda: crashed.append(1))
    assert not injector.on_time(9.9)
    assert injector.on_time(10.0)
    assert crashed == [1]


def test_multiple_plans():
    injector = FaultInjector()
    order = []
    injector.schedule(CrashPlan(after_transactions=2), lambda: order.append("a"))
    injector.schedule(CrashPlan(after_transactions=5), lambda: order.append("b"))
    injector.on_transaction_committed(2)
    assert order == ["a"]
    injector.on_transaction_committed(5)
    assert order == ["a", "b"]


def test_next_transaction_boundary():
    injector = FaultInjector()
    injector.schedule(CrashPlan(after_transactions=9), lambda: None)
    injector.schedule(CrashPlan(after_transactions=4), lambda: None)
    assert injector.next_transaction_boundary().after_transactions == 4
    assert FaultInjector().next_transaction_boundary() is None


def test_fired_history():
    from repro.obs import NullObserver

    # An explicit NullObserver: no clock, whatever REPRO_OBS says.
    injector = FaultInjector(observer=NullObserver())
    plan = CrashPlan(after_transactions=1)
    injector.schedule(plan, lambda: None)
    injector.on_transaction_committed(1)
    assert [f.plan for f in injector.fired] == [plan]
    record = injector.fired[0]
    assert record.plan_repr == repr(plan)
    assert record.at_transactions == 1
    assert record.at_us is None  # no clock attached


def test_time_trigger_records_sim_time():
    injector = FaultInjector()
    plan = CrashPlan(at_time_us=10.0)
    injector.schedule(plan, lambda: None)
    assert not injector.on_time(5.0)
    assert injector.pending == 1
    assert injector.on_time(12.5)
    record = injector.fired[0]
    assert record.plan is plan
    assert record.at_us == 12.5
    assert record.at_transactions is None
    # A fired time plan never re-fires on later ticks.
    assert not injector.on_time(100.0)
    assert len(injector.fired) == 1


def test_transaction_trigger_stamps_time_from_clock():
    injector = FaultInjector(clock=lambda: 42.0)
    injector.schedule(CrashPlan(after_transactions=1), lambda: None)
    injector.on_transaction_committed(1)
    assert injector.fired[0].at_us == 42.0


def test_fired_plan_emits_crash_event():
    from repro.obs import Observer

    observer = Observer()
    observer.bind_clock(lambda: 7.0)
    injector = FaultInjector(observer=observer)
    injector.schedule(CrashPlan(at_time_us=3.0), lambda: None)
    injector.on_time(3.0)
    events = observer.recorder.select(name="fault.crash")
    assert len(events) == 1
    assert events[0].ts_us == 3.0
    assert events[0].component == "faults"
    assert "at_time_us=3.0" in events[0].attrs["plan"]
    assert observer.registry.value("faults.fired") == 1
