"""Node: crash takes Rio and the Memory Channel down together."""

import pytest

from repro.cluster.node import Node
from repro.errors import CrashedError


def test_node_bundles_rio_and_interface():
    node = Node("n1")
    assert node.rio.node_name == "n1"
    assert node.interface.node_name == "n1"
    assert node.machine.write_buffers == 6


def test_crash_takes_everything_down():
    node = Node("n1")
    region = node.rio.create_region("db", 64)
    region.write(0, b"data")
    node.crash()
    assert node.crashed
    with pytest.raises(CrashedError):
        region.write(0, b"more")
    with pytest.raises(CrashedError):
        node.interface.map_remote(region)


def test_reboot_restores_rio_contents():
    node = Node("n1")
    region = node.rio.create_region("db", 64)
    region.write(0, b"safe")
    node.crash()
    node.reboot()
    assert node.rio.get_region("db").read(0, 4) == b"safe"
    assert not node.crashed


def test_crash_idempotent_and_counted():
    node = Node("n1")
    node.crash()
    node.crash()
    assert node.crash_count == 1
    node.reboot()
    node.crash()
    assert node.crash_count == 2


def test_heartbeat_ignored_while_crashed():
    node = Node("n1")
    node.heartbeat(1.0)
    node.crash()
    node.heartbeat(2.0)
    assert node.last_heartbeat_us == 1.0


def test_repr():
    node = Node("n1")
    assert "up" in repr(node)
    node.crash()
    assert "crashed" in repr(node)
