"""The Figure 1 microbenchmark."""

import pytest

from repro.perf.calibration import PAPER
from repro.san.ping_pong import (
    measure_effective_bandwidth,
    measure_latency_us,
    run_figure1_sweep,
)

REGION = 1 << 16  # small region keeps the test fast


def test_stride_one_produces_full_packets():
    point = measure_effective_bandwidth(32, REGION)
    assert point.packets == REGION // 32


def test_stride_eight_produces_word_packets():
    point = measure_effective_bandwidth(4, REGION)
    assert point.packets == REGION // 32  # one 4-byte packet per block


def test_bandwidth_matches_paper_endpoints():
    low = measure_effective_bandwidth(4, REGION)
    high = measure_effective_bandwidth(32, REGION)
    assert low.effective_mb_per_s == pytest.approx(14.0, rel=0.12)
    assert high.effective_mb_per_s == pytest.approx(80.0, rel=0.08)


def test_sweep_is_monotonic():
    points = run_figure1_sweep(region_bytes=REGION)
    bandwidths = [point.effective_mb_per_s for point in points]
    assert bandwidths == sorted(bandwidths)
    assert [point.packet_bytes for point in points] == [4, 8, 16, 32]


def test_sweep_tracks_paper_curve():
    for point in run_figure1_sweep(region_bytes=REGION):
        assert point.effective_mb_per_s == pytest.approx(
            PAPER["figure1"][point.packet_bytes], rel=0.15
        )


def test_invalid_packet_sizes_rejected():
    with pytest.raises(ValueError):
        measure_effective_bandwidth(2, REGION)
    with pytest.raises(ValueError):
        measure_effective_bandwidth(64, REGION)
    with pytest.raises(ValueError):
        measure_effective_bandwidth(6, REGION)


def test_latency_matches_paper():
    assert measure_latency_us() == 3.3
