"""Memory Channel semantics: write-through, write doubling, loopback,
packet accounting, crash behaviour."""

import pytest

from repro.errors import CrashedError, NotMappedError
from repro.memory.region import MemoryRegion, WriteCategory
from repro.san.memory_channel import (
    DoubledWrite,
    LoopbackBuffer,
    MemoryChannelInterface,
)


def make_pair(size=1024):
    remote = MemoryRegion("remote", size)
    interface = MemoryChannelInterface("sender")
    mapping = interface.map_remote(remote)
    return interface, mapping, remote


def test_write_through_deposits_into_remote_memory():
    _interface, mapping, remote = make_pair()
    mapping.write(10, b"hello")
    assert remote.read(10, 5) == b"hello"


def test_remote_cpu_not_involved():
    """Delivery must not require any backup-side action: the data is
    simply present after the sender's write (DMA semantics)."""
    _interface, mapping, remote = make_pair()
    mapping.write(0, b"x")
    # No polling, no apply call — the byte is just there.
    assert remote.read(0, 1) == b"x"


def test_out_of_window_write_rejected():
    _interface, mapping, _remote = make_pair(64)
    with pytest.raises(NotMappedError):
        mapping.write(60, b"toolong")
    with pytest.raises(NotMappedError):
        mapping.write(-1, b"x")


def test_traffic_accounting_by_category():
    interface, mapping, _remote = make_pair()
    mapping.write(0, b"abcd", WriteCategory.META)
    mapping.write(4, b"ef", WriteCategory.UNDO)
    mapping.write(6, b"gh", WriteCategory.UNDO)
    assert interface.bytes_by_category[WriteCategory.META] == 4
    assert interface.bytes_by_category[WriteCategory.UNDO] == 4
    assert interface.bytes_sent == 8
    assert mapping.bytes_sent == 8


def test_packet_formation_coalesces_contiguous_writes():
    interface, mapping, _remote = make_pair()
    for offset in range(0, 32, 4):
        mapping.write(offset, b"\x01" * 4)
    interface.barrier()
    assert interface.trace.histogram == {32: 1}


def test_scattered_writes_make_small_packets():
    interface, mapping, _remote = make_pair()
    for offset in (0, 100, 200, 300):
        mapping.write(offset, b"\x01" * 4)
    interface.barrier()
    assert interface.trace.histogram == {4: 4}


def test_uncoalesced_write_emits_word_packets():
    interface, mapping, remote = make_pair()
    mapping.write_uncoalesced(0, b"\x07" * 20)
    assert remote.read(0, 20) == b"\x07" * 20
    assert interface.trace.histogram == {4: 5}


def test_distinct_mappings_never_share_packets():
    remote_a = MemoryRegion("a", 64)
    remote_b = MemoryRegion("b", 64)
    interface = MemoryChannelInterface("sender")
    map_a = interface.map_remote(remote_a)
    map_b = interface.map_remote(remote_b)
    map_a.write(0, b"\x01" * 16)
    map_b.write(0, b"\x01" * 16)
    interface.barrier()
    assert interface.trace.histogram == {16: 2}


def test_io_store_count():
    interface, mapping, _remote = make_pair()
    mapping.write(0, b"1234")
    mapping.write(8, b"1234")
    assert interface.io_stores == 2


def test_crashed_interface_rejects_writes():
    interface, mapping, _remote = make_pair()
    interface.crash()
    with pytest.raises(CrashedError):
        mapping.write(0, b"x")
    interface.reboot()
    mapping.write(0, b"x")


def test_unmapped_mapping_rejected():
    interface_a, mapping, _remote = make_pair()
    interface_b = MemoryChannelInterface("other")
    with pytest.raises(NotMappedError):
        interface_b._transmit(mapping, 0, b"x", WriteCategory.MODIFIED)


def test_reset_stats():
    interface, mapping, _remote = make_pair()
    mapping.write(0, b"\x01" * 8)
    interface.barrier()
    interface.reset_stats()
    assert interface.bytes_sent == 0
    assert interface.trace.packets == 0
    assert mapping.bytes_sent == 0


def test_link_time_accumulates():
    interface, mapping, _remote = make_pair()
    assert interface.link_time_us() == 0.0
    mapping.write(0, b"\x01" * 32)
    interface.barrier()
    assert interface.link_time_us() > 0.0


def test_doubled_write_keeps_copies_identical():
    local = MemoryRegion("local", 256)
    remote = MemoryRegion("remote", 256)
    interface = MemoryChannelInterface("sender")
    doubled = DoubledWrite(local, interface.map_remote(remote))
    doubled.write(5, b"twice")
    assert local.read(5, 5) == b"twice"
    assert remote.read(5, 5) == b"twice"
    assert doubled.read(5, 5) == b"twice"  # reads come from the local copy


def test_loopback_delay_breaks_read_your_writes():
    """Loopback mode applies I/O writes to the local copy only after a
    delay — the hazard that makes write doubling the practical choice
    (Section 2.3)."""
    local = MemoryRegion("local", 64)
    loopback = LoopbackBuffer(local)
    loopback.enqueue(0, b"new!")
    # The processor does NOT see its own last write yet.
    assert local.read(0, 4) == b"\x00" * 4
    assert loopback.pending_writes == 1
    loopback.deliver()
    assert local.read(0, 4) == b"new!"


def test_loopback_partial_delivery():
    local = MemoryRegion("local", 64)
    loopback = LoopbackBuffer(local)
    loopback.enqueue(0, b"a")
    loopback.enqueue(1, b"b")
    assert loopback.deliver(1) == 1
    assert local.read(0, 2) == b"a\x00"
    assert loopback.deliver() == 1
    assert local.read(0, 2) == b"ab"
