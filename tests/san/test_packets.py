"""PacketTrace: histograms and link-time math."""

import pytest

from repro.hardware.specs import MEMORY_CHANNEL_II, SanSpec
from repro.san.packets import PacketTrace


def test_record_and_counts():
    trace = PacketTrace()
    trace.record(4)
    trace.record(4)
    trace.record(32)
    assert trace.packets == 3
    assert trace.bytes == 40
    assert trace.histogram == {4: 2, 32: 1}


def test_invalid_packet_size():
    with pytest.raises(ValueError):
        PacketTrace().record(0)


def test_mean_packet_bytes():
    trace = PacketTrace({8: 1, 24: 1})
    assert trace.mean_packet_bytes() == 16.0
    assert PacketTrace().mean_packet_bytes() == 0.0


def test_link_time_sums_per_packet_costs():
    san = SanSpec("t", 1.0, 0.5, 100.0, 32)
    trace = PacketTrace({10: 2})
    assert trace.link_time_us(san) == pytest.approx(2 * (0.5 + 0.1))


def test_effective_bandwidth_improves_with_packet_size():
    small = PacketTrace({4: 256})
    large = PacketTrace({32: 32})  # same total bytes
    assert small.bytes == large.bytes
    assert (
        large.effective_bandwidth_mb_per_s(MEMORY_CHANNEL_II)
        > 3 * small.effective_bandwidth_mb_per_s(MEMORY_CHANNEL_II)
    )


def test_effective_bandwidth_empty_trace():
    assert PacketTrace().effective_bandwidth_mb_per_s(MEMORY_CHANNEL_II) == 0.0


def test_merge():
    a = PacketTrace({4: 1})
    b = PacketTrace({4: 2, 8: 1})
    a.merge(b)
    assert a.histogram == {4: 3, 8: 1}


def test_scaled():
    trace = PacketTrace({4: 10})
    per_txn = trace.scaled(0.1)
    assert per_txn.histogram == {4: 1.0}
    assert trace.histogram == {4: 10}


def test_clear():
    trace = PacketTrace({4: 1})
    trace.clear()
    assert trace.packets == 0
