"""SharedLink: multi-sender contention accounting."""

import pytest

from repro.hardware.specs import MEMORY_CHANNEL_II
from repro.san.link import SharedLink
from repro.san.packets import PacketTrace


def test_total_link_time_sums_senders():
    link = SharedLink(MEMORY_CHANNEL_II)
    link.attach(PacketTrace({32: 10}))
    link.attach(PacketTrace({32: 10}))
    single = PacketTrace({32: 10}).link_time_us(MEMORY_CHANNEL_II)
    assert link.total_link_time_us() == pytest.approx(2 * single)


def test_utilization():
    link = SharedLink(MEMORY_CHANNEL_II)
    link.attach(PacketTrace({32: 100}))
    busy = link.total_link_time_us()
    assert link.utilization(busy * 2) == pytest.approx(0.5)
    assert link.utilization(busy / 2) == pytest.approx(2.0)  # infeasible load


def test_utilization_rejects_bad_elapsed():
    link = SharedLink(MEMORY_CHANNEL_II)
    with pytest.raises(ValueError):
        link.utilization(0.0)


def test_max_rate():
    link = SharedLink(MEMORY_CHANNEL_II)
    assert link.max_rate_per_second(2.0) == pytest.approx(500_000)
    assert link.max_rate_per_second(0.0) == float("inf")
