"""Property-based equivalence for the two memory-region backings.

:func:`repro.memory.region.memory_region` swaps a numpy-``uint8``
region in under the fast path; the byte-identity discipline demands
the swap be invisible everywhere the reproduction can look. Random
operation sequences — writes, pokes, fills, overlapping in-region
copies, cross-region copies (mixed backings included), protection
windows, out-of-bounds attempts — must leave :class:`NumpyMemoryRegion`
and the reference :class:`MemoryRegion` with identical bytes, identical
observer event streams, identical statistics, and identical error
behaviour, at every offset alignment (the region size is prime, so
partial words and boundary tails occur constantly). On top of the
region-level properties, a full Vista engine must produce identical
:class:`~repro.vista.stats.AccessProfile` snapshots and counters with
either backing underneath it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import fastpath
from repro.fastpath.kernels import diff_runs_dispatch, diff_runs_fast
from repro.memory.region import (
    MemoryRegion,
    NumpyMemoryRegion,
    WriteCategory,
    memory_region,
)
from repro.replication.passive import PassiveReplicatedSystem
from repro.vista import EngineConfig
from repro.workloads import DebitCreditWorkload, run_workload

#: Prime, so leaf/word/page boundaries never line up with the size.
SIZE = 193

_categories = st.sampled_from(list(WriteCategory))

#: One region operation. Offsets/lengths deliberately range past the
#: region end so both backings' error paths are exercised too.
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(0, SIZE + 8),
            st.binary(min_size=0, max_size=41),
            _categories,
        ),
        st.tuples(
            st.just("poke"), st.integers(0, SIZE + 8),
            st.binary(min_size=0, max_size=41),
        ),
        st.tuples(st.just("fill"), st.integers(0, 255)),
        st.tuples(
            st.just("copy"),
            st.integers(0, SIZE + 8),   # src (overlap with dst common)
            st.integers(0, SIZE + 8),   # dst
            st.integers(0, 48),
            _categories,
        ),
        st.tuples(
            st.just("xcopy"),           # from the paired source region
            st.integers(0, SIZE + 8),
            st.integers(0, SIZE + 8),
            st.integers(0, 48),
            _categories,
        ),
        st.tuples(st.just("protect")),
        st.tuples(st.just("unprotect")),
        st.tuples(
            st.just("window"), st.integers(0, SIZE + 8), st.integers(0, 32)
        ),
        st.tuples(st.just("close")),
    ),
    min_size=0,
    max_size=40,
)

#: Deterministic source-region image for the cross-copy op.
_SOURCE_IMAGE = bytes((i * 37 + 11) % 256 for i in range(SIZE))


def _instrumented(region):
    """Attach both observer flavours; returns the recorded streams."""
    events, fast_events = [], []
    region.add_observer(
        lambda e: events.append((e.offset, e.length, e.category))
    )
    region.add_fast_observer(
        lambda offset, length, category:
        fast_events.append((offset, length, category))
    )
    return events, fast_events


def _drive(region, source, ops):
    """Apply ``ops``; returns per-op outcomes (None or the raised
    exception type — error behaviour must match across backings)."""
    outcomes = []
    for op in ops:
        try:
            if op[0] == "write":
                region.write(op[1], op[2], op[3])
            elif op[0] == "poke":
                region.poke(op[1], op[2])
            elif op[0] == "fill":
                region.fill(op[1])
            elif op[0] == "copy":
                region.copy_within(op[1], op[2], op[3], op[4])
            elif op[0] == "xcopy":
                region.copy_from(source, op[1], op[2], op[3], op[4])
            elif op[0] == "protect":
                region.protect()
            elif op[0] == "unprotect":
                region.unprotect()
            elif op[0] == "window":
                region.open_window(op[1], op[2])
            elif op[0] == "close":
                region.close_window()
            outcomes.append(None)
        except Exception as error:  # noqa: BLE001 - compared by type
            outcomes.append(type(error))
    return outcomes


def _run_backend(region_cls, source_cls, ops):
    region = region_cls("target", SIZE)
    source = source_cls("source", SIZE)
    source.poke(0, _SOURCE_IMAGE)
    events, fast_events = _instrumented(region)
    outcomes = _drive(region, source, ops)
    return {
        "bytes": region.snapshot(),
        "events": events,
        "fast_events": fast_events,
        "writes_observed": region.writes_observed,
        "bytes_written": region.bytes_written,
        "outcomes": outcomes,
    }


@settings(max_examples=200, deadline=None)
@given(ops=_ops)
def test_numpy_region_matches_reference(ops):
    """Op for op: same bytes, same observer streams, same statistics,
    same exception types — numpy backing vs bytearray reference."""
    reference = _run_backend(MemoryRegion, MemoryRegion, ops)
    vectorized = _run_backend(NumpyMemoryRegion, NumpyMemoryRegion, ops)
    assert vectorized == reference


@settings(max_examples=100, deadline=None)
@given(ops=_ops)
def test_mixed_backings_match_reference(ops):
    """``copy_from`` across backings (numpy target, bytearray source)
    goes through the base-class slice assignment; it must be just as
    invisible."""
    reference = _run_backend(MemoryRegion, MemoryRegion, ops)
    mixed = _run_backend(NumpyMemoryRegion, MemoryRegion, ops)
    assert mixed == reference


@settings(max_examples=60, deadline=None)
@given(ops_a=_ops, ops_b=_ops)
def test_diff_over_region_views_is_backend_invariant(ops_a, ops_b):
    """Both diff implementations, fed zero-copy views of either
    backing, report the same difference runs."""
    runs = []
    for cls in (MemoryRegion, NumpyMemoryRegion):
        a = cls("a", SIZE)
        b = cls("b", SIZE)
        source = cls("source", SIZE)
        source.poke(0, _SOURCE_IMAGE)
        _drive(a, source, ops_a)
        _drive(b, source, ops_b)
        view_a = a.view(0, SIZE)
        view_b = b.view(0, SIZE)
        runs.append(
            (
                diff_runs_fast(view_a, view_b),
                diff_runs_dispatch(view_a, view_b),
            )
        )
    assert runs[0] == runs[1]


def test_factory_selects_backend_on_the_fastpath_switch():
    with fastpath.forced():
        fast = memory_region("fast", SIZE)
    with fastpath.disabled():
        slow = memory_region("slow", SIZE)
    assert isinstance(fast, NumpyMemoryRegion)
    assert isinstance(slow, MemoryRegion)
    assert not isinstance(slow, NumpyMemoryRegion)


# -- engine-level: AccessProfile snapshots ----------------------------

MB = 1024 * 1024
_CONFIG = EngineConfig(db_bytes=4 * MB, log_bytes=128 * 1024)


def _measure_engine(seed: int):
    system = PassiveReplicatedSystem("v1", _CONFIG)
    workload = DebitCreditWorkload(_CONFIG.db_bytes, seed=seed)
    workload.setup(system)
    system.sync_initial()
    result = run_workload(system, workload, 40, warmup=5, verify=True)
    return {
        "counters": vars(result.counters).copy(),
        "working_set": dict(result.profile.working_set_bytes),
        "random_lines": dict(result.profile.random_lines),
        "sequential_bytes": dict(result.profile.sequential_bytes),
    }


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_engine_access_profile_identical_across_backings(seed):
    """A full mirrored engine run records the same AccessProfile
    snapshot and counters whichever region backing the factory picked
    (``fastpath.disabled()`` pins the bytearray reference)."""
    with fastpath.disabled():
        slow = _measure_engine(seed)
    with fastpath.forced():
        fast = _measure_engine(seed)
    assert fast == slow


def test_numpy_backend_requires_numpy():
    pytest.importorskip("numpy")
