"""Property-based invariants of the critical-path walker and the
structural trace differ.

Three claims:

* ``critical_path_us(root) <= root.dur_us`` for *any* randomly grown
  span DAG — children may overlap, nest, stick out past the parent, or
  leave gaps; the walker clips and never double-counts;
* when the children *tile* the parent exactly (the geometry both the
  commit and recovery recorders emit by construction), equality holds
  and the root's self time is zero at every level; and
* a run structurally diffed against itself is always identical —
  across seeds, worker counts and fastpath settings — which is what
  makes a non-empty diff in CI evidence of a real change.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import TraceEvent
from repro.obs.critpath import (
    SpanNode,
    critical_path,
    critical_path_us,
    self_time_us,
)
from repro.obs.diff import diff_events, diff_series

TOL = 1e-9


def _node(span_id, start, dur, parent_id=None):
    event = TraceEvent(start, "c", "span", kind="span", dur_us=dur, attrs={})
    return SpanNode(event=event, span_id=span_id, parent_id=parent_id,
                    trace_id=1)


# -- random DAG geometry -----------------------------------------------------
#
# A recursive tree: each node gets 0-4 children whose intervals are
# drawn *unconstrained* within (and slightly beyond) the parent — the
# nastiest geometries the walker must clip.

_interval = st.tuples(
    st.floats(-20.0, 120.0, allow_nan=False),
    st.floats(0.0, 80.0, allow_nan=False),
)


@st.composite
def _random_tree(draw, depth=0):
    start, dur = draw(_interval)
    node = _node(draw(st.integers(0, 10**6)), start, dur)
    if depth < 3:
        for child_tree in draw(
            st.lists(_random_tree(depth=depth + 1), min_size=0, max_size=4)
        ):
            node.children.append(child_tree)
    return node


@given(_random_tree())
@settings(max_examples=150, deadline=None)
def test_critical_path_never_exceeds_root_duration(root):
    path_us = critical_path_us(root)
    assert -TOL <= path_us <= root.dur_us + TOL
    # The segments tile the root's interval exactly, in order.
    segments = critical_path(root)
    cursor = root.start_us
    for segment in segments:
        assert segment.start_us == pytest.approx(cursor, abs=1e-6)
        assert segment.end_us >= segment.start_us
        cursor = segment.end_us
    if segments:
        assert cursor == pytest.approx(root.end_us, abs=1e-6)


# -- tiling geometry ---------------------------------------------------------
#
# Recursively split [start, start+dur] at random cut points: children
# tile each parent exactly, so the critical path equals the duration
# at every level and no node keeps self time.

@st.composite
def _tiling_tree(draw, start=0.0, dur=1000.0, depth=0):
    node = _node(draw(st.integers(0, 10**6)), start, dur)
    if depth < 3 and dur > 1.0 and draw(st.booleans()):
        pieces = draw(st.integers(1, 4))
        cuts = sorted(draw(st.lists(
            st.floats(0.0, 1.0, allow_nan=False),
            min_size=pieces - 1, max_size=pieces - 1,
        )))
        edges = [start] + [start + c * dur for c in cuts] + [start + dur]
        for lo, hi in zip(edges, edges[1:]):
            node.children.append(
                draw(_tiling_tree(start=lo, dur=hi - lo, depth=depth + 1))
            )
    return node


def _assert_tiled(node):
    if node.children:
        assert critical_path_us(node) == pytest.approx(node.dur_us, abs=1e-6)
        assert self_time_us(node) == pytest.approx(0.0, abs=1e-6)
    for child in node.children:
        _assert_tiled(child)


@given(_tiling_tree())
@settings(max_examples=100, deadline=None)
def test_tiling_children_reach_equality_at_every_level(root):
    _assert_tiled(root)


# -- self-diff is always empty -----------------------------------------------


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_random_event_lists_self_diff_clean(seed):
    import random

    rng = random.Random(seed)
    events = []
    next_id = rng.randrange(1, 50)
    for index in range(rng.randrange(0, 40)):
        attrs = {}
        if rng.random() < 0.5:
            attrs["trace_id"] = next_id
            attrs["span_id"] = next_id + 1
            next_id += rng.randrange(1, 5)
        if rng.random() < 0.2:
            attrs["commit_trace_id"] = rng.randrange(1, next_id + 1)
        events.append(TraceEvent(
            float(index), f"c{rng.randrange(3)}", f"n{rng.randrange(4)}",
            attrs=attrs,
        ))
    diff = diff_events(events, events)
    assert diff.identical
    assert diff.first_divergence is None


# The real-run self-diff property: one seed per configuration axis the
# acceptance criteria call out (sequential vs sharded workers), trace
# *and* series. Heavier than a unit test, so few examples by design.

@pytest.mark.parametrize("seed", [7, 42])
@pytest.mark.parametrize("shard_jobs", [1, 2])
def test_experiment_self_diff_is_empty(seed, shard_jobs):
    from repro.experiments.extension_sharding import failover_timeline

    outcome = failover_timeline(seed=seed, shard_jobs=shard_jobs)
    trace_diff = diff_events(outcome.trace_events, outcome.trace_events)
    assert trace_diff.identical
    series_diff = diff_series(outcome.series, outcome.series)
    assert series_diff.identical


def test_sequential_and_parallel_runs_diff_clean():
    from repro.experiments.extension_sharding import failover_timeline

    sequential = failover_timeline(seed=11, shard_jobs=1)
    parallel = failover_timeline(seed=11, shard_jobs=2)
    diff = diff_events(sequential.trace_events, parallel.trace_events)
    assert diff.identical, diff.render()
