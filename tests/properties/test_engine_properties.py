"""Property-based tests of the core transactional invariant.

For every engine version, every randomly generated schedule of
transactions (random ranges, random writes, commit/abort/crash at any
point), the database must always equal the state produced by an
oracle that applies only the committed transactions.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.memory.rio import RioMemory
from repro.vista import ENGINE_VERSIONS, EngineConfig, create_engine

DB_BYTES = 4096
CONFIG = EngineConfig(db_bytes=DB_BYTES, log_bytes=64 * 1024, range_records=128)

versions = st.sampled_from(list(ENGINE_VERSIONS))


@st.composite
def transaction(draw):
    """One transaction: declared ranges with writes inside them, and a
    fate: commit, abort, or crash mid-flight."""
    n_ranges = draw(st.integers(1, 4))
    operations = []
    for _ in range(n_ranges):
        length = draw(st.integers(1, 64))
        offset = draw(st.integers(0, DB_BYTES - length))
        writes = []
        n_writes = draw(st.integers(0, 3))
        for _ in range(n_writes):
            write_length = draw(st.integers(1, length))
            write_offset = draw(st.integers(0, length - write_length))
            value = draw(st.binary(min_size=write_length, max_size=write_length))
            writes.append((offset + write_offset, value))
        operations.append(((offset, length), writes))
    fate = draw(st.sampled_from(["commit", "abort", "crash"]))
    return operations, fate


@st.composite
def schedule(draw):
    return draw(st.lists(transaction(), min_size=1, max_size=8))


def apply_to_oracle(oracle: bytearray, operations) -> None:
    for (_range, writes) in operations:
        for offset, value in writes:
            oracle[offset : offset + len(value)] = value


@given(version=versions, txns=schedule())
@settings(max_examples=60, deadline=None)
def test_database_always_equals_committed_oracle(version, txns):
    rio = RioMemory("prop")
    engine = create_engine(version, rio, CONFIG)
    oracle = bytearray(DB_BYTES)

    for operations, fate in txns:
        engine.begin_transaction()
        for (offset, length), writes in operations:
            engine.set_range(offset, length)
            for write_offset, value in writes:
                engine.write(write_offset, value)
        if fate == "commit":
            engine.commit_transaction()
            apply_to_oracle(oracle, operations)
        elif fate == "abort":
            engine.abort_transaction()
        else:  # crash mid-transaction, then recover
            rio.crash()
            rio.reboot()
            engine = create_engine(version, rio, CONFIG, fresh=False)
            engine.recover()
        assert engine.read(0, DB_BYTES) == bytes(oracle), (
            f"{version}: database diverged from committed oracle after "
            f"{fate}"
        )


@given(version=versions, txns=schedule(), crash_after=st.integers(0, 8))
@settings(max_examples=40, deadline=None)
def test_crash_at_any_transaction_boundary_recovers(version, txns, crash_after):
    rio = RioMemory("prop-boundary")
    engine = create_engine(version, rio, CONFIG)
    oracle = bytearray(DB_BYTES)

    for index, (operations, _fate) in enumerate(txns):
        if index == crash_after:
            break
        engine.begin_transaction()
        for (offset, length), writes in operations:
            engine.set_range(offset, length)
            for write_offset, value in writes:
                engine.write(write_offset, value)
        engine.commit_transaction()
        apply_to_oracle(oracle, operations)

    rio.crash()
    rio.reboot()
    recovered = create_engine(version, rio, CONFIG, fresh=False)
    recovered.recover()
    assert recovered.read(0, DB_BYTES) == bytes(oracle)
