"""Property-based tests of replication: after any committed prefix and
a crash, failover must reconstruct exactly the committed state."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.replication.active import ActiveReplicatedSystem
from repro.replication.passive import PassiveReplicatedSystem
from repro.vista import ENGINE_VERSIONS, EngineConfig

DB_BYTES = 4096
CONFIG = EngineConfig(db_bytes=DB_BYTES, log_bytes=64 * 1024, range_records=128)

versions = st.sampled_from(list(ENGINE_VERSIONS))


@st.composite
def committed_txns(draw):
    txns = []
    for _ in range(draw(st.integers(0, 6))):
        length = draw(st.integers(1, 48))
        offset = draw(st.integers(0, DB_BYTES - length))
        value = draw(st.binary(min_size=length, max_size=length))
        txns.append((offset, value))
    return txns


@st.composite
def dangling_txn(draw):
    length = draw(st.integers(1, 48))
    offset = draw(st.integers(0, DB_BYTES - length))
    value = draw(st.binary(min_size=length, max_size=length))
    return offset, value


def drive(system, txns):
    oracle = bytearray(DB_BYTES)
    for offset, value in txns:
        system.begin_transaction()
        system.set_range(offset, len(value))
        system.write(offset, value)
        system.commit_transaction()
        oracle[offset : offset + len(value)] = value
    return oracle


@given(version=versions, txns=committed_txns(), dangling=dangling_txn())
@settings(max_examples=40, deadline=None)
def test_passive_failover_equals_committed_state(version, txns, dangling):
    system = PassiveReplicatedSystem(version, CONFIG)
    system.sync_initial()
    oracle = drive(system, txns)
    offset, value = dangling
    system.begin_transaction()
    system.set_range(offset, len(value))
    system.write(offset, value)  # never commits
    system.fail_primary()
    backup = system.failover()
    assert backup.read(0, DB_BYTES) == bytes(oracle)


@given(txns=committed_txns(), dangling=dangling_txn())
@settings(max_examples=40, deadline=None)
def test_active_failover_equals_committed_state(txns, dangling):
    system = ActiveReplicatedSystem(CONFIG, ring_bytes=512)
    system.sync_initial()
    oracle = drive(system, txns)
    offset, value = dangling
    system.begin_transaction()
    system.set_range(offset, len(value))
    system.write(offset, value)
    system.fail_primary()
    backup = system.failover()
    assert backup.read(0, DB_BYTES) == bytes(oracle)


@given(txns=committed_txns())
@settings(max_examples=30, deadline=None)
def test_active_backup_db_converges_to_primary(txns):
    system = ActiveReplicatedSystem(CONFIG, ring_bytes=512)
    system.sync_initial()
    drive(system, txns)
    system.applier.apply_available()
    assert system.backup_db.snapshot() == system.engine.db.snapshot()
