"""Property-based tests of the quorum architecture.

Three families of invariants, as randomized as Hypothesis can make
them:

* the version-vector merge is a semilattice join (commutative,
  associative, idempotent) and ``bump`` strictly advances;
* with R + W > N, a strict group's reads always observe the latest
  acknowledged write, under arbitrary interleavings of crashes,
  recoveries, partitions and heals — operations may *fail* with
  :class:`~repro.errors.ShardUnavailableError`, but a read that
  succeeds is never stale;
* Merkle anti-entropy converges two arbitrarily diverged replicas to
  byte-identical state in one bidirectional pass, and is idempotent
  after that.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import ShardUnavailableError
from repro.quorum.group import QuorumGroup
from repro.quorum.merkle import anti_entropy_sync
from repro.quorum.store import Record, ReplicaStore
from repro.quorum.versions import VersionVector, merge_all
from repro.sim.engine import Simulator

# -- version vectors ----------------------------------------------------------

vectors = st.builds(
    VersionVector,
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 5)), max_size=5
    ),
)


@given(a=vectors, b=vectors)
@settings(max_examples=100, deadline=None)
def test_merge_is_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(a=vectors, b=vectors, c=vectors)
@settings(max_examples=100, deadline=None)
def test_merge_is_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))
    assert merge_all([a, b, c]) == a.merge(b).merge(c)


@given(a=vectors, b=vectors)
@settings(max_examples=100, deadline=None)
def test_merge_is_idempotent_and_an_upper_bound(a, b):
    joined = a.merge(b)
    assert joined.merge(joined) == joined
    assert a.merge(a) == a
    assert joined.descends(a) and joined.descends(b)


@given(vv=vectors, replica=st.integers(0, 4))
@settings(max_examples=100, deadline=None)
def test_bump_strictly_advances(vv, replica):
    bumped = vv.bump(replica)
    assert bumped.dominates(vv)
    assert bumped.counter(replica) == vv.counter(replica) + 1
    assert VersionVector.decode(bumped.encode()) == bumped


# -- strict quorum reads observe the latest acked write -----------------------

#: One step of a fault/operation schedule. Writes carry the key and a
#: payload tag; faults carry the member (partitions isolate it).
steps = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 3), st.integers(0, 999)),
        st.tuples(st.just("read"), st.integers(0, 3), st.just(0)),
        st.tuples(st.just("crash"), st.integers(0, 2), st.just(0)),
        st.tuples(st.just("recover"), st.integers(0, 2), st.just(0)),
        st.tuples(st.just("isolate"), st.integers(0, 2), st.just(0)),
        st.tuples(st.just("heal"), st.just(0), st.just(0)),
    ),
    max_size=40,
)


@given(schedule=steps)
@settings(max_examples=60, deadline=None)
def test_strict_quorum_reads_are_never_stale(schedule):
    sim = Simulator()
    group = QuorumGroup(
        group_id=0, num_replicas=3, read_quorum=2, write_quorum=2,
        num_keys=4, sim=sim,
    )
    acked = {}  # key -> Record of the last acknowledged write
    for op, arg, payload in schedule:
        sim.run(until=sim.now + 10.0)
        if op == "write":
            try:
                record = group.write(arg, b"p%d" % payload)
            except ShardUnavailableError:
                continue
            acked[arg] = record
        elif op == "read":
            try:
                merged = group.read(arg)
            except ShardUnavailableError:
                continue
            last = acked.get(arg)
            if last is not None:
                # R+W>N: the read quorum intersects the write quorum,
                # so the merged state descends the last acked write.
                assert merged is not None
                assert merged.vv.descends(last.vv)
                assert any(s == last or s.vv.dominates(last.vv)
                           for s in merged.siblings)
        elif op == "crash":
            group.crash_member(arg)
        elif op == "recover":
            group.recover_member(arg)
        elif op == "isolate":
            others = tuple(m for m in range(3) if m != arg)
            group.heal_partition()
            group.apply_partition((arg,), others)
        elif op == "heal":
            group.heal_partition()
    # Once fully healed and repaired, the group converges.
    group.heal_partition()
    for member in range(3):
        group.recover_member(member)
    group.repair_pass()
    assert group.replicas_converged()


# -- anti-entropy convergence -------------------------------------------------

NUM_KEYS = 24


@st.composite
def store_contents(draw):
    """A random sprinkling of records over a small keyspace."""
    contents = []
    for _ in range(draw(st.integers(0, 12))):
        key = draw(st.integers(0, NUM_KEYS - 1))
        writer = draw(st.integers(0, 2))
        counter = draw(st.integers(1, 4))
        ts = float(draw(st.integers(0, 50)))
        value = draw(st.binary(min_size=1, max_size=8))
        contents.append((key, writer, counter, ts, value))
    return contents


def _fill(contents):
    store = ReplicaStore(NUM_KEYS)
    for key, writer, counter, ts, value in contents:
        store.apply(key, Record(
            value=value, vv=VersionVector([(writer, counter)]),
            ts_us=ts, writer=writer,
        ))
    return store


@given(left=store_contents(), right=store_contents(),
       leaf_span=st.sampled_from([1, 4, 8]))
@settings(max_examples=60, deadline=None)
def test_anti_entropy_converges_in_one_pass(left, right, leaf_span):
    a, b = _fill(left), _fill(right)
    anti_entropy_sync(a, b, leaf_span)
    assert a.canonical_bytes() == b.canonical_bytes()
    # And it is a fixpoint: the next pass moves nothing.
    again = anti_entropy_sync(a, b, leaf_span)
    assert again.keys_synced == 0
    assert again.bytes_transferred == 0


@given(contents=store_contents())
@settings(max_examples=40, deadline=None)
def test_anti_entropy_direction_does_not_matter(contents):
    # Syncing (a, b) or (b, a) lands both on the same joined state.
    a1, b1 = _fill(contents), ReplicaStore(NUM_KEYS)
    a2, b2 = _fill(contents), ReplicaStore(NUM_KEYS)
    anti_entropy_sync(a1, b1, 8)
    anti_entropy_sync(b2, a2, 8)
    assert a1.canonical_bytes() == a2.canonical_bytes()
    assert b1.canonical_bytes() == b2.canonical_bytes()
