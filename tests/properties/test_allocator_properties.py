"""Property-based tests of the heap allocator: no overlap, full reuse,
metadata consistency under arbitrary alloc/free interleavings."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.memory.allocator import HeapAllocator
from repro.memory.region import MemoryRegion

HEAP_BYTES = 8192


@st.composite
def alloc_script(draw):
    """A sequence of ('malloc', size) / ('free', index) operations."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(1, 40))):
        if live and draw(st.booleans()):
            ops.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            ops.append(("malloc", draw(st.integers(1, 200))))
            live += 1
    return ops


@given(script=alloc_script())
@settings(max_examples=80, deadline=None)
def test_no_overlap_and_contents_preserved(script):
    region = MemoryRegion("heap", HEAP_BYTES)
    heap = HeapAllocator(region)
    live = []  # (offset, size, fill byte)
    fill = 1
    for op, arg in script:
        if op == "malloc":
            try:
                offset = heap.malloc(arg)
            except Exception:
                continue  # exhaustion is legal
            region.write(offset, bytes([fill % 251 + 1]) * arg)
            live.append((offset, arg, fill % 251 + 1))
            fill += 1
        else:
            if arg < len(live):
                offset, size, _byte = live.pop(arg)
                heap.free(offset)
        # Every live allocation still holds its pattern (no allocator
        # metadata or other allocation scribbled over it).
        for offset, size, byte in live:
            assert region.read(offset, size) == bytes([byte]) * size


@given(sizes=st.lists(st.integers(1, 300), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_free_all_then_reallocate_big(sizes):
    region = MemoryRegion("heap", HEAP_BYTES)
    heap = HeapAllocator(region)
    offsets = []
    for size in sizes:
        try:
            offsets.append(heap.malloc(size))
        except Exception:
            break
    for offset in offsets:
        heap.free(offset)
    # After freeing everything, coalescing must restore one big block.
    heap.malloc(HEAP_BYTES - 200)


@given(sizes=st.lists(st.integers(1, 100), min_size=2, max_size=15))
@settings(max_examples=60, deadline=None)
def test_distinct_payload_offsets(sizes):
    region = MemoryRegion("heap", HEAP_BYTES)
    heap = HeapAllocator(region)
    offsets = [heap.malloc(size) for size in sizes]
    assert len(set(offsets)) == len(offsets)
