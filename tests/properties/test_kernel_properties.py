"""Property suite for the simulator-core kernels.

Two families of properties, both of the "fast and reference agree
exactly" kind the fastpath layer lives by:

* the big-int XOR diff kernel against the reference word-at-a-time
  ``diff_runs`` on random buffer pairs — equal runs for every length,
  including trailing partial words, all-equal and all-different
  buffers, and non-default word sizes;
* event-queue determinism — same-timestamp FIFO ordering, lazy
  cancellation, and wheel-vs-heap equivalence on random schedules with
  interleaved pushes, pops, bounded pops and cancellations.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.fastpath.kernels import diff_runs_fast
from repro.sim.events import BucketedEventQueue, EventQueue
from repro.vista.v2_mirror_diff import diff_runs

# ---------------------------------------------------------------------------
# Diff kernel vs reference
# ---------------------------------------------------------------------------


@st.composite
def buffer_pair(draw):
    old = draw(st.binary(min_size=0, max_size=4096))
    new = bytearray(old)
    for _ in range(draw(st.integers(0, 8))):
        if not new:
            break
        position = draw(st.integers(0, len(new) - 1))
        span = draw(st.integers(1, min(16, len(new) - position)))
        for index in range(position, position + span):
            new[index] = draw(st.integers(0, 255))
    return bytes(old), bytes(new)


@given(pair=buffer_pair(), word=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=300, deadline=None)
def test_kernel_matches_reference_on_random_pairs(pair, word):
    old, new = pair
    assert diff_runs_fast(old, new, word) == list(diff_runs(old, new, word))


@given(data=st.binary(min_size=0, max_size=4096))
@settings(max_examples=60, deadline=None)
def test_kernel_all_equal_buffers(data):
    assert diff_runs_fast(data, data) == []


@given(size=st.integers(0, 700))
@settings(max_examples=60, deadline=None)
def test_kernel_all_different_buffers(size):
    old = b"\x00" * size
    new = b"\xff" * size
    assert diff_runs_fast(old, new) == list(diff_runs(old, new))
    if size:
        assert diff_runs_fast(old, new) == [(0, size)]


@given(
    size=st.integers(1, 64),
    word=st.sampled_from([4, 8]),
    tail=st.integers(1, 7),
)
@settings(max_examples=100, deadline=None)
def test_kernel_trailing_partial_word(size, word, tail):
    # Force a difference inside the trailing partial word only.
    length = size * word + (tail % word or 1)
    old = bytes(length)
    new = bytearray(length)
    new[-1] = 0x5A
    assert diff_runs_fast(bytes(old), bytes(new), word) == list(
        diff_runs(bytes(old), bytes(new), word)
    )


@given(pair=buffer_pair())
@settings(max_examples=100, deadline=None)
def test_kernel_chunk_boundaries(pair):
    """Differences straddling the kernel's internal chunk boundary must
    merge into the same maximal runs the reference produces."""
    from repro.fastpath import kernels

    old, new = pair
    original = kernels._CHUNK_WORDS
    kernels._CHUNK_WORDS = 4  # 16-byte chunks: every buffer straddles
    try:
        assert diff_runs_fast(old, new) == list(diff_runs(old, new))
    finally:
        kernels._CHUNK_WORDS = original


def test_kernel_rejects_length_mismatch():
    try:
        diff_runs_fast(b"ab", b"abc")
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected ValueError on unequal lengths")


# ---------------------------------------------------------------------------
# Event-queue determinism: wheel vs heap
# ---------------------------------------------------------------------------

#: A random schedule: pushes at coarse-grained times (to force
#: same-timestamp collisions), interleaved pops, bounded pops and
#: cancellations of previously returned handles.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 12)),
        st.tuples(st.just("pop"), st.just(0)),
        st.tuples(st.just("pop_until"), st.integers(0, 12)),
        st.tuples(st.just("cancel"), st.integers(0, 40)),
        st.tuples(st.just("peek"), st.just(0)),
    ),
    min_size=1,
    max_size=120,
)


def _drive(queue, ops):
    """Run an op list against ``queue``; events must never fire before
    an already-popped event's time (delivery is monotone because pops
    model a forward-moving clock)."""
    handles = []
    popped = []
    floor = 0.0
    for op, value in ops:
        if op == "push":
            time = max(float(value), floor)
            handles.append(queue.push(time, lambda: None, name=f"e{len(handles)}"))
        elif op == "pop":
            event = queue.pop()
            if event is not None:
                floor = event.time
                popped.append((event.time, event.seq, event.name))
        elif op == "pop_until":
            event = queue.pop_until(float(value))
            if event is not None:
                floor = event.time
                popped.append((event.time, event.seq, event.name))
        elif op == "cancel" and handles:
            handles[value % len(handles)].cancel()
        elif op == "peek":
            queue.peek_time()
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append((event.time, event.seq, event.name))
    return popped


@given(ops=_OPS)
@settings(max_examples=300, deadline=None)
def test_wheel_and_heap_pop_identical_sequences(ops):
    assert _drive(EventQueue(), ops) == _drive(BucketedEventQueue(), ops)


@given(ops=_OPS)
@settings(max_examples=150, deadline=None)
def test_pop_order_is_time_then_fifo(ops):
    for queue in (EventQueue(), BucketedEventQueue()):
        popped = _drive(queue, ops)
        keys = [(time, seq) for time, seq, _name in popped]
        assert keys == sorted(keys)


@given(
    count=st.integers(1, 50),
    cancel=st.sets(st.integers(0, 49)),
    impl=st.sampled_from(["heap", "wheel"]),
)
@settings(max_examples=150, deadline=None)
def test_same_timestamp_fifo_with_cancellation(count, cancel, impl):
    queue = EventQueue() if impl == "heap" else BucketedEventQueue()
    handles = [queue.push(7.0, lambda: None, name=str(i)) for i in range(count)]
    for index in cancel:
        if index < count:
            handles[index].cancel()
    survivors = []
    while True:
        event = queue.pop()
        if event is None:
            break
        survivors.append(int(event.name))
    expected = [i for i in range(count) if i not in cancel]
    assert survivors == expected


@given(ops=_OPS, until=st.floats(min_value=0.0, max_value=12.0))
@settings(max_examples=100, deadline=None)
def test_pop_until_never_returns_later_events(ops, until):
    for queue in (EventQueue(), BucketedEventQueue()):
        for op, value in ops:
            if op == "push":
                queue.push(float(value), lambda: None)
        while True:
            event = queue.pop_until(until)
            if event is None:
                break
            assert event.time <= until
        remaining_time = queue.peek_time()
        if remaining_time is not None:
            assert remaining_time > until
