"""Property-based tests of the write-buffer model: conservation of
bytes, packet-size bounds, determinism."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.hardware.writebuffer import WriteBufferModel, packets_for_stores

stores = st.lists(
    st.tuples(st.integers(0, 2000), st.integers(1, 100)),
    min_size=0, max_size=50,
)


@given(stores=stores)
@settings(max_examples=100, deadline=None)
def test_bytes_conserved(stores):
    """Emitted packet bytes equal the distinct bytes written (rewrites
    of the same byte while buffered coalesce)."""
    model = WriteBufferModel()
    touched = set()
    emitted_plus_open = 0
    for address, length in stores:
        model.write(address, length)
        touched.update(range(address, address + length))
    model.barrier()
    # Every byte is emitted at most once per residency; with no
    # barriers in between, total emitted is at most the bytes written
    # and at least the number of distinct bytes (rewrites of a drained
    # byte re-emit).
    total_written = sum(length for _address, length in stores)
    assert len(touched) <= model.bytes_emitted <= max(total_written, 0) or not stores


@given(stores=stores)
@settings(max_examples=100, deadline=None)
def test_packet_sizes_bounded_by_block(stores):
    sizes = packets_for_stores(stores)
    assert all(1 <= size <= 32 for size in sizes)


@given(stores=stores)
@settings(max_examples=50, deadline=None)
def test_deterministic(stores):
    assert packets_for_stores(stores) == packets_for_stores(stores)


@given(start=st.integers(0, 64), length=st.integers(1, 500))
@settings(max_examples=100, deadline=None)
def test_single_contiguous_write_emits_exact_bytes(start, length):
    sizes = packets_for_stores([(start, length)])
    assert sum(sizes) == length
    # At most two partial packets (the unaligned ends).
    assert sum(1 for size in sizes if size < 32) <= 2


@given(
    words=st.integers(1, 8),
    blocks=st.integers(1, 10),
)
@settings(max_examples=50, deadline=None)
def test_strided_pattern_matches_figure1_construction(words, blocks):
    """Writing `words` contiguous words at the start of each 32-byte
    block yields exactly one packet of words*4 bytes per block — the
    paper's Figure 1 test program."""
    pattern = []
    for block in range(blocks):
        for word in range(words):
            pattern.append((block * 32 + word * 4, 4))
    sizes = packets_for_stores(pattern)
    assert sizes == [words * 4] * blocks
