"""Property-based tests of the Version 2 diff algorithm."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.vista.v2_mirror_diff import diff_runs


@st.composite
def buffer_pair(draw):
    old = draw(st.binary(min_size=0, max_size=200))
    new = bytearray(old)
    # Mutate a few random spots.
    for _ in range(draw(st.integers(0, 5))):
        if not new:
            break
        position = draw(st.integers(0, len(new) - 1))
        new[position] = draw(st.integers(0, 255))
    return bytes(old), bytes(new)


@given(pair=buffer_pair())
@settings(max_examples=150, deadline=None)
def test_applying_runs_reconstructs_new(pair):
    old, new = pair
    patched = bytearray(old)
    for offset, length in diff_runs(old, new):
        patched[offset : offset + length] = new[offset : offset + length]
    assert bytes(patched) == new


@given(pair=buffer_pair())
@settings(max_examples=150, deadline=None)
def test_runs_are_disjoint_sorted_and_in_bounds(pair):
    old, new = pair
    previous_end = -1
    for offset, length in diff_runs(old, new):
        assert length > 0
        assert offset > previous_end
        assert offset + length <= len(old)
        previous_end = offset + length - 1


@given(data=st.binary(min_size=0, max_size=200))
@settings(max_examples=50, deadline=None)
def test_identical_buffers_produce_no_runs(data):
    assert list(diff_runs(data, data)) == []


@given(pair=buffer_pair())
@settings(max_examples=100, deadline=None)
def test_run_bytes_never_exceed_buffer_and_cover_changes(pair):
    old, new = pair
    covered = set()
    for offset, length in diff_runs(old, new):
        covered.update(range(offset, offset + length))
    changed = {i for i in range(len(old)) if old[i] != new[i]}
    assert changed <= covered
    assert len(covered) <= len(old)
