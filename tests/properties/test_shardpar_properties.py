"""Property-based equivalence tests for the parallel shard executor.

Two claims carry :mod:`repro.fastpath.shardpar`:

* executing a :class:`TimelinePlan` as per-shard domains and merging
  deterministically produces *exactly* the sequential run — the same
  trace event list in the same order, the same sampled series bytes,
  the same router totals and takeover reports — for any router
  schedule and crash plan the decomposition admits, and
* :class:`VectorWriteBufferModel` is observably identical to the
  reference :class:`WriteBufferModel` on any store schedule.

Both are driven with randomized inputs. The plan equivalence runs the
domains inline (``jobs=1`` through the same decomposition+merge code
path the process pool uses) so Hypothesis shrinking stays fast and
in-process; one non-property test exercises a real two-process pool.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.fastpath.shardpar import (
    TimelinePlan,
    _execute_sequential,
    execute_decomposed,
    plan_supports_parallel,
)
from repro.hardware.writebuffer import VectorWriteBufferModel, WriteBufferModel
from repro.obs.observer import Observer

MB = 1024 * 1024
DB_BYTES = 4 * MB  # Debit-Credit's floor is >2 MB per shard
HORIZON_US = 24_000.0

# -- plan strategy ---------------------------------------------------
#
# Times are multiples of 50 us so submissions, crashes and sampler
# ticks collide on shared timestamps often — exactly the orderings the
# (time, seq) merge template must reproduce.

_submissions = st.lists(
    st.tuples(
        st.integers(0, 200),   # at_us / 50
        st.integers(0, 2),     # owning shard (3-shard plans; keys == shards
    ),                         # because each 4 MB shard owns one branch)
    min_size=0, max_size=25,
)

_crashes = st.lists(
    st.tuples(
        st.integers(0, 2),     # crashed shard
        st.integers(2, 300),   # at_us / 50 (>= first heartbeat)
    ),
    min_size=0, max_size=3,    # up to every shard crashing once
    unique_by=lambda crash: crash[0],  # one backup per pair: a shard
)                                      # can fail over at most once


def _plan(submissions, crashes, seed: int) -> TimelinePlan:
    return TimelinePlan(
        num_shards=3,
        mode="passive",
        version="v1",
        db_bytes_per_shard=DB_BYTES,
        log_bytes=128 * 1024,
        heartbeat_interval_us=100.0,
        heartbeat_timeout_us=500.0,
        restore_bytes_per_us=300.0,
        workload="debit-credit",
        seed=seed,
        max_attempts=6,
        sample_interval_us=500.0,
        sample_until_us=HORIZON_US,
        horizon_us=HORIZON_US,
        submissions=tuple(
            (slot * 50.0, key) for slot, key in sorted(submissions)
        ),
        crashes=tuple((shard, slot * 50.0) for shard, slot in crashes),
    )


def _assert_identical(plan: TimelinePlan, jobs: int = 1) -> None:
    seq = _execute_sequential(plan, Observer())
    par = execute_decomposed(plan, jobs=jobs)
    assert par.events == seq.events
    assert par.frame.to_bytes() == seq.frame.to_bytes()
    assert (par.routed, par.completed, par.dropped) == (
        seq.routed, seq.completed, seq.dropped,
    )
    assert par.takeover_downtime_us == seq.takeover_downtime_us


@settings(max_examples=12, deadline=None)
@given(submissions=_submissions, crashes=_crashes, seed=st.integers(0, 2**16))
def test_decomposed_equals_sequential(submissions, crashes, seed):
    """Random router schedules + crash plans: the per-shard domains
    merge into the sequential run's exact event order and outputs."""
    plan = _plan(submissions, crashes, seed)
    assert plan_supports_parallel(plan)
    _assert_identical(plan)


def test_decomposed_equals_sequential_across_processes():
    """Same equivalence through a real two-process pool (pickling the
    plan out and the domain recordings back)."""
    submissions = [(slot, slot % 3) for slot in range(0, 60, 4)]
    plan = _plan(submissions, [(1, 40)], seed=42)
    _assert_identical(plan, jobs=2)


def test_multi_crash_plan_is_decomposable_and_identical():
    """Multi-crash schedules decompose now that the router refreshes
    shard-map entries per entry: one shard's redirect can no longer
    suppress another's. The merge replays both crash/takeover streams
    into the sequential order exactly."""
    submissions = [(slot, slot % 3) for slot in range(0, 80, 3)]
    plan = _plan(submissions, [(1, 20), (2, 180)], seed=7)
    assert plan_supports_parallel(plan)
    _assert_identical(plan)


def test_repeated_crash_of_one_shard_is_rejected():
    """A pair has a single backup, so a shard can fail over at most
    once; a plan crashing the same shard twice must fall back to the
    sequential executor (which will reject it) rather than guess."""
    plan = _plan([(0, 0)], [(0, 20)], seed=1)
    repeated = TimelinePlan(
        **{**plan.__dict__, "crashes": ((1, 1000.0), (1, 9000.0))}
    )
    assert not plan_supports_parallel(repeated)
    assert plan_supports_parallel(plan)


# -- write-buffer model equivalence ----------------------------------

_geometries = st.tuples(
    st.integers(1, 8),                    # num_buffers
    st.sampled_from((4, 8, 16, 32, 64)),  # block_bytes
)

#: A schedule interleaving stores with barriers: True = barrier.
_wb_schedule = st.lists(
    st.one_of(
        st.tuples(st.integers(0, 4096), st.integers(1, 300)),
        st.just(True),
    ),
    min_size=0, max_size=60,
)


def _drive(model, ops, batched: bool):
    batch = []
    for op in ops:
        if op is True:
            if batched and batch:
                model.write_batch(batch)
                batch.clear()
            model.barrier()
        elif batched:
            batch.append(op)
        else:
            model.write(*op)
    if batched and batch:
        model.write_batch(batch)
    model.barrier()


@settings(max_examples=100, deadline=None)
@given(ops=_wb_schedule, geometry=_geometries)
def test_vector_model_matches_reference(ops, geometry):
    """Store-for-store: the vectorized model emits the same packet
    sequence, histogram and open-buffer state as the reference."""
    num_buffers, block_bytes = geometry
    ref_sizes, vec_sizes = [], []
    ref = WriteBufferModel(num_buffers, block_bytes, on_packet=ref_sizes.append)
    vec = VectorWriteBufferModel(
        num_buffers, block_bytes, on_packet=vec_sizes.append
    )
    _drive(ref, ops, batched=False)
    _drive(vec, ops, batched=False)
    assert vec_sizes == ref_sizes
    assert vec.histogram == ref.histogram
    assert vec.packets_emitted == ref.packets_emitted
    assert vec.bytes_emitted == ref.bytes_emitted
    assert vec.open_buffers == ref.open_buffers


@settings(max_examples=100, deadline=None)
@given(ops=_wb_schedule, geometry=_geometries)
def test_vector_batch_matches_reference_per_store(ops, geometry):
    """The vectorized batch entry point (run-coalescing drain) against
    the reference driven one store at a time."""
    num_buffers, block_bytes = geometry
    ref_sizes, vec_sizes = [], []
    ref = WriteBufferModel(num_buffers, block_bytes, on_packet=ref_sizes.append)
    vec = VectorWriteBufferModel(
        num_buffers, block_bytes, on_packet=vec_sizes.append
    )
    _drive(ref, ops, batched=False)
    _drive(vec, ops, batched=True)
    assert vec_sizes == ref_sizes
    assert vec.histogram == ref.histogram
    assert vec.open_buffers == ref.open_buffers
