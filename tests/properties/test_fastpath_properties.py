"""Property-based equivalence tests for the fast-path execution layer.

The whole fast path rests on two claims:

* ``write_batch`` is observably identical to calling ``write`` once
  per store, and
* a barrier-terminated store schedule that began with empty buffers
  drains into a packet sequence that is a pure function of its
  canonicalized shape, so the replay cache may serve it from memory.

These tests drive both claims with randomized store schedules over
randomized buffer geometries.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.fastpath.replay import PacketReplayCache
from repro.hardware.writebuffer import WriteBufferModel

geometries = st.tuples(
    st.integers(1, 8),                      # num_buffers
    st.sampled_from((4, 8, 16, 32, 64)),    # block_bytes
)

stores = st.lists(
    st.tuples(st.integers(0, 4096), st.integers(1, 100)),
    min_size=0, max_size=60,
)

#: A schedule interleaving stores with barriers: True = barrier.
schedule = st.lists(
    st.one_of(
        st.tuples(st.integers(0, 4096), st.integers(1, 100)),
        st.just(True),
    ),
    min_size=0, max_size=60,
)


def _run_per_store(ops, num_buffers, block_bytes):
    sizes = []
    model = WriteBufferModel(num_buffers, block_bytes, on_packet=sizes.append)
    for op in ops:
        if op is True:
            model.barrier()
        else:
            model.write(*op)
    model.barrier()
    return sizes, model


def _run_batched(ops, num_buffers, block_bytes):
    """Same schedule through write_batch, splitting at barriers."""
    sizes = []
    model = WriteBufferModel(num_buffers, block_bytes, on_packet=sizes.append)
    batch = []
    for op in ops:
        if op is True:
            model.write_batch(batch)
            batch = []
            model.barrier()
        else:
            batch.append(op)
    model.write_batch(batch)
    model.barrier()
    return sizes, model


@given(ops=schedule, geometry=geometries)
@settings(max_examples=150, deadline=None)
def test_write_batch_matches_per_store_writes(ops, geometry):
    num_buffers, block_bytes = geometry
    slow_sizes, slow = _run_per_store(ops, num_buffers, block_bytes)
    fast_sizes, fast = _run_batched(ops, num_buffers, block_bytes)
    assert fast_sizes == slow_sizes
    assert fast.packets_emitted == slow.packets_emitted
    assert fast.bytes_emitted == slow.bytes_emitted
    assert fast.histogram == slow.histogram


@given(ops=stores, geometry=geometries)
@settings(max_examples=150, deadline=None)
def test_replay_cache_matches_simulation(ops, geometry):
    """A cached drain equals the per-store simulation, on the miss
    (first call simulates) and on the hit (second call replays)."""
    num_buffers, block_bytes = geometry
    slow_sizes, slow = _run_per_store(ops, num_buffers, block_bytes)
    cache = PacketReplayCache()
    for expected_hits in (0, 1):
        sizes, total_bytes = cache.drain_sizes(ops, num_buffers, block_bytes)
        assert list(sizes) == slow_sizes
        assert total_bytes == slow.bytes_emitted
        assert cache.hits == expected_hits
    assert cache.misses == 1


@given(
    ops=stores,
    geometry=geometries,
    shift_blocks=st.integers(0, 1 << 20),
)
@settings(max_examples=100, deadline=None)
def test_canonical_key_is_translation_invariant(ops, geometry, shift_blocks):
    """Shifting every address by a whole number of blocks renames the
    blocks consistently, so the canonical key — and therefore the
    cached packet sequence — must not change."""
    num_buffers, block_bytes = geometry
    shift = shift_blocks * block_bytes
    shifted = [(address + shift, length) for address, length in ops]
    key = PacketReplayCache.canonical_key(ops, num_buffers, block_bytes)
    assert key == PacketReplayCache.canonical_key(shifted, num_buffers, block_bytes)
    base_sizes, _model = _run_per_store(ops, num_buffers, block_bytes)
    shifted_sizes, _model = _run_per_store(shifted, num_buffers, block_bytes)
    assert shifted_sizes == base_sizes


@given(ops=stores, geometry=geometries)
@settings(max_examples=100, deadline=None)
def test_account_replayed_matches_write_batch_statistics(ops, geometry):
    num_buffers, block_bytes = geometry
    sizes, reference = _run_batched(ops, num_buffers, block_bytes)
    replayed_sizes = []
    model = WriteBufferModel(
        num_buffers, block_bytes, on_packet=replayed_sizes.append
    )
    model.account_replayed(sizes, reference.bytes_emitted)
    assert replayed_sizes == sizes
    assert model.packets_emitted == reference.packets_emitted
    assert model.bytes_emitted == reference.bytes_emitted
    assert model.histogram == reference.histogram
