"""Order-Entry: TPC-C update mix, per-type behaviour, invariants."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.rio import RioMemory
from repro.vista import EngineConfig, create_engine
from repro.workloads.order_entry import (
    MIX_DELIVERY,
    MIX_NEW_ORDER,
    MIX_PAYMENT,
    OrderEntryWorkload,
)

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=4 * MB, log_bytes=256 * 1024)


def make(seed=7):
    engine = create_engine("v3", RioMemory(f"oe-{seed}"), CONFIG)
    workload = OrderEntryWorkload(CONFIG.db_bytes, seed=seed)
    workload.setup(engine)
    return engine, workload


def test_mix_weights_are_normalized():
    assert MIX_NEW_ORDER + MIX_PAYMENT + MIX_DELIVERY == pytest.approx(1.0)


def test_too_small_database_rejected():
    with pytest.raises(ConfigurationError):
        OrderEntryWorkload(1 * MB)


def test_three_transaction_types_all_run():
    engine, workload = make()
    for _ in range(300):
        workload.run_transaction(engine)
    assert set(workload.type_counts) == {"new-order", "payment", "delivery"}
    assert workload.type_counts["new-order"] > workload.type_counts["delivery"]
    assert workload.type_counts["payment"] > workload.type_counts["delivery"]


def test_mix_fractions_approximate_tpcc():
    engine, workload = make(seed=11)
    total = 2000
    for _ in range(total):
        workload.run_transaction(engine)
    assert workload.type_counts["new-order"] / total == pytest.approx(
        MIX_NEW_ORDER, abs=0.05
    )
    assert workload.type_counts["payment"] / total == pytest.approx(
        MIX_PAYMENT, abs=0.05
    )


def test_per_transaction_profile_matches_paper():
    """~85-95 modified bytes and ~430 undo bytes per transaction
    (Table 5 implies 85 / 437)."""
    engine, workload = make()
    for _ in range(500):
        workload.run_transaction(engine)
    per_txn = engine.counters.per_transaction()
    assert 70 <= per_txn["db_bytes_written"] <= 115
    assert 350 <= per_txn["undo_bytes_copied"] <= 520
    # The undo/modified ratio is the paper's ~5x signature.
    ratio = per_txn["undo_bytes_copied"] / per_txn["db_bytes_written"]
    assert 3.5 <= ratio <= 6.5


def test_shadow_model_verification():
    engine, workload = make()
    for _ in range(300):
        workload.run_transaction(engine)
    workload.verify(engine)


def test_district_order_ids_are_sequential():
    engine, workload = make()
    for _ in range(200):
        workload.run_transaction(engine)
    for district_id, next_oid in workload.shadow_district_next_oid.items():
        assert workload.district.read_field(
            engine, district_id, "next_o_id"
        ) == next_oid


def test_delivery_before_any_order_is_harmless():
    engine, workload = make()
    workload._delivery(engine)  # nothing to deliver
    assert workload.type_counts == {"delivery": 1}


def test_deterministic_given_seed():
    engine_a, workload_a = make(seed=5)
    engine_b, workload_b = make(seed=5)
    for _ in range(100):
        workload_a.run_transaction(engine_a)
        workload_b.run_transaction(engine_b)
    assert engine_a.db.snapshot() == engine_b.db.snapshot()


def test_order_entry_touches_more_lines_than_debit_credit():
    """Order-Entry's scattered stock/order-line updates are why its
    Table 8 degradation is steeper than Debit-Credit's."""
    from repro.workloads.debit_credit import DebitCreditWorkload

    oe_engine, oe = make()
    dc_engine = create_engine("v3", RioMemory("dc-lines"), CONFIG)
    dc = DebitCreditWorkload(CONFIG.db_bytes, seed=7)
    dc.setup(dc_engine)
    for _ in range(200):
        oe.run_transaction(oe_engine)
        dc.run_transaction(dc_engine)
    oe_lines = oe_engine.profile.random_lines["db"] / 200
    dc_lines = dc_engine.profile.random_lines["db"] / 200
    assert oe_lines > 2.5 * dc_lines


def test_works_against_replicated_targets():
    from repro.replication.active import ActiveReplicatedSystem

    system = ActiveReplicatedSystem(CONFIG)
    workload = OrderEntryWorkload(CONFIG.db_bytes, seed=9)
    workload.setup(system)
    system.sync_initial()
    for _ in range(100):
        workload.run_transaction(system)
    workload.verify(system)
    # The backup's copy agrees with the primary's committed state.
    assert system.backup_db.snapshot() == system.engine.db.snapshot()
