"""The Debit-Credit skew knob (sensitivity extension)."""

from repro.memory.rio import RioMemory
from repro.vista import EngineConfig, create_engine
from repro.workloads.debit_credit import DebitCreditWorkload

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=4 * MB, log_bytes=256 * 1024)


def run(skew, txns=300):
    engine = create_engine("v3", RioMemory(f"skew-{skew}"), CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=5, skew=skew)
    workload.setup(engine)
    for _ in range(txns):
        workload.run_transaction(engine)
    return engine, workload


def test_skewed_access_concentrates_on_few_accounts():
    _uniform_engine, uniform = run(0.0)
    _mild_engine, mild = run(0.9)
    _heavy_engine, heavy = run(0.99)
    assert len(mild.shadow["account"]) < len(uniform.shadow["account"]) * 0.7
    assert len(heavy.shadow["account"]) < len(uniform.shadow["account"]) / 5


def test_skewed_workload_still_verifies():
    engine, workload = run(0.8)
    workload.verify(engine)
    workload.consistency_check(engine)


def test_skew_preserves_per_txn_byte_profile():
    """Skew changes locality, not the transaction's write profile."""
    uniform_engine, _w1 = run(0.0)
    skewed_engine, _w2 = run(0.9)
    uniform = uniform_engine.counters.per_transaction()
    skewed = skewed_engine.counters.per_transaction()
    assert uniform["db_bytes_written"] == skewed["db_bytes_written"]
    assert uniform["undo_bytes_copied"] == skewed["undo_bytes_copied"]
