"""The workload driver: measurement collection, warmup, fault hooks."""

import pytest

from repro.cluster.faults import CrashPlan, FaultInjector
from repro.memory.rio import RioMemory
from repro.replication.active import ActiveReplicatedSystem
from repro.replication.passive import PassiveReplicatedSystem
from repro.vista import EngineConfig, create_engine
from repro.workloads import DebitCreditWorkload, run_workload

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=4 * MB, log_bytes=256 * 1024)


def test_standalone_run_collects_counters_and_profile():
    engine = create_engine("v3", RioMemory("drv"), CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=1)
    workload.setup(engine)
    result = run_workload(engine, workload, 100, verify=True)
    assert result.transactions == 100
    assert result.counters.commits == 100
    assert result.workload == "debit-credit"
    assert result.target_kind == "standalone-v3"
    assert result.profile.random_lines["db"] > 0
    assert result.packet_trace is None
    assert result.traffic_bytes == {}


def test_warmup_excluded_from_stats():
    engine = create_engine("v3", RioMemory("drv-warm"), CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=1)
    workload.setup(engine)
    result = run_workload(engine, workload, 50, warmup=25)
    assert result.counters.commits == 50  # warmup not counted
    assert workload.transactions_run == 75  # but it did run


def test_passive_run_collects_traffic():
    system = PassiveReplicatedSystem("v3", CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=1)
    workload.setup(system)
    system.sync_initial()
    result = run_workload(system, workload, 50)
    assert result.total_traffic_bytes > 0
    assert set(result.traffic_bytes) == {"modified", "undo", "meta"}
    assert result.packet_trace.packets > 0
    assert result.io_stores > 0
    per_txn = result.traffic_per_txn()
    assert per_txn["total"] == pytest.approx(
        result.total_traffic_bytes / 50
    )


def test_active_run_collects_redo_and_acks():
    system = ActiveReplicatedSystem(CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=1)
    workload.setup(system)
    system.sync_initial()
    result = run_workload(system, workload, 50)
    assert result.redo_records == 50 * 4  # 4 scattered writes per txn
    assert result.ack_bytes == 50 * 8
    assert "undo" not in result.traffic_bytes


def test_fault_injector_stops_run():
    system = PassiveReplicatedSystem("v3", CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=1)
    workload.setup(system)
    system.sync_initial()
    injector = FaultInjector()
    injector.schedule(CrashPlan(after_transactions=20), system.fail_primary)
    result = run_workload(system, workload, 100, fault_injector=injector)
    assert result.crashed
    assert result.transactions == 20
    backup = system.failover()
    # The backup holds the 20 committed transactions (its recovery pass
    # bumps the sequence once more while invalidating the log).
    assert backup.commit_sequence in (20, 21)


def test_scaled_accessors():
    engine = create_engine("v1", RioMemory("drv-scale"), CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=1)
    workload.setup(engine)
    result = run_workload(engine, workload, 10)
    per_txn_profile = result.profile_per_txn()
    assert per_txn_profile.random_lines["db"] == pytest.approx(
        result.profile.random_lines["db"] / 10
    )


def test_driver_rejects_engineless_target():
    with pytest.raises(TypeError):
        run_workload(object(), DebitCreditWorkload(4 * MB), 1)


def test_post_warmup_reset_is_in_place():
    """The driver must reset the engine's counters and profile *in
    place* after warmup — never swap in fresh objects — so anything
    holding the original references (an obs registry bridge, a
    dashboard) keeps seeing live steady-state counts."""
    engine = create_engine("v3", RioMemory("drv-inplace"), CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=1)
    workload.setup(engine)
    counters_before = engine.counters
    profile_before = engine.profile
    result = run_workload(engine, workload, 30, warmup=10)
    assert engine.counters is counters_before
    assert engine.profile is profile_before
    assert result.counters is counters_before
    # The held reference sees steady-state (post-warmup) counts...
    assert counters_before.commits == 30
    # ...and the profile was re-declared after its in-place clear.
    assert profile_before.working_set_bytes["db"] == engine.config.nominal
