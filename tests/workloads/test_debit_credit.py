"""Debit-Credit: TPC-B shape, audit-trail circularity, invariants."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.rio import RioMemory
from repro.vista import EngineConfig, create_engine
from repro.workloads.debit_credit import (
    AUDIT_BYTES,
    AUDIT_SLOT_BYTES,
    DebitCreditWorkload,
    TELLERS_PER_BRANCH,
)

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=4 * MB, log_bytes=256 * 1024)


def make(seed=7):
    engine = create_engine("v3", RioMemory(f"dc-{seed}"), CONFIG)
    workload = DebitCreditWorkload(CONFIG.db_bytes, seed=seed)
    workload.setup(engine)
    return engine, workload


def test_layout_shape():
    _engine, workload = make()
    assert workload.tellers.records == (
        workload.branches.records * TELLERS_PER_BRANCH
    )
    assert workload.accounts.records > 10 * workload.tellers.records
    assert workload.audit_size == AUDIT_BYTES
    assert workload.layout.used_bytes <= CONFIG.db_bytes


def test_too_small_database_rejected():
    with pytest.raises(ConfigurationError):
        DebitCreditWorkload(AUDIT_BYTES)


def test_transactions_update_three_balances_and_audit():
    engine, workload = make()
    workload.run_transaction(engine)
    per_txn = engine.counters.per_transaction()
    assert engine.counters.set_ranges == 4
    assert engine.counters.db_writes == 4
    assert engine.counters.db_bytes_written == 3 * 4 + 16


def test_per_transaction_profile_matches_paper():
    """~28 modified bytes and ~62 undo bytes per transaction (the
    paper's Table 5 implies 28.3 / 64.9)."""
    engine, workload = make()
    for _ in range(200):
        workload.run_transaction(engine)
    per_txn = engine.counters.per_transaction()
    assert per_txn["db_bytes_written"] == pytest.approx(28, abs=1)
    assert per_txn["undo_bytes_copied"] == pytest.approx(62, abs=2)


def test_shadow_model_verification():
    engine, workload = make()
    for _ in range(100):
        workload.run_transaction(engine)
    workload.verify(engine)  # must not raise


def test_balance_sums_invariant():
    engine, workload = make()
    for _ in range(100):
        workload.run_transaction(engine)
    workload.consistency_check(engine)


def test_audit_trail_wraps_circularly():
    engine, workload = make()
    assert workload.audit_slots == AUDIT_BYTES // AUDIT_SLOT_BYTES
    # Force wraparound cheaply by pre-advancing the counter.
    workload.transactions_run = workload.audit_slots - 1
    before = workload.transactions_run
    workload.run_transaction(engine)
    workload.run_transaction(engine)  # this one reuses slot 0
    assert workload.transactions_run == before + 2


def test_deterministic_given_seed():
    engine_a, workload_a = make(seed=3)
    engine_b, workload_b = make(seed=3)
    for _ in range(50):
        workload_a.run_transaction(engine_a)
        workload_b.run_transaction(engine_b)
    assert engine_a.db.snapshot() == engine_b.db.snapshot()


def test_different_seeds_diverge():
    engine_a, workload_a = make(seed=1)
    engine_b, workload_b = make(seed=2)
    for _ in range(10):
        workload_a.run_transaction(engine_a)
        workload_b.run_transaction(engine_b)
    assert engine_a.db.snapshot() != engine_b.db.snapshot()


def test_teller_belongs_to_account_branch():
    """The paper: each transaction updates the balances in the
    *corresponding* branch and teller."""
    engine, workload = make()
    for _ in range(50):
        workload.run_transaction(engine)
    for name in ("teller",):
        for teller_id in workload.shadow["teller"]:
            assert 0 <= teller_id < workload.tellers.records


def test_verify_detects_corruption():
    engine, workload = make()
    for _ in range(20):
        workload.run_transaction(engine)
    # Corrupt one touched account balance behind the workload's back.
    account_id = next(iter(workload.shadow["account"]))
    engine.db.poke(
        workload.accounts.field_offset(account_id, "balance"),
        b"\x7f\x7f\x7f\x7f",
    )
    with pytest.raises(AssertionError):
        workload.verify(engine)
