"""Record-array layouts over the database region."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.rio import RioMemory
from repro.vista import EngineConfig, create_engine
from repro.workloads.layout import DatabaseLayout, Table


def make_engine():
    config = EngineConfig(db_bytes=64 * 1024, log_bytes=32 * 1024)
    return create_engine("v3", RioMemory("layout"), config)


def test_tables_packed_sequentially():
    layout = DatabaseLayout(10_000)
    a = layout.add_table("a", 100, 10, {"x": (0, 4)})
    b = layout.add_table("b", 50, 20, {"y": (0, 8)})
    assert a.base == 0
    assert b.base == 1000
    assert layout.used_bytes == 2000


def test_table_overflow_rejected():
    layout = DatabaseLayout(1000)
    with pytest.raises(ConfigurationError):
        layout.add_table("big", 100, 11, {})


def test_area_reservation():
    layout = DatabaseLayout(1000)
    base, size = layout.add_area("audit", 500)
    assert (base, size) == (0, 500)
    with pytest.raises(ConfigurationError):
        layout.add_area("too-big", 501)


def test_record_and_field_offsets():
    table = Table("t", base=100, record_bytes=20, records=5,
                  fields={"balance": (4, 4)})
    assert table.record_offset(0) == 100
    assert table.record_offset(3) == 160
    assert table.field_offset(3, "balance") == 164
    with pytest.raises(ConfigurationError):
        table.record_offset(5)


def test_field_overflow_rejected():
    with pytest.raises(ConfigurationError):
        Table("t", 0, 8, 1, {"wide": (4, 8)})


def test_zero_records_rejected():
    with pytest.raises(ConfigurationError):
        Table("t", 0, 8, 0, {})


def test_field_read_write_through_engine():
    engine = make_engine()
    table = Table("t", base=0, record_bytes=16, records=10,
                  fields={"balance": (0, 4), "total": (8, 8)})
    engine.begin_transaction()
    engine.set_range(table.record_offset(2), 16)
    table.write_field(engine, 2, "balance", -12345)
    table.write_field(engine, 2, "total", 1 << 40)
    engine.commit_transaction()
    assert table.read_field(engine, 2, "balance") == -12345
    assert table.read_field(engine, 2, "total") == 1 << 40


def test_add_to_field():
    engine = make_engine()
    table = Table("t", base=0, record_bytes=8, records=4,
                  fields={"n": (0, 4)})
    engine.begin_transaction()
    engine.set_range(0, 8)
    assert table.add_to_field(engine, 0, "n", 5) == 5
    assert table.add_to_field(engine, 0, "n", -2) == 3
    engine.commit_transaction()
    assert table.read_field(engine, 0, "n") == 3
