"""Allocators: heap (boundary tags, coalescing, metadata writes),
bump, and array."""

import pytest

from repro.errors import AllocationError
from repro.memory.allocator import (
    ArrayAllocator,
    BumpAllocator,
    HeapAllocator,
)
from repro.memory.region import MemoryRegion, WriteCategory


def make_heap(size=4096):
    region = MemoryRegion("heap", size)
    return region, HeapAllocator(region)


class TestHeapAllocator:
    def test_malloc_returns_distinct_payloads(self):
        _region, heap = make_heap()
        a = heap.malloc(40)
        b = heap.malloc(40)
        assert a != b
        assert heap.allocs == 2

    def test_payloads_do_not_overlap(self):
        region, heap = make_heap()
        a = heap.malloc(64)
        b = heap.malloc(64)
        region.write(a, b"A" * 64)
        region.write(b, b"B" * 64)
        assert region.read(a, 64) == b"A" * 64
        assert region.read(b, 64) == b"B" * 64

    def test_free_and_reuse(self):
        _region, heap = make_heap(1024)
        a = heap.malloc(200)
        heap.free(a)
        b = heap.malloc(200)
        assert b == a  # first fit reuses the freed block

    def test_exhaustion_raises(self):
        _region, heap = make_heap(512)
        heap.malloc(300)
        with pytest.raises(AllocationError):
            heap.malloc(300)

    def test_free_everything_restores_capacity(self):
        _region, heap = make_heap(2048)
        offsets = [heap.malloc(100) for _ in range(8)]
        before = heap.free_bytes()
        for offset in offsets:
            heap.free(offset)
        assert heap.free_bytes() > before
        # After coalescing we can allocate one big block again.
        heap.malloc(1500)

    def test_coalescing_merges_neighbours(self):
        _region, heap = make_heap(2048)
        a = heap.malloc(100)
        b = heap.malloc(100)
        c = heap.malloc(100)
        heap.free(a)
        heap.free(c)
        heap.free(b)  # merges with both neighbours
        assert heap.coalesces >= 2
        heap.malloc(400)  # fits only if merged

    def test_double_free_rejected(self):
        _region, heap = make_heap()
        a = heap.malloc(64)
        heap.free(a)
        with pytest.raises(AllocationError):
            heap.free(a)

    def test_invalid_free_rejected(self):
        _region, heap = make_heap()
        with pytest.raises(AllocationError):
            heap.free(5)

    def test_zero_malloc_rejected(self):
        _region, heap = make_heap()
        with pytest.raises(AllocationError):
            heap.malloc(0)

    def test_metadata_writes_are_categorized_meta(self):
        region = MemoryRegion("heap", 4096)
        events = []
        region.add_observer(events.append)
        heap = HeapAllocator(region)
        offset = heap.malloc(64)
        heap.free(offset)
        assert events, "allocator bookkeeping must be real region writes"
        assert all(event.category is WriteCategory.META for event in events)

    def test_attach_without_format_preserves_state(self):
        region = MemoryRegion("heap", 4096)
        heap = HeapAllocator(region)
        a = heap.malloc(64)
        region.write(a, b"Z" * 64)
        # Re-attach (e.g. on a backup after failover).
        HeapAllocator(region, fresh=False)
        assert region.read(a, 64) == b"Z" * 64

    def test_too_small_heap_rejected(self):
        region = MemoryRegion("heap", 64)
        with pytest.raises(AllocationError):
            HeapAllocator(region)


class TestBumpAllocator:
    def test_alloc_advances_pointer(self):
        region = MemoryRegion("log", 1024)
        bump = BumpAllocator(region)
        a = bump.alloc(100)
        b = bump.alloc(50)
        assert b == a + 100

    def test_release_to_mark(self):
        region = MemoryRegion("log", 1024)
        bump = BumpAllocator(region)
        mark = bump.mark()
        bump.alloc(100)
        bump.release_to(mark)
        assert bump.alloc(10) == mark

    def test_exhaustion(self):
        region = MemoryRegion("log", 128)
        bump = BumpAllocator(region)
        with pytest.raises(AllocationError):
            bump.alloc(1024)

    def test_invalid_release(self):
        region = MemoryRegion("log", 1024)
        bump = BumpAllocator(region)
        with pytest.raises(AllocationError):
            bump.release_to(bump.pointer + 8)

    def test_pointer_is_persistent_state(self):
        region = MemoryRegion("log", 1024)
        bump = BumpAllocator(region)
        bump.alloc(100)
        # Attaching without fresh sees the same pointer.
        attached = BumpAllocator(region, fresh=False)
        assert attached.pointer == bump.pointer

    def test_reset(self):
        region = MemoryRegion("log", 1024)
        bump = BumpAllocator(region)
        first = bump.alloc(64)
        bump.reset()
        assert bump.alloc(64) == first


class TestArrayAllocator:
    def test_push_returns_consecutive_records(self):
        region = MemoryRegion("arr", 1024)
        array = ArrayAllocator(region, record_bytes=16)
        a = array.push()
        b = array.push()
        assert b == a + 16
        assert array.count == 2

    def test_truncate(self):
        region = MemoryRegion("arr", 1024)
        array = ArrayAllocator(region, record_bytes=16)
        array.push()
        array.push()
        array.truncate(0)
        assert array.count == 0

    def test_truncate_invalid(self):
        region = MemoryRegion("arr", 1024)
        array = ArrayAllocator(region, record_bytes=16)
        with pytest.raises(AllocationError):
            array.truncate(5)

    def test_capacity_limit(self):
        region = MemoryRegion("arr", 8 + 32)
        array = ArrayAllocator(region, record_bytes=16)
        array.push()
        array.push()
        with pytest.raises(AllocationError):
            array.push()

    def test_record_offset_bounds(self):
        region = MemoryRegion("arr", 1024)
        array = ArrayAllocator(region, record_bytes=16)
        with pytest.raises(AllocationError):
            array.record_offset(-1)
        with pytest.raises(AllocationError):
            array.record_offset(10_000)

    def test_count_is_persistent_state(self):
        region = MemoryRegion("arr", 1024)
        array = ArrayAllocator(region, record_bytes=16)
        array.push()
        attached = ArrayAllocator(region, record_bytes=16, fresh=False)
        assert attached.count == 1
