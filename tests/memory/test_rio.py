"""Rio recoverable memory: contents survive crashes; access while
crashed is the availability gap."""

import pytest

from repro.errors import CrashedError
from repro.memory.rio import RioMemory


def test_create_and_get_region():
    rio = RioMemory("n1")
    region = rio.create_region("db", 128)
    assert rio.get_region("db") is region
    assert rio.has_region("db")
    assert not rio.has_region("log")


def test_duplicate_region_rejected():
    rio = RioMemory("n1")
    rio.create_region("db", 128)
    with pytest.raises(ValueError):
        rio.create_region("db", 128)


def test_missing_region_keyerror():
    with pytest.raises(KeyError):
        RioMemory("n1").get_region("nope")


def test_contents_survive_crash_and_reboot():
    rio = RioMemory("n1")
    region = rio.create_region("db", 16)
    region.write(0, b"precious")
    rio.crash()
    rio.reboot()
    assert rio.get_region("db").read(0, 8) == b"precious"


def test_access_while_crashed_raises():
    rio = RioMemory("n1")
    rio.create_region("db", 16)
    rio.crash()
    with pytest.raises(CrashedError):
        rio.get_region("db")
    with pytest.raises(CrashedError):
        rio.create_region("log", 16)


def test_crash_detaches_observers():
    rio = RioMemory("n1")
    region = rio.create_region("db", 16)
    events = []
    region.add_observer(events.append)
    rio.crash()
    rio.reboot()
    rio.get_region("db").write(0, b"x")
    assert events == []  # a crashed node stops driving its mappings


def test_crash_count_and_idempotence():
    rio = RioMemory("n1")
    rio.crash()
    rio.crash()  # idempotent
    assert rio.crash_count == 1
    rio.reboot()
    rio.crash()
    assert rio.crash_count == 2


def test_protect_regions_option():
    rio = RioMemory("n1", protect_regions=True)
    region = rio.create_region("db", 16)
    from repro.errors import ProtectionError

    with pytest.raises(ProtectionError):
        region.write(0, b"x")
    region.open_window(0, 4)
    region.write(0, b"ok")


def test_drop_region():
    rio = RioMemory("n1")
    rio.create_region("db", 16)
    rio.drop_region("db")
    assert not rio.has_region("db")


def test_regions_iterator():
    rio = RioMemory("n1")
    rio.create_region("a", 16)
    rio.create_region("b", 16)
    assert {region.name for region in rio.regions()} == {"n1/a", "n1/b"}


def test_repr_shows_state():
    rio = RioMemory("n1")
    assert "up" in repr(rio)
    rio.crash()
    assert "crashed" in repr(rio)
