"""AddressSpace: non-overlapping aligned placement and resolution."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.mapping import AddressSpace
from repro.memory.region import MemoryRegion


def test_place_assigns_aligned_bases():
    space = AddressSpace(start=0x1000, alignment=4096)
    a = space.place(MemoryRegion("a", 100))
    b = space.place(MemoryRegion("b", 100))
    assert a.base % 4096 == 0
    assert b.base % 4096 == 0
    assert b.base >= a.base + a.size


def test_regions_never_overlap():
    space = AddressSpace()
    regions = [space.place(MemoryRegion(f"r{i}", 5000)) for i in range(10)]
    spans = sorted((r.base, r.base + r.size) for r in regions)
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert start >= end


def test_resolve_maps_address_back():
    space = AddressSpace()
    region = space.place(MemoryRegion("r", 256))
    found, offset = space.resolve(region.base + 17)
    assert found is region
    assert offset == 17


def test_resolve_unmapped_raises():
    space = AddressSpace()
    with pytest.raises(ConfigurationError):
        space.resolve(0x42)


def test_contains_and_region_at():
    space = AddressSpace()
    region = space.place(MemoryRegion("r", 256))
    assert region.base in space
    assert (region.base + region.size) not in space
    assert space.region_at(region.base) is region
    assert space.region_at(1) is None


def test_duplicate_name_rejected():
    space = AddressSpace()
    space.place(MemoryRegion("r", 16))
    with pytest.raises(ConfigurationError):
        space.place(MemoryRegion("r", 16))


def test_bad_alignment_rejected():
    with pytest.raises(ConfigurationError):
        AddressSpace(alignment=100)


def test_place_all():
    space = AddressSpace()
    a, b = MemoryRegion("a", 16), MemoryRegion("b", 16)
    space.place_all(a, b)
    assert len(space.regions) == 2
