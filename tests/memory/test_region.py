"""MemoryRegion: bounds, observers, categories, protection."""

import pytest

from repro.errors import OutOfBoundsError, ProtectionError
from repro.memory.region import MemoryRegion, WriteCategory


def test_write_then_read_round_trip():
    region = MemoryRegion("r", 64)
    region.write(8, b"hello")
    assert region.read(8, 5) == b"hello"
    assert region.read(0, 8) == b"\x00" * 8


def test_zero_size_rejected():
    with pytest.raises(ValueError):
        MemoryRegion("r", 0)


@pytest.mark.parametrize(
    "offset,length",
    [(-1, 4), (60, 8), (64, 1), (0, 65)],
)
def test_out_of_bounds_write(offset, length):
    region = MemoryRegion("r", 64)
    with pytest.raises(OutOfBoundsError):
        region.write(offset, b"x" * length)


def test_out_of_bounds_read():
    region = MemoryRegion("r", 64)
    with pytest.raises(OutOfBoundsError):
        region.read(63, 2)


def test_observers_see_every_write_with_category():
    region = MemoryRegion("r", 64)
    events = []
    region.add_observer(events.append)
    region.write(0, b"abc", WriteCategory.META)
    region.write(10, b"d")
    assert [(e.offset, e.length, e.category) for e in events] == [
        (0, 3, WriteCategory.META),
        (10, 1, WriteCategory.MODIFIED),
    ]


def test_observer_address_includes_base():
    region = MemoryRegion("r", 64, base=0x1000)
    events = []
    region.add_observer(events.append)
    region.write(4, b"x")
    assert events[0].address == 0x1004


def test_remove_observer():
    region = MemoryRegion("r", 64)
    events = []
    region.add_observer(events.append)
    region.remove_observer(events.append)
    region.write(0, b"x")
    assert events == []


def test_empty_write_is_noop():
    region = MemoryRegion("r", 64)
    events = []
    region.add_observer(events.append)
    region.write(0, b"")
    assert events == []
    assert region.writes_observed == 0


def test_poke_bypasses_observers_and_stats():
    region = MemoryRegion("r", 64)
    events = []
    region.add_observer(events.append)
    region.poke(0, b"init")
    assert events == []
    assert region.read(0, 4) == b"init"
    assert region.bytes_written == 0


def test_copy_within():
    region = MemoryRegion("r", 64)
    region.write(0, b"data")
    region.copy_within(0, 32, 4)
    assert region.read(32, 4) == b"data"


def test_copy_within_notifies_observers_like_a_write():
    region = MemoryRegion("r", 64)
    events = []
    fast = []
    region.add_observer(events.append)
    region.add_fast_observer(lambda o, l, c: fast.append((o, l, c)))
    region.poke(0, b"data")
    region.copy_within(0, 32, 4, WriteCategory.META)
    assert [(e.offset, e.length, e.category) for e in events] == [
        (32, 4, WriteCategory.META)
    ]
    assert fast == [(32, 4, WriteCategory.META)]
    assert region.writes_observed == 1
    assert region.bytes_written == 4


def test_copy_within_overlapping_forward_and_backward():
    region = MemoryRegion("r", 32)
    region.poke(0, bytes(range(16)))
    region.copy_within(0, 4, 12)  # forward overlap
    assert region.read(4, 12) == bytes(range(12))
    region2 = MemoryRegion("r2", 32)
    region2.poke(4, bytes(range(12)))
    region2.copy_within(4, 0, 12)  # backward overlap
    assert region2.read(0, 12) == bytes(range(12))


def test_copy_within_zero_length_checks_source_bounds():
    region = MemoryRegion("r", 16)
    events = []
    region.add_observer(events.append)
    region.copy_within(4, 8, 0)
    assert events == []
    assert region.writes_observed == 0
    with pytest.raises(OutOfBoundsError):
        region.copy_within(17, 0, 0)


def test_copy_within_respects_protection_window():
    region = MemoryRegion("r", 64)
    region.protect()
    with pytest.raises(ProtectionError):
        region.copy_within(0, 32, 4)
    region.open_window(32, 4)
    region.copy_within(0, 32, 4)
    region.unprotect()


def test_view_is_read_only_and_checked():
    region = MemoryRegion("r", 16)
    region.poke(2, b"abc")
    view = region.view(2, 3)
    assert bytes(view) == b"abc"
    with pytest.raises(TypeError):
        view[0] = 0
    with pytest.raises(OutOfBoundsError):
        region.view(15, 2)


def test_snapshot_and_restore():
    region = MemoryRegion("r", 16)
    region.write(0, b"x" * 16)
    snap = region.snapshot()
    region.write(0, b"y" * 16)
    region.load_snapshot(snap)
    assert region.read(0, 16) == b"x" * 16


def test_load_snapshot_size_mismatch():
    region = MemoryRegion("r", 16)
    with pytest.raises(ValueError):
        region.load_snapshot(b"short")


def test_fill():
    region = MemoryRegion("r", 8)
    region.fill(0xAB)
    assert region.read(0, 8) == b"\xab" * 8


def test_fill_zero_and_page_straddling_sizes():
    # Exercise the page-chunked fill: below, at, and above the page.
    for size in (8, 1 << 16, (1 << 16) + 13):
        region = MemoryRegion("r", size)
        region.poke(0, b"x" * min(size, 64))
        region.fill(0)
        assert region.snapshot() == bytes(size)
        region.fill(7)
        assert region.snapshot() == b"\x07" * size


def test_fill_rejects_non_byte_values():
    region = MemoryRegion("r", 8)
    with pytest.raises(ValueError):
        region.fill(256)
    with pytest.raises(ValueError):
        region.fill(-1)


def test_write_statistics():
    region = MemoryRegion("r", 64)
    region.write(0, b"abcd")
    region.write(4, b"ef")
    assert region.writes_observed == 2
    assert region.bytes_written == 6


def test_protection_blocks_writes_without_window():
    region = MemoryRegion("r", 64)
    region.protect()
    with pytest.raises(ProtectionError):
        region.write(0, b"x")


def test_protection_window_allows_sanctioned_writes():
    region = MemoryRegion("r", 64)
    region.protect()
    region.open_window(8, 8)
    region.write(8, b"ok")
    with pytest.raises(ProtectionError):
        region.write(0, b"no")
    region.close_window()
    with pytest.raises(ProtectionError):
        region.write(8, b"no")
    region.unprotect()
    region.write(0, b"yes")


def test_len_and_repr():
    region = MemoryRegion("r", 64, base=0x10)
    assert len(region) == 64
    assert "r" in repr(region)
