"""The versioned shard map and its epoch fencing."""

import pytest

from repro.errors import ConfigurationError, StaleShardMapError
from repro.shard.shardmap import (
    STATUS_DEGRADED,
    STATUS_FAILING_OVER,
    STATUS_UP,
    ShardMap,
)


def make_map(shards=3):
    shard_map = ShardMap()
    for i in range(shards):
        shard_map.add_shard(f"s{i}/primary", f"s{i}/backup")
    return shard_map


def test_entries_start_up_at_epoch_zero():
    shard_map = make_map()
    assert shard_map.num_shards == 3
    for i, entry in enumerate(shard_map.entries):
        assert entry.shard_id == i
        assert entry.epoch == 0
        assert entry.status == STATUS_UP


def test_fail_over_promotes_backup_and_bumps_epoch():
    shard_map = make_map()
    updated = shard_map.fail_over(1)
    assert updated.primary == "s1/backup"
    assert updated.backup == ""
    assert updated.epoch == 1
    assert updated.status == STATUS_FAILING_OVER
    # Other shards' entries are untouched.
    assert shard_map.entry(0).epoch == 0
    assert shard_map.entry(2).primary == "s2/primary"
    assert shard_map.epoch == 1


def test_mark_restored_keeps_the_epoch():
    shard_map = make_map()
    shard_map.fail_over(1)
    restored = shard_map.mark_restored(1)
    assert restored.status == STATUS_DEGRADED
    assert restored.epoch == 1  # routing did not change again


def test_check_epoch_fences_stale_requests():
    shard_map = make_map()
    shard_map.check_epoch(1, 0)  # fresh view passes
    shard_map.fail_over(1)
    with pytest.raises(StaleShardMapError) as excinfo:
        shard_map.check_epoch(1, 0)
    assert excinfo.value.shard_id == 1
    assert excinfo.value.seen_epoch == 0
    assert excinfo.value.current_epoch == 1
    shard_map.check_epoch(1, 1)


def test_snapshot_is_isolated_from_later_changes():
    shard_map = make_map()
    snap = shard_map.snapshot()
    shard_map.fail_over(0)
    assert snap.entry(0).primary == "s0/primary"
    assert snap.entry(0).epoch == 0
    assert shard_map.entry(0).primary == "s0/backup"
    fresh = shard_map.snapshot()
    assert fresh.entry(0).epoch == 1


def test_unknown_shard_rejected():
    shard_map = make_map(2)
    with pytest.raises(ConfigurationError):
        shard_map.entry(2)
    with pytest.raises(ConfigurationError):
        shard_map.snapshot().entry(-1)
