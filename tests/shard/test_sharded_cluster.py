"""N pairs on one simulator: independent failover, shared views."""

import pytest

from repro.errors import (
    ConfigurationError,
    ShardUnavailableError,
    StaleShardMapError,
)
from repro.shard import ShardedCluster, ShardedWorkload
from repro.shard.shardmap import STATUS_DEGRADED, STATUS_UP
from repro.vista import EngineConfig

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=4 * MB, log_bytes=512 * 1024)


def make(num_shards=3, mode="active", version="v3"):
    cluster = ShardedCluster(
        num_shards, mode=mode, version=version, config=CONFIG,
        heartbeat_interval_us=100.0, heartbeat_timeout_us=500.0,
    )
    workload = ShardedWorkload(
        "debit-credit", num_shards, CONFIG.db_bytes, seed=11
    )
    cluster.setup(workload)
    return cluster, workload


def test_pairs_share_one_simulator_and_namespace():
    cluster, _ = make(3)
    assert all(pair.sim is cluster.sim for pair in cluster.pairs)
    names = {pair.primary_node.name for pair in cluster.pairs}
    assert names == {"shard0/primary", "shard1/primary", "shard2/primary"}
    assert len(cluster.membership.members) == 6
    assert cluster.shard_map.num_shards == 3


def test_single_shard_crash_fails_over_only_that_shard():
    cluster, workload = make(3)
    for shard_id in range(3):
        for _ in range(10):
            workload.run_on_shard(shard_id, cluster.serving(shard_id))
    cluster.schedule_primary_crash(1, at_us=2_000.0)
    cluster.run_until(20_000.0)

    assert set(cluster.takeovers) == {1}
    report = cluster.takeovers[1]
    assert report.crash_at_us == 2_000.0
    assert 0 < report.detection_us <= 600.0 + 1e-9

    # Shard 1's entry changed; the others are untouched.
    assert cluster.shard_map.entry(1).primary == "shard1/backup"
    assert cluster.shard_map.entry(1).epoch == 1
    assert cluster.shard_map.entry(1).status == STATUS_DEGRADED
    for other in (0, 2):
        assert cluster.shard_map.entry(other).epoch == 0
        assert cluster.shard_map.entry(other).status == STATUS_UP

    # The cluster-wide view lost exactly the crashed node.
    assert cluster.membership.view_id == 1
    assert "shard1/primary" not in cluster.membership.members
    assert len(cluster.membership.members) == 5

    # Every shard still serves and verifies, including the promoted one.
    for shard_id in range(3):
        workload.run_on_shard(shard_id, cluster.serving(shard_id))
        workload.verify_shard(shard_id, cluster.serving(shard_id))


def test_availability_window_tracks_the_takeover():
    cluster, _ = make(2, mode="passive", version="v1")
    assert cluster.available(0) and cluster.available(1)
    cluster.schedule_primary_crash(0, at_us=1_000.0)
    cluster.run_until(1_200.0)  # crashed, not yet detected
    assert not cluster.available(0)
    assert cluster.available(1)
    cluster.run_until(2_000.0)  # detected; mirror restore still running
    report = cluster.takeovers[0]
    assert report.service_restored_at_us > 2_000.0
    assert not cluster.available(0)
    cluster.run_until(report.service_restored_at_us + 1.0)
    assert cluster.available(0)


def test_execute_fences_stale_epochs_then_serves_fresh_ones():
    cluster, workload = make(2)
    stale = cluster.shard_map.snapshot()
    cluster.schedule_primary_crash(1, at_us=1_000.0)
    cluster.run_until(10_000.0)

    run = lambda serving: workload.run_on_shard(1, serving)
    with pytest.raises(StaleShardMapError):
        cluster.execute(1, stale.entry(1).epoch, run)
    fresh = cluster.shard_map.snapshot()
    cluster.execute(1, fresh.entry(1).epoch, run)
    workload.verify_shard(1, cluster.serving(1))
    # The unaffected shard accepts the old epoch unchanged.
    cluster.execute(0, stale.entry(0).epoch,
                    lambda serving: workload.run_on_shard(0, serving))


def test_execute_reports_unavailable_mid_failover():
    cluster, workload = make(2, mode="passive", version="v1")
    cluster.schedule_primary_crash(0, at_us=1_000.0)
    cluster.run_until(2_000.0)  # takeover underway, restore pending
    epoch = cluster.shard_map.entry(0).epoch
    with pytest.raises(ShardUnavailableError):
        cluster.execute(0, epoch,
                        lambda serving: workload.run_on_shard(0, serving))


def test_order_entry_shards_by_warehouse():
    cluster = ShardedCluster(
        2, config=CONFIG,
        heartbeat_interval_us=100.0, heartbeat_timeout_us=500.0,
    )
    workload = ShardedWorkload("order-entry", 2, CONFIG.db_bytes, seed=5)
    cluster.setup(workload)
    assert workload.partitioner.total_keys == sum(
        w.warehouse.records for w in workload.shards
    )
    for shard_id in range(2):
        for _ in range(5):
            workload.run_on_shard(shard_id, cluster.serving(shard_id))
        workload.verify_shard(shard_id, cluster.serving(shard_id))


def test_configuration_validation():
    with pytest.raises(ConfigurationError):
        ShardedCluster(0, config=CONFIG)
    cluster, _ = make(2)
    with pytest.raises(ConfigurationError):
        cluster.serving(2)
    mismatched = ShardedWorkload("debit-credit", 3, CONFIG.db_bytes)
    with pytest.raises(ConfigurationError):
        cluster.setup(mismatched)


def test_repr_mentions_failures():
    cluster, _ = make(2)
    assert "0 failed over" in repr(cluster)
    cluster.schedule_primary_crash(0, at_us=1_000.0)
    cluster.run_until(10_000.0)
    assert "1 failed over" in repr(cluster)
