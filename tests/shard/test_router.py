"""Router behavior: placement, redirects, retries, drops."""

import pytest

from repro.errors import RoutingError
from repro.shard import Router, ShardedCluster, ShardedWorkload
from repro.vista import EngineConfig

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=4 * MB, log_bytes=512 * 1024)


def make(num_shards=4, mode="active", version="v3", seed=13, **router_kwargs):
    cluster = ShardedCluster(
        num_shards, mode=mode, version=version, config=CONFIG,
        heartbeat_interval_us=100.0, heartbeat_timeout_us=500.0,
    )
    workload = ShardedWorkload(
        "debit-credit", num_shards, CONFIG.db_bytes, seed=seed
    )
    cluster.setup(workload)
    return cluster, workload, Router(cluster, workload, **router_kwargs)


def test_healthy_routing_completes_everything_immediately():
    cluster, workload, router = make()
    for _ in range(40):
        router.submit()  # client-drawn keys
    cluster.run_until(1_000.0)
    assert router.routed == router.completed == 40
    assert router.retries == router.redirects == router.dropped == 0
    assert all(t.latency_us == 0.0 for t in router.transactions)
    # Keys actually spread over the shards.
    touched = {t.shard_id for t in router.transactions}
    assert len(touched) > 1
    for shard_id in touched:
        workload.verify_shard(shard_id, cluster.serving(shard_id))


def test_submissions_route_by_partition_key():
    _cluster, workload, router = make(num_shards=3)
    for shard_id in range(3):
        key = workload.partitioner.ranges[shard_id].start
        record = router.submit(key=key)
        assert record.shard_id == shard_id


def test_failover_submissions_retry_until_service_returns():
    # Passive v1: the whole-database mirror restore keeps the shard
    # down for milliseconds, so retries must ride out a real window.
    cluster, workload, router = make(num_shards=2, mode="passive",
                                     version="v1")
    cluster.schedule_primary_crash(0, at_us=1_000.0)
    key = workload.partitioner.ranges[0].start
    victim = router.submit(key=key, at_us=2_000.0)  # mid-outage
    bystander = router.submit(
        key=workload.partitioner.ranges[1].start, at_us=2_000.0
    )
    cluster.run_until(60_000.0)

    report = cluster.takeovers[0]
    assert victim.completed_at_us is not None
    assert victim.completed_at_us >= report.service_restored_at_us
    assert victim.attempts > 1
    assert router.retries > 0
    # The healthy shard's transaction never waited.
    assert bystander.completed_at_us == 2_000.0
    workload.verify_shard(0, cluster.serving(0))


def test_stale_snapshot_redirects_once_then_serves():
    cluster, workload, router = make(num_shards=2)
    cluster.schedule_primary_crash(1, at_us=1_000.0)
    cluster.run_until(10_000.0)  # failover done; router's map is stale
    record = router.submit(key=workload.partitioner.ranges[1].start)
    cluster.run_until(10_001.0)
    assert record.completed_at_us is not None
    assert router.redirects == 1
    assert router.map.entry(1).epoch == 1  # snapshot was refreshed


def test_attempt_budget_exhaustion_drops_the_transaction():
    cluster, workload, router = make(num_shards=2, mode="passive",
                                     version="v1", max_attempts=1)
    cluster.schedule_primary_crash(0, at_us=1_000.0)
    record = router.submit(
        key=workload.partitioner.ranges[0].start, at_us=2_000.0
    )
    cluster.run_until(60_000.0)
    assert record.dropped
    assert record.completed_at_us is None
    assert router.dropped == 1
    assert router.in_flight == 0


def test_backoff_is_exponential_and_capped():
    cluster, workload, router = make(
        num_shards=2, mode="passive", version="v1",
        backoff_us=100.0, backoff_factor=2.0, max_backoff_us=400.0,
        max_attempts=60,
    )
    cluster.schedule_primary_crash(0, at_us=1_000.0)
    record = router.submit(
        key=workload.partitioner.ranges[0].start, at_us=2_000.0
    )
    cluster.run_until(60_000.0)
    assert record.completed_at_us is not None
    # Attempts at 2000, +100, +200, +400, +400... — the cap keeps the
    # worst-case completion delay after restore below max_backoff_us.
    report = cluster.takeovers[0]
    assert record.completed_at_us - report.service_restored_at_us <= 400.0


def test_router_validates_its_inputs():
    cluster, workload, _ = make(num_shards=2)
    other = ShardedWorkload("debit-credit", 3, CONFIG.db_bytes)
    with pytest.raises(RoutingError):
        Router(cluster, other)
    with pytest.raises(RoutingError):
        Router(cluster, workload, max_attempts=0)
