"""Range partitioning of workload keyspaces."""

import pytest

from repro.errors import ConfigurationError
from repro.shard.partitioner import KeyRange, Partitioner
from repro.workloads import DebitCreditWorkload, OrderEntryWorkload

MB = 1024 * 1024


def test_ranges_are_contiguous_and_cover_the_keyspace():
    part = Partitioner([3, 2, 5])
    assert part.num_shards == 3
    assert part.total_keys == 10
    assert part.ranges[0] == KeyRange(0, 0, 3)
    assert part.ranges[1] == KeyRange(1, 3, 5)
    assert part.ranges[2] == KeyRange(2, 5, 10)
    owners = [part.shard_of(key) for key in range(10)]
    assert owners == [0, 0, 0, 1, 1, 2, 2, 2, 2, 2]


def test_local_global_round_trip():
    part = Partitioner([4, 4, 4])
    for key in range(part.total_keys):
        shard_id, local = part.to_local(key)
        assert key in part.ranges[shard_id]
        assert part.to_global(shard_id, local) == key


def test_even_split_spreads_the_remainder():
    part = Partitioner.even(10, 4)
    assert [r.size for r in part.ranges] == [3, 3, 2, 2]
    assert part.total_keys == 10


def test_even_split_validates():
    with pytest.raises(ConfigurationError):
        Partitioner.even(3, 4)  # cannot give every shard a key
    with pytest.raises(ConfigurationError):
        Partitioner.even(8, 0)


def test_out_of_range_keys_rejected():
    part = Partitioner([2, 2])
    with pytest.raises(ConfigurationError):
        part.shard_of(-1)
    with pytest.raises(ConfigurationError):
        part.shard_of(4)
    with pytest.raises(ConfigurationError):
        part.to_global(0, 2)


def test_empty_or_zero_shards_rejected():
    with pytest.raises(ConfigurationError):
        Partitioner([])
    with pytest.raises(ConfigurationError):
        Partitioner([2, 0, 2])


def test_for_debit_credit_reads_branches_off_the_layouts():
    shards = [DebitCreditWorkload(4 * MB, seed=i) for i in range(3)]
    part = Partitioner.for_debit_credit(shards)
    assert part.num_shards == 3
    assert part.total_keys == sum(w.branches.records for w in shards)


def test_for_order_entry_reads_warehouses_off_the_layouts():
    shards = [OrderEntryWorkload(16 * MB, seed=i) for i in range(2)]
    part = Partitioner.for_order_entry(shards)
    assert part.total_keys == sum(w.warehouse.records for w in shards)
    assert part.total_keys >= 2
