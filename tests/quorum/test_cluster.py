"""Quorum clusters behind the shard router."""

import pytest

from repro.errors import ConfigurationError, ShardUnavailableError
from repro.obs import Observer
from repro.quorum.cluster import QuorumCluster
from repro.quorum.workload import KeyPartitioner, QuorumWorkload
from repro.shard.router import Router


def make_cluster(num_groups=2, observer=None, **kw):
    kw.setdefault("replicas_per_group", 3)
    kw.setdefault("read_quorum", 2)
    kw.setdefault("write_quorum", 2)
    kw.setdefault("keys_per_group", 8)
    return QuorumCluster(num_groups, observer=observer, **kw)


def test_partitioner_shapes_are_validated():
    with pytest.raises(ConfigurationError):
        KeyPartitioner(0, 4)
    with pytest.raises(ConfigurationError):
        KeyPartitioner(4, 2)
    assert KeyPartitioner(3, 9).shard_of(7) == 1


def test_workload_round_trips_its_counter_encoding():
    workload = QuorumWorkload(2, 8, value_bytes=32, seed=7)
    value = workload.encode_value(1, 3, 42)
    assert len(value) == 32
    assert workload.decode_counter(value) == 42
    assert workload.decode_counter(b"garbage") == 0


def test_setup_rejects_mismatched_workloads():
    cluster = make_cluster(num_groups=2)
    with pytest.raises(ConfigurationError):
        cluster.setup(QuorumWorkload(3, 8))


def test_scope_name_matches_the_group_observer_scope():
    cluster = make_cluster(num_groups=2)
    assert cluster.scope_name(1) == "group.1"


def test_execute_refuses_when_the_group_lost_quorum():
    cluster = make_cluster(num_groups=1)
    cluster.groups[0].crash_member(0)
    cluster.groups[0].crash_member(1)
    assert not cluster.available(0)
    with pytest.raises(ShardUnavailableError):
        cluster.execute(0, 0, lambda group: group.write(0, b"x"))
    with pytest.raises(ConfigurationError):
        cluster.execute(5, 0, lambda group: None)


def test_router_drives_the_quorum_cluster_end_to_end():
    cluster = make_cluster(num_groups=2)
    workload = QuorumWorkload(2, 8, seed=11)
    cluster.setup(workload)
    router = Router(cluster, workload, observer=cluster.observer)
    for slot in range(8):
        router.submit(key=slot % 2, at_us=slot * 100.0)
    cluster.run_until(2_000.0)
    assert router.completed == 8
    assert router.dropped == 0
    assert workload.transactions_run == 8
    # Every acked counter is readable back through a quorum read.
    for (group_id, key), counter in workload.acked.items():
        value = cluster.groups[group_id].value_of(key)
        assert workload.decode_counter(value) == counter


def test_router_retries_through_a_scheduled_quorum_loss():
    cluster = make_cluster(num_groups=1)
    workload = QuorumWorkload(1, 8, seed=3)
    cluster.setup(workload)
    router = Router(cluster, workload, max_attempts=12,
                    observer=cluster.observer)
    cluster.schedule_member_crash(0, 0, 50.0)
    cluster.schedule_member_crash(0, 1, 60.0)
    cluster.schedule_member_recover(0, 1, 900.0)
    router.submit(key=0, at_us=100.0)
    cluster.run_until(10_000.0)
    assert router.completed == 1
    assert router.retries > 0
    assert cluster.groups[0].stats.quorum_losses == 1


def test_scheduled_partition_cuts_then_heals_with_trace_events():
    observer = Observer()
    cluster = make_cluster(num_groups=1, observer=observer)
    plan = cluster.schedule_partition(
        0, (0,), (1, 2), at_us=100.0, heal_at_us=300.0
    )
    assert plan.symmetric
    cluster.run_until(200.0)
    group = cluster.groups[0]
    assert not group._connected(0, 1)
    cluster.run_until(400.0)
    assert group._connected(0, 1)
    names = [e.name for e in observer.recorder.select()
             if e.name.startswith("fault.")]
    assert names == ["fault.partition", "fault.heal"]


def test_stats_rolls_up_every_group():
    cluster = make_cluster(num_groups=2)
    cluster.groups[0].write(1, b"x")
    stats = cluster.stats
    assert set(stats) == {0, 1}
    assert stats[0]["writes"] == 1
    assert stats[1]["writes"] == 0


def test_repair_pass_all_sweeps_every_group():
    cluster = make_cluster(num_groups=2)
    for group in cluster.groups:
        group.crash_member(2)
        group.write(0, b"diverge")
        group.recover_member(2)
    assert cluster.repair_pass_all() >= 2
    assert all(group.replicas_converged() for group in cluster.groups)
