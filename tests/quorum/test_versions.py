"""Version vectors: the semilattice algebra, comparisons, encoding."""

import pytest

from repro.quorum.versions import VersionVector, merge_all


def test_empty_vector_is_falsy_and_encodes_empty():
    vv = VersionVector()
    assert not vv
    assert vv.encode() == ""
    assert vv.counter(0) == 0
    assert VersionVector.decode("") == vv


def test_bump_advances_only_the_bumping_replica():
    vv = VersionVector().bump(2)
    assert vv.counter(2) == 1
    assert vv.counter(0) == 0
    again = vv.bump(2).bump(0)
    assert again.counter(2) == 2
    assert again.counter(0) == 1
    # Immutable: the original never moved.
    assert vv.counter(2) == 1


def test_zero_counters_are_dropped_from_the_representation():
    assert VersionVector([(0, 0), (1, 2)]) == VersionVector([(1, 2)])


def test_merge_is_pointwise_max():
    a = VersionVector([(0, 3), (1, 1)])
    b = VersionVector([(1, 4), (2, 2)])
    merged = a.merge(b)
    assert merged.counters == ((0, 3), (1, 4), (2, 2))


def test_descends_dominates_concurrent():
    base = VersionVector([(0, 1)])
    newer = base.bump(0)
    other = base.bump(1)
    assert newer.descends(base) and newer.dominates(base)
    assert base.descends(base) and not base.dominates(base)
    assert other.concurrent_with(newer)
    assert not other.descends(newer) and not newer.descends(other)
    # Merging two concurrent vectors descends from both.
    joined = newer.merge(other)
    assert joined.descends(newer) and joined.descends(other)


def test_encode_decode_round_trip_is_canonical():
    vv = VersionVector([(2, 1), (0, 3)])
    assert vv.encode() == "0:3,2:1"
    assert VersionVector.decode(vv.encode()) == vv
    assert hash(VersionVector.decode(vv.encode())) == hash(vv)


def test_merge_all_folds_every_vector():
    vectors = [
        VersionVector([(0, 1)]),
        VersionVector([(1, 5)]),
        VersionVector([(0, 2), (2, 1)]),
    ]
    merged = merge_all(vectors)
    assert merged.counters == ((0, 2), (1, 5), (2, 1))
    assert merge_all([]) == VersionVector()


def test_vectors_are_not_equal_to_other_types():
    assert VersionVector() != "0:1"
    with pytest.raises(TypeError):
        VersionVector() < VersionVector()
