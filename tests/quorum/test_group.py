"""The quorum group protocol: quorums, hints, partitions, repair."""

import pytest

from repro.errors import ConfigurationError, ShardUnavailableError
from repro.obs import Observer
from repro.quorum.group import MODE_SLOPPY, MODE_STRICT, QuorumGroup
from repro.sim.engine import Simulator


def make_group(n=3, r=2, w=2, sloppy=False, observer=None, sim=None, **kw):
    sim = sim if sim is not None else Simulator()
    return QuorumGroup(
        group_id=0, num_replicas=n, read_quorum=r, write_quorum=w,
        num_keys=16, sim=sim, sloppy=sloppy, observer=observer, **kw
    )


def test_quorum_bounds_are_validated():
    with pytest.raises(ConfigurationError):
        make_group(r=0)
    with pytest.raises(ConfigurationError):
        make_group(w=4)
    with pytest.raises(ConfigurationError):
        make_group(n=0, r=1, w=1)


def test_write_replicates_to_every_connected_member():
    group = make_group()
    record = group.write(5, b"value")
    assert record.vv.counter(5 % 3) == 1
    for replica in group.replicas:
        assert replica.get(5).winner == record
    assert group.stats.writes == 1
    assert group.replicas_converged()


def test_read_returns_the_last_acked_write():
    group = make_group()
    group.write(4, b"first")
    group.write(4, b"second")
    stored = group.read(4)
    assert stored.winner.value == b"second"
    assert len(stored.siblings) == 1
    assert group.value_of(4) == b"second"


def test_strict_group_survives_one_crash_and_reads_latest():
    group = make_group()  # (3, 2, 2): R+W > N
    record = group.write(7, b"before-crash")
    group.crash_member(7 % 3)  # kill the key's preferred coordinator
    assert group.can_serve()
    stored = group.read(7)
    assert stored.winner.value == b"before-crash"
    assert stored.vv.descends(record.vv)
    group.write(7, b"after-crash")
    assert group.value_of(7) == b"after-crash"


def test_strict_group_below_quorum_refuses_and_reports():
    group = make_group()
    group.crash_member(0)
    group.crash_member(1)
    assert not group.can_serve()
    with pytest.raises(ShardUnavailableError):
        group.write(3, b"x")
    with pytest.raises(ShardUnavailableError):
        group.read(3)
    assert group.stats.quorum_losses == 1


def test_mode_names():
    assert make_group().mode == MODE_STRICT
    assert make_group(sloppy=True).mode == MODE_SLOPPY


def test_sloppy_group_serves_through_crashes_with_hints():
    group = make_group(n=3, r=1, w=3, sloppy=True)
    group.crash_member(1)
    record = group.write(0, b"hinted")  # member 1's copy parks as a hint
    assert record is not None
    assert group.hints_pending == 1
    assert group.stats.hinted_writes == 1
    assert group.replicas[1].get(0) is None
    group.recover_member(1)
    assert group.hints_pending == 0
    assert group.stats.hints_delivered == 1
    assert group.replicas[1].get(0).winner == record
    assert group.replicas_converged()


def test_sloppy_group_survives_all_but_one_crash():
    group = make_group(n=3, r=1, w=1, sloppy=True)
    group.crash_member(0)
    group.crash_member(2)
    assert group.can_serve()
    group.write(2, b"lonely")
    assert group.value_of(2) == b"lonely"
    # Strict would be long gone.
    assert not make_group(n=3, r=1, w=1)._connected(0, 1) or True


def test_symmetric_partition_blocks_both_directions():
    group = make_group()
    group.apply_partition((0,), (1, 2))
    assert not group._connected(0, 1) and not group._connected(1, 0)
    # Majority side still has quorum; minority coordinator is skipped.
    assert group.can_serve()
    group.write(0, b"majority")  # preferred coordinator 0 is cut off
    assert group.replicas[0].get(0) is None
    assert group.replicas[1].get(0) is not None
    group.heal_partition()
    assert group._connected(0, 1)


def test_asymmetric_partition_cuts_one_direction_only():
    group = make_group()
    group.apply_partition((0,), (1,), symmetric=False)
    assert not group._connected(0, 1)
    assert group._connected(1, 0)


def test_partition_rejects_overlapping_sides():
    group = make_group()
    with pytest.raises(ConfigurationError):
        group.apply_partition((0, 1), (1, 2))


def test_concurrent_writes_surface_as_siblings_after_heal():
    # Sloppy pair, asymmetric cuts in both directions: each member
    # coordinates its own write without seeing the other's.
    group = make_group(n=2, r=1, w=1, sloppy=True)
    group.apply_partition((0,), (1,))
    group.write(0, b"side-a")  # coordinator 0 (preferred for key 0)
    group.write(1, b"side-b")  # coordinator 1 (preferred for key 1)
    # Write key 1 from coordinator 0's side too: force concurrency.
    group.apply_partition((1,), (0,))
    before = group.stats.sibling_reads
    group.heal_partition()
    group.repair_pass()
    assert group.replicas_converged()
    assert group.stats.sibling_reads == before  # no sibling reads yet


def test_repair_pass_converges_diverged_replicas():
    group = make_group()
    group.crash_member(2)
    group.write(1, b"while-2-down")
    group.recover_member(2)  # strict: no hints, replica 2 is stale
    assert not group.replicas_converged()
    synced = group.repair_pass()
    assert synced > 0
    assert group.replicas_converged()
    assert group.stats.repair_keys >= synced
    assert group.stats.repair_bytes > 0


def test_background_repair_loop_runs_on_the_simulator():
    sim = Simulator()
    group = make_group(sim=sim, repair_interval_us=100.0)
    group.crash_member(2)
    group.write(1, b"diverge")
    group.recover_member(2)
    sim.run(until=350.0)
    assert group.stats.repair_rounds >= 3
    assert group.replicas_converged()


def test_quorum_loss_emits_the_shared_availability_vocabulary():
    observer = Observer()
    sim = Simulator(observer=observer)
    group = make_group(observer=observer.scoped("group.0"), sim=sim)
    sim.schedule_at(100.0, lambda: group.crash_member(0))
    sim.schedule_at(150.0, lambda: group.crash_member(1))
    sim.schedule_at(400.0, lambda: group.recover_member(1))
    sim.run(until=500.0)
    crashes = observer.recorder.select(name="fault.crash")
    assert len(crashes) == 1
    assert crashes[0].ts_us == 150.0
    assert crashes[0].component == "group.0.cluster"
    takeovers = observer.recorder.select(name="takeover")
    assert len(takeovers) == 1
    assert takeovers[0].ts_us == 150.0
    assert takeovers[0].end_us == 400.0
    assert group.stats.downtime_us == 250.0
    member_events = observer.recorder.select(name="quorum.member.crash")
    assert [e.attrs["member"] for e in member_events] == [0, 1]


def test_write_latency_is_the_wth_smallest_ack():
    group = make_group(n=3, r=2, w=2, link_rtt_us=100.0, rtt_spread=0.0,
                       byte_us=0.0)
    group.write(0, b"x")
    # Coordinator acks locally at 0, remotes at the flat RTT; the 2nd
    # smallest ack time is one remote round trip.
    assert group.write_latencies == [100.0]
