"""Replica stores, sibling merging, and the Merkle repair comparator."""

import pytest

from repro import fastpath
from repro.errors import ConfigurationError
from repro.quorum.merkle import (
    MerkleTree,
    anti_entropy_sync,
    diff_leaves,
    differing_keys,
)
from repro.quorum.store import (
    DIGEST_BYTES,
    EMPTY_DIGEST,
    Record,
    ReplicaStore,
    Stored,
)
from repro.quorum.versions import VersionVector


def record(value, vv_pairs, ts=1.0, writer=0):
    return Record(
        value=value, vv=VersionVector(vv_pairs), ts_us=ts, writer=writer
    )


# -- records and sibling sets -------------------------------------------------


def test_record_encoding_carries_version_and_value():
    rec = record(b"hello", [(0, 2)], ts=3.5, writer=1)
    encoded = rec.encode()
    assert encoded.startswith(b"0:2|3.500000|1|")
    assert encoded.endswith(b"hello")
    assert rec.payload_bytes == len(encoded)


def test_stored_orders_siblings_by_lww_key():
    older = record(b"a", [(0, 1)], ts=1.0)
    newer = record(b"b", [(1, 1)], ts=2.0, writer=1)
    stored = Stored((newer, older))
    assert stored.siblings == (older, newer)
    assert stored.winner is newer
    assert stored.vv.counters == ((0, 1), (1, 1))


def test_merge_drops_dominated_siblings():
    base = record(b"old", [(0, 1)], ts=1.0)
    successor = record(b"new", [(0, 2)], ts=2.0)
    merged = Stored((base,)).merge(Stored((successor,)))
    assert merged.siblings == (successor,)


def test_merge_keeps_concurrent_siblings_and_is_commutative():
    left = record(b"left", [(0, 1)], ts=1.0, writer=0)
    right = record(b"right", [(1, 1)], ts=1.0, writer=1)
    ab = Stored((left,)).merge(Stored((right,)))
    ba = Stored((right,)).merge(Stored((left,)))
    assert ab == ba
    assert len(ab.siblings) == 2
    # Idempotent: merging again changes nothing.
    assert ab.merge(ab) == ab


def test_store_apply_reports_state_changes():
    store = ReplicaStore(8)
    rec = record(b"v", [(0, 1)])
    assert store.apply(3, rec) is True
    assert store.apply(3, rec) is False  # same record: no change
    assert store.keys_stored == 1
    assert store.get(3).winner == rec
    with pytest.raises(ConfigurationError):
        store.get(8)


def test_key_digest_is_empty_for_absent_and_cell_width_for_present():
    store = ReplicaStore(4)
    assert store.key_digest(0) == EMPTY_DIGEST
    store.apply(0, record(b"x", [(0, 1)]))
    digest = store.key_digest(0)
    assert digest != EMPTY_DIGEST and len(digest) == DIGEST_BYTES
    assert store.leaf_bytes(0, 4) == digest + EMPTY_DIGEST * 3


# -- Merkle trees -------------------------------------------------------------


def test_identical_stores_have_identical_roots():
    a, b = ReplicaStore(32), ReplicaStore(32)
    for key in (0, 9, 31):
        rec = record(b"same", [(0, 1)], ts=float(key))
        a.apply(key, rec)
        b.apply(key, rec)
    ta, tb = MerkleTree(a, 8), MerkleTree(b, 8)
    assert ta.root == tb.root
    leaves, compared = diff_leaves(ta, tb)
    assert leaves == []
    assert compared == 1  # one root compare settles it


def test_diff_leaves_localizes_the_divergent_leaf():
    a, b = ReplicaStore(32), ReplicaStore(32)
    a.apply(17, record(b"only-a", [(0, 1)]))
    leaves, compared = diff_leaves(MerkleTree(a, 8), MerkleTree(b, 8))
    assert leaves == [17 // 8]
    # Pruning means far fewer compares than leaves.
    assert compared < MerkleTree(a, 8).nodes


def test_trees_of_different_geometry_refuse_to_diff():
    a, b = ReplicaStore(32), ReplicaStore(16)
    with pytest.raises(ConfigurationError):
        diff_leaves(MerkleTree(a, 8), MerkleTree(b, 8))


def test_differing_keys_is_exact():
    a, b = ReplicaStore(64), ReplicaStore(64)
    shared = record(b"shared", [(0, 1)])
    for key in range(0, 64, 3):
        a.apply(key, shared)
        b.apply(key, shared)
    a.apply(5, record(b"a-only", [(0, 1)]))
    b.apply(41, record(b"b-only", [(1, 1)]))
    b.apply(42, record(b"b-only-2", [(1, 1)]))
    keys, _compared = differing_keys(a, b, leaf_span=8)
    assert keys == [5, 41, 42]


@pytest.mark.parametrize("fast", [True, False])
def test_differing_keys_identical_across_fastpath(fast, monkeypatch):
    monkeypatch.setenv("REPRO_FASTPATH", "1" if fast else "0")
    fastpath.set_enabled(fast)
    try:
        a, b = ReplicaStore(40), ReplicaStore(40)
        for key in (2, 13, 27, 39):
            a.apply(key, record(b"diverged", [(0, 1)], ts=float(key)))
        assert differing_keys(a, b, 8)[0] == [2, 13, 27, 39]
    finally:
        fastpath.set_enabled(True)


# -- anti-entropy -------------------------------------------------------------


def test_one_sync_pass_converges_two_replicas():
    a, b = ReplicaStore(32), ReplicaStore(32)
    a.apply(1, record(b"from-a", [(0, 1)], ts=1.0))
    b.apply(1, record(b"from-b", [(1, 1)], ts=2.0, writer=1))
    b.apply(20, record(b"b-only", [(1, 2)], ts=3.0, writer=1))
    stats = anti_entropy_sync(a, b, 8)
    assert stats.keys_synced == 2
    assert stats.changed_a > 0 and stats.changed_b > 0
    assert stats.bytes_transferred > 0
    assert a.canonical_bytes() == b.canonical_bytes()
    # Key 1 kept both concurrent writes as siblings on both sides.
    assert len(a.get(1).siblings) == 2
    # A second pass has nothing to move.
    again = anti_entropy_sync(a, b, 8)
    assert again.keys_synced == 0
    assert again.digests_compared == 1


# -- the repair hot path stays zero-copy --------------------------------------


def test_digest_view_matches_leaf_bytes_and_is_readonly():
    store = ReplicaStore(12)
    for key in (0, 3, 7):
        store.apply(key, record(bytes([key]), [(0, key + 1)]))
    view = store.digest_view()
    assert view.readonly
    before = bytes(view)
    assert before == store.leaf_bytes(0, store.num_keys)
    # Writes after a view dirty the cells; the next view sees them.
    store.apply(5, record(b"late", [(1, 1)]))
    refreshed = bytes(store.digest_view())
    assert refreshed != before
    assert refreshed == store.leaf_bytes(0, store.num_keys)


def test_repair_hot_path_makes_no_intermediate_bytes(monkeypatch):
    """The sync pass must run entirely on hoisted digest views:
    tree builds and leaf diffs slice one view per store, and nothing
    on the path materializes per-leaf ``bytes`` through
    ``leaf_bytes``/``read``. Regression guard for the view hoist."""
    a = ReplicaStore(64)
    b = ReplicaStore(64)
    for key in range(0, 64, 3):
        a.apply(key, record(b"a" * 8, [(0, key + 1)], ts=1.0))
    for key in range(0, 64, 5):
        b.apply(key, record(b"b" * 8, [(1, key + 1)], ts=2.0, writer=1))

    def boom(self, *args, **kwargs):
        raise AssertionError(
            "repair hot path materialized intermediate bytes"
        )

    monkeypatch.setattr(ReplicaStore, "leaf_bytes", boom)
    monkeypatch.setattr(type(a._digests), "read", boom)
    keys, compared = differing_keys(a, b, leaf_span=4)
    assert keys and compared
    stats = anti_entropy_sync(a, b, leaf_span=4)
    assert stats.keys_synced == len(keys)
    assert a.canonical_bytes() == b.canonical_bytes()
