"""A leaderless key-value group: 3 replicas, R/W quorums, self-healing.

Runs one strict (N=3, R=2, W=2) quorum group next to a sloppy twin,
writes a handful of keys, crashes a replica, and shows the three
behaviors that distinguish the leaderless architecture from the
paper's primary-backup pairs: the strict group keeps serving reads
that are guaranteed fresh (R+W > N), the sloppy group keeps accepting
writes by parking hints for the crashed member, and when the member
returns, hinted handoff plus a Merkle anti-entropy pass converge every
replica back to byte-identical state — no takeover, no restore window.

Run:  python examples/quorum_kv.py
      python examples/quorum_kv.py --trace quorum.jsonl

With ``--trace`` the run is recorded as a JSONL trace;
``python -m repro.obs.report quorum.jsonl --audit`` replays it against
the auditor's quorum-intersection and vv-monotonicity rules.
"""

import argparse

from repro.obs import NULL_OBSERVER, Observer, write_jsonl
from repro.quorum import QuorumGroup
from repro.sim.engine import Simulator

KEYS = 16
CRASHED = 2


def show(title, group):
    print(f"\n{title}")
    print(f"  {group!r}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a JSONL trace of the run at PATH")
    args = parser.parse_args(argv)
    observer = Observer() if args.trace else NULL_OBSERVER

    sim = Simulator(observer=observer)
    strict = QuorumGroup(
        group_id=0, num_replicas=3, read_quorum=2, write_quorum=2,
        num_keys=KEYS, sim=sim, observer=observer.scoped("group.0"),
    )
    sloppy = QuorumGroup(
        group_id=1, num_replicas=3, read_quorum=1, write_quorum=2,
        num_keys=KEYS, sim=sim, sloppy=True,
        observer=observer.scoped("group.1"),
    )

    for key in range(KEYS):
        strict.write(key, b"k%d=v1" % key)
        sloppy.write(key, b"k%d=v1" % key)
    show("all replicas up: both groups replicate to all three members",
         strict)
    print(f"  strict read of key 5: {strict.value_of(5).decode()}"
          f" (merged from R=2 replicas)")

    strict.crash_member(CRASHED)
    sloppy.crash_member(CRASHED)
    show(f"replica {CRASHED} crashed: quorums shrink, service continues",
         strict)
    strict.write(5, b"k5=v2")
    sloppy.write(5, b"k5=v2")
    print(f"  strict read after the crash: {strict.value_of(5).decode()}"
          f" — R+W > N guarantees this is the latest write")
    print(f"  sloppy group parked {sloppy.hints_pending} hints for the "
          f"crashed member")

    strict.recover_member(CRASHED)
    sloppy.recover_member(CRASHED)
    show(f"replica {CRASHED} back: handoff delivers, anti-entropy repairs",
         strict)
    print(f"  sloppy hints delivered: {sloppy.stats.hints_delivered} "
          f"({sloppy.stats.handoff_bytes} bytes)")
    synced = strict.repair_pass()
    print(f"  strict anti-entropy pass exchanged {synced} keys "
          f"({strict.stats.repair_bytes} bytes, "
          f"{strict.stats.repair_digests} digests compared)")
    assert strict.replicas_converged() and sloppy.replicas_converged()
    print("  all replicas byte-identical in both groups")
    print(f"\ndowntime: strict {strict.stats.downtime_us:.0f} us, "
          f"sloppy {sloppy.stats.downtime_us:.0f} us "
          f"(a primary-backup pair would have bought a takeover window)")

    if args.trace:
        write_jsonl(args.trace, observer.recorder.events,
                    metrics=observer.registry)
        print(f"\ntrace written to {args.trace} — audit it with:\n"
              f"  python -m repro.obs.report {args.trace} --audit")


if __name__ == "__main__":
    main()
