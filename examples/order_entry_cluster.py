"""Order-Entry on every replication design, side by side.

Runs the paper's Order-Entry benchmark (TPC-C update transactions)
against all four passive-backup versions and the active backup,
reporting estimated throughput on the paper's hardware, traffic
breakdowns, and packet-size distributions — a compact rerun of
Tables 4-7 on one workload.

Run:  python examples/order_entry_cluster.py
"""

from repro.experiments.common import ExperimentContext, ExperimentSettings
from repro.perf.report import ReportTable
from repro.vista.factory import ENGINE_VERSIONS

MB = 1024 * 1024


def main() -> None:
    ctx = ExperimentContext(
        ExperimentSettings(transactions=600, warmup=50,
                           allocated_db_bytes=4 * MB)
    )
    estimator = ctx.estimator()
    workload = "order-entry"

    table = ReportTable(
        "Order-Entry: every replication design (estimated on the "
        "paper's AlphaServer + Memory Channel II)",
        ["design", "txns/sec", "bytes/txn", "mean packet", "meta share"],
    )
    for version in ENGINE_VERSIONS:
        result = ctx.passive_result(version, workload)
        report = estimator.passive(result)
        per_txn = result.traffic_per_txn()
        table.add_row(
            f"passive {ENGINE_VERSIONS[version].TITLE}",
            report.tps,
            per_txn["total"],
            f"{result.packet_trace.mean_packet_bytes():.1f} B",
            f"{per_txn.get('meta', 0) / per_txn['total']:.0%}",
        )
    result = ctx.active_result(workload)
    report = estimator.active(result)
    per_txn = result.traffic_per_txn()
    table.add_row(
        "active (redo log)",
        report.tps,
        per_txn["total"],
        f"{result.packet_trace.mean_packet_bytes():.1f} B",
        f"{per_txn.get('meta', 0) / per_txn['total']:.0%}",
    )
    table.add_note("ordering matches the paper: v0 < v1 < v2 < v3 < active")
    print(table.render())

    print()
    breakdown = estimator.model.breakdown(ctx.passive_result("v3", workload))
    print("where a passive-V3 transaction spends its time (us):")
    for component, micros in breakdown.cpu.items():
        print(f"  cpu/{component:<12} {micros:6.2f}")
    print(f"  cache stalls     {breakdown.cache_stall_us:6.2f}")
    print(f"  io-space stores  {breakdown.io_issue_us:6.2f}")
    print(f"  SAN link time    {breakdown.link_time_us:6.2f} (overlapped)")


if __name__ == "__main__":
    main()
