"""Quickstart: the RVM transaction API on recoverable memory.

Creates a Version 3 (improved-log) engine over simulated Rio memory,
runs transactions, demonstrates abort and crash recovery, then wires
the same engine version into a primary-backup pair.

Run:  python examples/quickstart.py
"""

from repro.memory.rio import RioMemory
from repro.replication import ActiveReplicatedSystem
from repro.vista import EngineConfig, create_engine

KB = 1024


def standalone_demo() -> None:
    print("== standalone engine ==")
    config = EngineConfig(db_bytes=64 * KB, log_bytes=32 * KB)
    rio = RioMemory("server-1")
    engine = create_engine("v3", rio, config)

    # A committed transaction: declare ranges, write in place, commit.
    engine.begin_transaction()
    engine.set_range(0, 16)
    engine.write(0, b"hello, vista!   ")
    engine.commit_transaction()
    print("after commit:   ", engine.read(0, 16))

    # An aborted transaction rolls back from the inline undo log.
    engine.begin_transaction()
    engine.set_range(0, 16)
    engine.write(0, b"scribble scribbl")
    engine.abort_transaction()
    print("after abort:    ", engine.read(0, 16))

    # A crash mid-transaction: Rio keeps the bytes safe; recovery
    # rolls the half-done transaction back.
    engine.begin_transaction()
    engine.set_range(0, 16)
    engine.write(0, b"crash incoming!!")
    rio.crash()
    rio.reboot()
    recovered = create_engine("v3", rio, config, fresh=False)
    recovered.recover()
    print("after recovery: ", recovered.read(0, 16))


def replicated_demo() -> None:
    print("\n== primary-backup (active) ==")
    config = EngineConfig(db_bytes=64 * KB, log_bytes=32 * KB)
    system = ActiveReplicatedSystem(config)
    system.sync_initial()

    for index in range(5):
        system.begin_transaction()
        system.set_range(index * 32, 16)
        system.write(index * 32, f"transaction #{index:3}".encode())
        system.commit_transaction()

    # One uncommitted transaction in flight when the primary dies.
    system.begin_transaction()
    system.set_range(0, 16)
    system.write(0, b"never committed!")
    system.fail_primary()

    backup = system.failover()
    print("backup txn #0:  ", backup.read(0, 16))
    print("backup txn #4:  ", backup.read(4 * 32, 16))
    print("redo traffic:   ", system.traffic_bytes_by_category, "bytes")


if __name__ == "__main__":
    standalone_demo()
    replicated_demo()
