"""A replicated bank: Debit-Credit with crash detection and takeover.

Runs the paper's Debit-Credit benchmark (TPC-B variant) against an
active-backup pair, crashes the primary mid-stream, detects the
failure with a heartbeat monitor on the discrete-event simulator,
fails over, verifies every balance against a shadow model, and then
keeps serving on the new primary.

Run:  python examples/bank_failover.py
"""

from repro.cluster.membership import HeartbeatMonitor, Membership
from repro.cluster.node import Node
from repro.replication import ActiveReplicatedSystem
from repro.sim.engine import Simulator
from repro.vista import EngineConfig
from repro.workloads import DebitCreditWorkload

MB = 1024 * 1024


def main() -> None:
    config = EngineConfig(db_bytes=4 * MB, log_bytes=512 * KB)
    system = ActiveReplicatedSystem(config)
    workload = DebitCreditWorkload(config.db_bytes, seed=2024)
    workload.setup(system)
    system.sync_initial()

    print(f"bank: {workload.accounts.records:,} accounts, "
          f"{workload.tellers.records} tellers, "
          f"{workload.branches.records} branches")

    for _ in range(500):
        workload.run_transaction(system)
    print(f"processed {workload.transactions_run} transactions on the primary")
    print(f"redo stream: {system.total_bytes_sent:,} bytes, "
          f"mean packet "
          f"{system.primary_interface.trace.mean_packet_bytes():.1f} B")

    # Wire a heartbeat monitor (the crash-detection machinery the paper
    # delegates to the cluster service) to the failover path.
    sim = Simulator()
    primary_node = Node("primary")
    view = Membership(members=["primary", "backup"], primary="primary")
    outcome = {}

    def on_failure():
        view.fail("primary")
        outcome["engine"] = system.failover()
        outcome["detected_at"] = sim.now

    HeartbeatMonitor(sim, primary_node, on_failure,
                     interval_us=100.0, timeout_us=500.0).start()

    def crash():
        print("\n!! primary crashes at t=2000us")
        primary_node.crash()
        system.fail_primary()

    sim.schedule_at(2_000.0, crash)
    sim.run(until=10_000.0)

    print(f"failure detected at t={outcome['detected_at']:.0f}us "
          f"({outcome['detected_at'] - 2_000:.0f}us after the crash)")
    print(f"membership view {view.view_id}: primary is now {view.primary!r}")

    backup = outcome["engine"]
    workload.verify(backup)
    workload.consistency_check(backup)
    print("backup verified: every balance matches the shadow model,")
    print("account/teller/branch sums agree (TPC-B invariant)")

    for _ in range(250):
        workload.run_transaction(backup)
    workload.verify(backup)
    print(f"service continued: {workload.transactions_run} total "
          f"transactions, still consistent")


KB = 1024

if __name__ == "__main__":
    main()
