"""SMP-primary scaling: the Section 8 experiment as a script.

Runs one independent transaction stream per simulated CPU (disjoint
data, 10 MB database per stream) for each replication design and shows
how aggregate throughput scales as streams share the single Memory
Channel link — the paper's Figures 2 and 3.

Run:  python examples/smp_scaling.py [debit-credit|order-entry]
"""

import sys

from repro.experiments import figures2_3
from repro.experiments.common import ExperimentContext, ExperimentSettings

MB = 1024 * 1024


def main() -> None:
    workloads = sys.argv[1:] or ["debit-credit", "order-entry"]
    ctx = ExperimentContext(
        ExperimentSettings(transactions=600, warmup=50,
                           allocated_db_bytes=4 * MB)
    )
    result = figures2_3.run(ctx)
    result.check()
    for workload in workloads:
        print(result.figure(workload))
        print()
        singles = result.singles[workload]
        active_link = singles["active"].link_us
        passive_link = singles["passive-v3"].link_us
        print(
            f"{workload}: one transaction occupies the link for "
            f"{active_link:.2f}us (active) vs {passive_link:.2f}us "
            f"(passive v3) — which is why the active curve keeps "
            f"climbing while passive logging saturates.\n"
        )


if __name__ == "__main__":
    main()
