"""Recovery-time comparison: what failover actually costs per design.

Uses :class:`~repro.cluster.cluster.ReplicatedCluster` — nodes,
heartbeats and failover wired together on the discrete-event
simulator — to crash a primary under load for every replication design
and report detection latency, bytes restored, and total downtime. The
Section 5.1 tradeoff (mirror versions restore the *whole database*)
shows up directly in the measurements, as does the availability gap to
standalone Vista.

Run:  python examples/recovery_comparison.py
"""

from repro.cluster.cluster import ReplicatedCluster
from repro.experiments import extension_recovery
from repro.perf.report import ReportTable
from repro.vista import EngineConfig
from repro.workloads import DebitCreditWorkload

MB = 1024 * 1024
CONFIG = EngineConfig(db_bytes=8 * MB, log_bytes=1 * MB)

DESIGNS = (
    ("active", "v3"),
    ("passive", "v3"),
    ("passive", "v2"),
    ("passive", "v1"),
    ("passive", "v0"),
)


def main() -> None:
    table = ReportTable(
        "Measured failover under load (8 MB database, 500 us heartbeat "
        "timeout)",
        ["design", "detection", "bytes restored", "downtime"],
    )
    for mode, version in DESIGNS:
        cluster = ReplicatedCluster(
            mode=mode, version=version, config=CONFIG,
            heartbeat_interval_us=100.0, heartbeat_timeout_us=500.0,
        )
        workload = DebitCreditWorkload(CONFIG.db_bytes, seed=99)
        workload.setup(cluster.serving)
        cluster.run_transactions(workload, 100)
        cluster.schedule_primary_crash(at_us=5_000.0)
        cluster.run_until(1_000_000.0)
        report = cluster.takeover
        workload.verify(cluster.serving)  # takeover preserved every commit
        label = f"{mode} {version}" if mode == "passive" else "active"
        table.add_row(
            label,
            f"{report.detection_us:.0f} us",
            report.bytes_restored,
            f"{report.downtime_us / 1000:.2f} ms",
        )
    table.add_note("every takeover verified against the workload's "
                   "shadow model before reporting")
    print(table.render())

    print()
    result = extension_recovery.run(db_bytes=8 * MB)
    result.check()
    print(result.table().render())


if __name__ == "__main__":
    main()
