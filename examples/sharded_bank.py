"""A sharded bank: 4 Debit-Credit shards surviving a primary crash.

Partitions the bank by branch across four primary-backup pairs on one
discrete-event simulator, serves a steady client load through the
shard router, crashes one shard's primary mid-run, and shows what the
paper's availability story looks like at cluster scale: the failing
shard's backup takes over within a bounded window, the other three
shards never miss a transaction, and the router's retries deliver the
delayed requests once service returns — nothing is lost.

Run:  python examples/sharded_bank.py
      python examples/sharded_bank.py --trace bank.jsonl
      python examples/sharded_bank.py --chrome-trace bank.chrome.json
      python examples/sharded_bank.py --metrics-json bank.metrics.json

With ``--trace`` the whole run is recorded as a JSONL trace that
``python -m repro.obs.report bank.jsonl`` renders as a failover
timeline; ``--chrome-trace`` writes the same events in Chrome
``trace_event`` format for chrome://tracing or https://ui.perfetto.dev;
``--metrics-json`` dumps the run's metrics snapshot (counters, gauges,
histograms) as one JSON object.
"""

import argparse
import json

from repro.obs import NULL_OBSERVER, Observer, write_chrome_trace, write_jsonl
from repro.shard import Router, ShardedCluster, ShardedWorkload
from repro.vista import EngineConfig

MB = 1024 * 1024
KB = 1024

NUM_SHARDS = 4
CRASH_AT_US = 5_000.0
CRASHED_SHARD = 1


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a JSONL trace of the run at PATH")
    parser.add_argument("--chrome-trace", metavar="PATH", default=None,
                        help="record a Chrome trace_event JSON at PATH")
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="dump the run's metrics snapshot as JSON at PATH")
    args = parser.parse_args(argv)
    tracing = args.trace or args.chrome_trace or args.metrics_json
    observer = Observer() if tracing else NULL_OBSERVER

    config = EngineConfig(db_bytes=4 * MB, log_bytes=512 * KB)
    cluster = ShardedCluster(
        NUM_SHARDS,
        mode="active",
        config=config,
        heartbeat_interval_us=100.0,
        heartbeat_timeout_us=500.0,
        observer=observer,
    )
    workload = ShardedWorkload(
        "debit-credit", NUM_SHARDS, config.db_bytes, seed=2026
    )
    cluster.setup(workload)
    router = Router(cluster, workload, observer=observer)

    total_accounts = sum(w.accounts.records for w in workload.shards)
    print(f"bank: {total_accounts:,} accounts over {NUM_SHARDS} shards, "
          f"{workload.partitioner.total_keys} branch keys")
    for entry in cluster.shard_map.entries:
        keys = workload.partitioner.ranges[entry.shard_id]
        print(f"  shard {entry.shard_id}: branches "
              f"[{keys.start}, {keys.stop}) -> {entry.primary} "
              f"(backup {entry.backup})")

    # A steady client load: 2 transactions per shard every 250 us.
    for tick in range(80):
        at_us = tick * 250.0
        for shard_id in range(NUM_SHARDS):
            key = workload.partitioner.ranges[shard_id].start
            router.submit(key=key, at_us=at_us)
            router.submit(key=key, at_us=at_us)

    print(f"\n!! shard {CRASHED_SHARD} primary crashes at "
          f"t={CRASH_AT_US:.0f}us")
    cluster.schedule_primary_crash(CRASHED_SHARD, at_us=CRASH_AT_US)
    cluster.run_until(40_000.0)

    report = cluster.takeovers[CRASHED_SHARD]
    entry = cluster.shard_map.entry(CRASHED_SHARD)
    print(f"detected after {report.detection_us:.0f}us, "
          f"downtime {report.downtime_us:.0f}us (bounded), "
          f"new primary {entry.primary!r} at epoch {entry.epoch}")
    print(f"cluster view {cluster.membership.view_id}: "
          f"{len(cluster.membership.members)} of {2 * NUM_SHARDS} nodes up")
    print(router)

    assert router.dropped == 0 and router.in_flight == 0
    assert report.downtime_us < 1_500.0  # detection + (tiny) redo drain

    for shard_id in range(NUM_SHARDS):
        workload.verify_shard(shard_id, cluster.serving(shard_id))
    print(f"\nall {NUM_SHARDS} shards verified against their shadow "
          f"models: {workload.transactions_run} transactions, none lost, "
          f"3/4 of the cluster never blinked")

    if args.trace:
        write_jsonl(args.trace, observer.recorder.events,
                    metrics=observer.registry)
        print(f"\ntrace written to {args.trace} "
              f"({len(observer.recorder.events)} events) — render it with "
              f"'python -m repro.obs.report {args.trace}'")
    if args.chrome_trace:
        write_chrome_trace(args.chrome_trace, observer.recorder.events)
        print(f"chrome trace written to {args.chrome_trace} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.metrics_json:
        with open(args.metrics_json, "w") as handle:
            json.dump(observer.registry.snapshot(), handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics snapshot written to {args.metrics_json} "
              f"({len(observer.registry)} metrics)")


if __name__ == "__main__":
    main()
