"""A simulated cluster node.

A node bundles the pieces one AlphaServer contributes to the cluster:
Rio reliable memory, a Memory Channel interface, and (optionally)
transaction engines. Crashing a node takes all of them down together;
rebooting brings back the Rio contents, modelling Vista's
"safe but unavailable until recovery" behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.specs import (
    ALPHASERVER_4100,
    MEMORY_CHANNEL_II,
    MachineSpec,
    SanSpec,
)
from repro.memory.rio import RioMemory
from repro.san.memory_channel import MemoryChannelInterface


class Node:
    """One commodity server in the cluster."""

    def __init__(
        self,
        name: str,
        machine: MachineSpec = ALPHASERVER_4100,
        san: SanSpec = MEMORY_CHANNEL_II,
    ):
        self.name = name
        self.machine = machine
        self.rio = RioMemory(name)
        self.interface = MemoryChannelInterface(
            name,
            san,
            write_buffers=machine.write_buffers,
            write_buffer_bytes=machine.write_buffer_bytes,
        )
        self.crashed = False
        self.crash_count = 0
        self.last_heartbeat_us: Optional[float] = None

    def crash(self) -> None:
        """Fail-stop: Rio preserves memory; everything else stops."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        self.rio.crash()
        self.interface.crash()

    def reboot(self) -> None:
        """Warm reboot: Rio contents come back; the node rejoins."""
        self.crashed = False
        self.rio.reboot()
        self.interface.reboot()

    def heartbeat(self, now_us: float) -> None:
        """Record a heartbeat emission (ignored while crashed)."""
        if not self.crashed:
            self.last_heartbeat_us = now_us

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"Node({self.name!r}, {state})"
