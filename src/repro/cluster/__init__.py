"""Cluster runtime: nodes, fault injection, failure detection.

The paper scopes out crash detection and group-view management,
pointing at Microsoft Cluster Service for well-known solutions
(Section 1). This package provides the minimum the examples and
fault-injection tests need — simulated nodes owning Rio memory and a
Memory Channel interface, a fault injector that crashes a node at a
chosen transaction or simulated time, a heartbeat failure detector
run on the discrete-event kernel, and an N-member membership view
with deterministic seniority-ordered promotion — implemented here as
an *extension* beyond the paper. The :mod:`repro.shard` package
stacks N replicated pairs from this package behind one shard map.
"""

from repro.cluster.node import Node
from repro.cluster.faults import CrashPlan, FaultInjector
from repro.cluster.membership import HeartbeatMonitor, Membership

__all__ = [
    "Node",
    "CrashPlan",
    "FaultInjector",
    "HeartbeatMonitor",
    "Membership",
]
