"""A two-node replicated cluster, wired end to end.

:class:`ReplicatedCluster` bundles what the examples and failover
experiments otherwise assemble by hand: a primary and a backup
:class:`~repro.cluster.node.Node`, a replicated transaction system
(passive, any version, or active), a heartbeat monitor on the
discrete-event simulator, and the takeover path. Crash the primary at
a simulated time and the cluster detects it, runs failover, and
reports the measured downtime — the availability story the paper's
title promises, made executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.cluster.membership import HeartbeatMonitor, Membership
from repro.cluster.node import Node
from repro.errors import ConfigurationError, FailoverError
from repro.obs.observer import resolve_observer
from repro.obs.recovery import (
    PHASE_CATCHUP,
    PHASE_DETECT,
    PHASE_PROMOTE,
    PHASE_VIEW,
    RecoverySpanRecorder,
)
from repro.obs.spans import PhaseCostModel
from repro.replication.active import ActiveReplicatedSystem
from repro.replication.passive import PassiveReplicatedSystem
from repro.sim.engine import Simulator
from repro.sim.events import SHAPE_SHARED, default_event_queue
from repro.vista.api import EngineConfig, TransactionEngine


@dataclass
class TakeoverReport:
    """What a failover cost, in simulated time."""

    crash_at_us: float
    detected_at_us: float
    service_restored_at_us: float
    bytes_restored: int

    @property
    def detection_us(self) -> float:
        return self.detected_at_us - self.crash_at_us

    @property
    def downtime_us(self) -> float:
        return self.service_restored_at_us - self.crash_at_us


class ReplicatedCluster:
    """Primary + backup + failure detection + failover, in one object.

    Args:
        mode: ``"passive"`` or ``"active"``.
        version: engine version for passive mode (ignored for active,
            which always runs Version 3 on the primary).
        restore_bytes_per_us: backup-side memory copy bandwidth used to
            convert failover work (bytes restored) into simulated time;
            ~300 bytes/us matches a late-90s AlphaServer memcpy.
        sim: a simulator to share with other pairs (a
            :class:`~repro.shard.cluster.ShardedCluster` runs every
            pair's heartbeats and takeovers on one clock); by default
            the pair owns a private one.
        primary_name / backup_name: node names, overridable so several
            pairs can coexist on one simulator without name clashes.
        on_failover: called with this cluster after a takeover
            completes (the shard map uses it to bump epochs).
    """

    def __init__(
        self,
        mode: str = "active",
        version: str = "v3",
        config: Optional[EngineConfig] = None,
        heartbeat_interval_us: float = 1_000.0,
        heartbeat_timeout_us: float = 5_000.0,
        restore_bytes_per_us: float = 300.0,
        sim: Optional[Simulator] = None,
        primary_name: str = "primary",
        backup_name: str = "backup",
        on_failover: Optional[Callable[["ReplicatedCluster"], None]] = None,
        observer=None,
    ):
        if mode not in ("passive", "active"):
            raise ConfigurationError(f"unknown cluster mode {mode!r}")
        self.mode = mode
        self.version = version
        self.config = config if config is not None else EngineConfig()
        self.restore_bytes_per_us = restore_bytes_per_us
        self.on_failover = on_failover
        self.observer = resolve_observer(observer)

        # Standalone pairs are heartbeat/timeout driven: shared-shape
        # timestamps, so the fast path picks the wheel queue.
        self.sim = (
            sim
            if sim is not None
            else Simulator(
                observer=self.observer, queue=default_event_queue(SHAPE_SHARED)
            )
        )
        self.observer.bind_clock(lambda: self.sim.now)
        self.primary_node = Node(primary_name)
        self.backup_node = Node(backup_name)
        self.membership = Membership(
            members=[primary_name, backup_name], primary=primary_name,
            observer=self.observer,
        )
        if mode == "passive":
            self.system: Union[
                PassiveReplicatedSystem, ActiveReplicatedSystem
            ] = PassiveReplicatedSystem(
                version, self.config,
                primary_name=primary_name, backup_name=backup_name,
                observer=self.observer,
            )
        else:
            self.system = ActiveReplicatedSystem(
                self.config,
                primary_name=primary_name, backup_name=backup_name,
                observer=self.observer,
            )
        self.system.sync_initial()

        self.takeover: Optional[TakeoverReport] = None
        #: Causal handle of the last emitted recovery span, consumed by
        #: the router's first post-failover completion (resume link).
        self.last_recovery_link = None
        self._crash_at_us: Optional[float] = None
        self._serving = self.system
        self.monitor = HeartbeatMonitor(
            self.sim,
            self.primary_node,
            self._on_primary_failure,
            interval_us=heartbeat_interval_us,
            timeout_us=heartbeat_timeout_us,
            observer=self.observer,
        )
        self.monitor.start()

    # -- serving ------------------------------------------------------------

    @property
    def serving(self):
        """Whatever currently serves transactions (the system before a
        failover, the promoted backup engine after)."""
        return self._serving

    @property
    def is_available(self) -> bool:
        """Whether the pair can serve a request *now* (simulated time).

        False between the primary's crash and the end of the promoted
        backup's restore work — the downtime window a router must ride
        out with retries.
        """
        if self._crash_at_us is None:
            return True
        if self.takeover is None:
            return False
        return self.sim.now >= self.takeover.service_restored_at_us

    def run_transactions(self, workload, count: int) -> None:
        """Drive ``count`` workload transactions at the current server."""
        for _ in range(count):
            workload.run_transaction(self._serving)

    # -- failure ---------------------------------------------------------------

    def schedule_primary_crash(self, at_us: float) -> None:
        """Crash the primary at simulated time ``at_us``."""
        self.sim.schedule_at(at_us, self._crash_primary, name="crash")

    def _crash_primary(self) -> None:
        self._crash_at_us = self.sim.now
        self.primary_node.crash()
        self.system.fail_primary()
        if self.observer.enabled:
            self.observer.count("cluster.crashes")
            self.observer.event(
                "cluster", "fault.crash", node=self.primary_node.name
            )

    def _on_primary_failure(self) -> None:
        if self._crash_at_us is None:
            raise FailoverError("failure detected without a crash (bug)")
        detected = self.sim.now
        self.membership.fail(self.primary_node.name)
        # Active failover drains the redo ring inside failover(); bracket
        # the applier counters so the drain cost can be priced for the
        # recovery span (pure reads — no model state changes).
        applier = getattr(self.system, "applier", None)
        drain_before = (
            (applier.records_applied, applier.bytes_applied)
            if self.observer.enabled and applier is not None
            else None
        )
        engine = self.system.failover()
        restored = engine.counters.rollback_bytes
        takeover_us = restored / self.restore_bytes_per_us
        self.takeover = TakeoverReport(
            crash_at_us=self._crash_at_us,
            detected_at_us=detected,
            service_restored_at_us=detected + takeover_us,
            bytes_restored=restored,
        )
        self._serving = engine
        if self.observer.enabled:
            self.observer.count("cluster.takeovers")
            self.observer.event(
                "cluster", "failure.detected",
                node=self.primary_node.name,
                detection_us=detected - self._crash_at_us,
            )
            self.observer.span(
                "cluster", "takeover",
                start_us=detected,
                end_us=self.takeover.service_restored_at_us,
                bytes_restored=restored,
                new_primary=self.backup_node.name,
            )
            # The promoted engine's own tallies join the shared
            # namespace, so a report reads one registry, not two paths.
            engine.counters.snapshot_into(
                self.observer.registry,
                self.observer.metric_name("cluster.takeover.engine"),
            )
            # The causal recovery tree: children tile [crash, restored]
            # exactly. A pair's view change and promotion fire at the
            # detection instant (zero-width, skipped on emission); an
            # active pair replays the ring during detection, so its
            # catchup is zero-width too and the measured drain cost
            # rides on the root attrs instead.
            recorder = RecoverySpanRecorder(self.observer, "cluster")
            recorder.phase(
                PHASE_DETECT, self._crash_at_us, detected,
                heartbeat_interval_us=self.monitor.interval_us,
                heartbeat_timeout_us=self.monitor.timeout_us,
            )
            recorder.phase(PHASE_VIEW, detected, detected)
            recorder.phase(PHASE_PROMOTE, detected, detected)
            recorder.phase(
                PHASE_CATCHUP, detected,
                self.takeover.service_restored_at_us,
                bytes_restored=restored,
                restore_bytes_per_us=self.restore_bytes_per_us,
            )
            root_attrs = {
                "node": self.primary_node.name,
                "new_primary": self.backup_node.name,
                "mode": self.mode,
            }
            if drain_before is not None:
                drain_records = applier.records_applied - drain_before[0]
                drain_bytes = applier.bytes_applied - drain_before[1]
                root_attrs.update(
                    drain_records=drain_records,
                    drain_bytes=drain_bytes,
                    drain_cost_us=PhaseCostModel(self.system.san).apply_us(
                        drain_records, drain_bytes
                    ),
                )
            self.last_recovery_link = recorder.finish(**root_attrs)
        if self.on_failover is not None:
            self.on_failover(self)

    def run_until(self, until_us: float) -> None:
        self.sim.run(until=until_us)

    def __repr__(self) -> str:
        state = "failed-over" if self.takeover else "normal"
        return (
            f"ReplicatedCluster(mode={self.mode!r}, version={self.version!r}, "
            f"{state})"
        )
