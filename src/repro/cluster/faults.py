"""Deterministic fault injection.

A :class:`CrashPlan` names the point at which a component fails —
after the Nth committed transaction, or at a simulated time — and the
:class:`FaultInjector` fires the registered crash action when the
workload driver (or the simulator) reaches that point. Keeping the
plan declarative makes crash-recovery tests reproducible and lets the
property-based tests sweep the crash point over every position in a
transaction schedule.

Every firing is recorded in :attr:`FaultInjector.fired` as a
:class:`FiredPlan` — the plan, its repr, and the simulated time and/or
transaction count at which it went off — and, when an observer is
attached, also emitted as a ``fault.crash`` trace event so crash
points line up with takeover spans in a recorded timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs.observer import resolve_observer


@dataclass(frozen=True)
class CrashPlan:
    """When to crash.

    Exactly one of ``after_transactions`` / ``at_time_us`` is set.
    ``mid_transaction`` additionally asks the driver to crash *between*
    the writes of the following transaction rather than at its
    boundary, exercising undo recovery.
    """

    after_transactions: Optional[int] = None
    at_time_us: Optional[float] = None
    mid_transaction: bool = False

    def __post_init__(self):
        if (self.after_transactions is None) == (self.at_time_us is None):
            raise ValueError(
                "set exactly one of after_transactions / at_time_us"
            )


@dataclass(frozen=True)
class FiredPlan:
    """One plan that went off: what fired, where, and when.

    ``at_us`` is the simulated time of the firing when one was known
    (time-triggered plans always have it; transaction-triggered plans
    get it from the injector's clock or observer when either is
    attached, else None). ``at_transactions`` is the commit count for
    transaction-triggered plans.
    """

    plan: CrashPlan
    plan_repr: str
    at_us: Optional[float] = None
    at_transactions: Optional[int] = None


class FaultInjector:
    """Fires crash actions when execution reaches planned points.

    Args:
        observer: obs hook; fired plans emit ``fault.crash`` events.
        clock: optional simulated-time source used to stamp
            transaction-triggered firings (time-triggered firings are
            stamped with the notification time itself).
    """

    def __init__(self, observer=None, clock: Optional[Callable[[], float]] = None):
        self._plans: List[tuple] = []
        self._clock = clock
        self.observer = resolve_observer(observer)
        self.fired: List[FiredPlan] = []

    def schedule(self, plan: CrashPlan, action: Callable[[], None]) -> None:
        self._plans.append((plan, action))

    def on_transaction_committed(self, count: int) -> bool:
        """Notify that ``count`` transactions have committed; fires any
        matching plan. Returns True if a crash fired."""
        fired = False
        for plan, action in list(self._plans):
            if (
                plan.after_transactions is not None
                and count >= plan.after_transactions
            ):
                self._fire(plan, action, at_us=self._now(), at_transactions=count)
                fired = True
        return fired

    def on_time(self, now_us: float) -> bool:
        """Notify simulated time progress; fires any due time plan."""
        fired = False
        for plan, action in list(self._plans):
            if plan.at_time_us is not None and now_us >= plan.at_time_us:
                self._fire(plan, action, at_us=now_us)
                fired = True
        return fired

    def next_transaction_boundary(self) -> Optional[CrashPlan]:
        """The earliest pending transaction-count plan, if any."""
        plans = [
            plan
            for plan, _action in self._plans
            if plan.after_transactions is not None
        ]
        if not plans:
            return None
        return min(plans, key=lambda plan: plan.after_transactions)

    def _now(self) -> Optional[float]:
        if self._clock is not None:
            return self._clock()
        if self.observer.enabled:
            return self.observer.now
        return None

    def _fire(
        self,
        plan: CrashPlan,
        action: Callable[[], None],
        at_us: Optional[float] = None,
        at_transactions: Optional[int] = None,
    ) -> None:
        self._plans = [
            (other_plan, other_action)
            for other_plan, other_action in self._plans
            if other_plan is not plan
        ]
        self.fired.append(
            FiredPlan(
                plan=plan,
                plan_repr=repr(plan),
                at_us=at_us,
                at_transactions=at_transactions,
            )
        )
        if self.observer.enabled:
            self.observer.count("faults.fired")
            attrs = {"plan": repr(plan)}
            if at_transactions is not None:
                attrs["at_transactions"] = at_transactions
            if at_us is not None:
                self.observer.event_at(at_us, "faults", "fault.crash", **attrs)
            else:
                self.observer.event("faults", "fault.crash", **attrs)
        action()

    @property
    def pending(self) -> int:
        return len(self._plans)
