"""Deterministic fault injection.

A :class:`CrashPlan` names the point at which a component fails —
after the Nth committed transaction, or at a simulated time — and the
:class:`FaultInjector` fires the registered crash action when the
workload driver (or the simulator) reaches that point. Keeping the
plan declarative makes crash-recovery tests reproducible and lets the
property-based tests sweep the crash point over every position in a
transaction schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class CrashPlan:
    """When to crash.

    Exactly one of ``after_transactions`` / ``at_time_us`` is set.
    ``mid_transaction`` additionally asks the driver to crash *between*
    the writes of the following transaction rather than at its
    boundary, exercising undo recovery.
    """

    after_transactions: Optional[int] = None
    at_time_us: Optional[float] = None
    mid_transaction: bool = False

    def __post_init__(self):
        if (self.after_transactions is None) == (self.at_time_us is None):
            raise ValueError(
                "set exactly one of after_transactions / at_time_us"
            )


class FaultInjector:
    """Fires crash actions when execution reaches planned points."""

    def __init__(self) -> None:
        self._plans: List[tuple] = []
        self.fired: List[CrashPlan] = []

    def schedule(self, plan: CrashPlan, action: Callable[[], None]) -> None:
        self._plans.append((plan, action))

    def on_transaction_committed(self, count: int) -> bool:
        """Notify that ``count`` transactions have committed; fires any
        matching plan. Returns True if a crash fired."""
        fired = False
        for plan, action in list(self._plans):
            if (
                plan.after_transactions is not None
                and count >= plan.after_transactions
            ):
                self._fire(plan, action)
                fired = True
        return fired

    def on_time(self, now_us: float) -> bool:
        """Notify simulated time progress; fires any due time plan."""
        fired = False
        for plan, action in list(self._plans):
            if plan.at_time_us is not None and now_us >= plan.at_time_us:
                self._fire(plan, action)
                fired = True
        return fired

    def next_transaction_boundary(self) -> Optional[CrashPlan]:
        """The earliest pending transaction-count plan, if any."""
        plans = [
            plan
            for plan, _action in self._plans
            if plan.after_transactions is not None
        ]
        if not plans:
            return None
        return min(plans, key=lambda plan: plan.after_transactions)

    def _fire(self, plan: CrashPlan, action: Callable[[], None]) -> None:
        self._plans = [
            (other_plan, other_action)
            for other_plan, other_action in self._plans
            if other_plan is not plan
        ]
        self.fired.append(plan)
        action()

    @property
    def pending(self) -> int:
        return len(self._plans)
