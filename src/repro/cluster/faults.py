"""Deterministic fault injection.

A :class:`CrashPlan` names the point at which a component fails —
after the Nth committed transaction, or at a simulated time — and the
:class:`FaultInjector` fires the registered crash action when the
workload driver (or the simulator) reaches that point. Keeping the
plan declarative makes crash-recovery tests reproducible and lets the
property-based tests sweep the crash point over every position in a
transaction schedule.

Every firing is recorded in :attr:`FaultInjector.fired` as a
:class:`FiredPlan` — the plan, its repr, and the simulated time and/or
transaction count at which it went off — and, when an observer is
attached, also emitted as a ``fault.crash`` trace event so crash
points line up with takeover spans in a recorded timeline.

Network faults are declared the same way: a :class:`PartitionPlan`
cuts two sides apart at a simulated time (symmetric, or one-way for
asymmetric link loss) and optionally heals later, emitting
``fault.partition`` / ``fault.heal`` trace events. The injector stays
topology-agnostic — the scheduled actions carry the topology — so the
same plan machinery serves primary-backup pairs, sharded clusters and
quorum groups alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs.observer import resolve_observer


@dataclass(frozen=True)
class CrashPlan:
    """When to crash.

    Exactly one of ``after_transactions`` / ``at_time_us`` is set.
    ``mid_transaction`` additionally asks the driver to crash *between*
    the writes of the following transaction rather than at its
    boundary, exercising undo recovery.
    """

    after_transactions: Optional[int] = None
    at_time_us: Optional[float] = None
    mid_transaction: bool = False

    def __post_init__(self):
        if (self.after_transactions is None) == (self.at_time_us is None):
            raise ValueError(
                "set exactly one of after_transactions / at_time_us"
            )


@dataclass(frozen=True)
class PartitionPlan:
    """When to cut the network, and (optionally) when to heal it.

    A partition separates two sides of a replica group or cluster at
    ``at_time_us``; a ``symmetric`` cut blocks both directions, an
    asymmetric one models one-way link loss (A's packets to B are
    dropped while B still reaches A). When ``heal_at_us`` is set the
    injector also fires the heal action at that time. ``description``
    names the sides for the trace record; the injector itself is
    topology-agnostic — the scheduled actions carry the topology.
    """

    at_time_us: float
    heal_at_us: Optional[float] = None
    symmetric: bool = True
    description: str = ""

    def __post_init__(self):
        if self.heal_at_us is not None and self.heal_at_us < self.at_time_us:
            raise ValueError(
                f"heal at {self.heal_at_us} precedes partition "
                f"at {self.at_time_us}"
            )


@dataclass(frozen=True)
class FiredPlan:
    """One plan that went off: what fired, where, and when.

    ``at_us`` is the simulated time of the firing when one was known
    (time-triggered plans always have it; transaction-triggered plans
    get it from the injector's clock or observer when either is
    attached, else None). ``at_transactions`` is the commit count for
    transaction-triggered plans. ``plan`` is the :class:`CrashPlan` or
    :class:`PartitionPlan` (heals record the same plan twice).
    """

    plan: object
    plan_repr: str
    at_us: Optional[float] = None
    at_transactions: Optional[int] = None


class FaultInjector:
    """Fires crash actions when execution reaches planned points.

    Args:
        observer: obs hook; fired plans emit ``fault.crash`` events.
        clock: optional simulated-time source used to stamp
            transaction-triggered firings (time-triggered firings are
            stamped with the notification time itself).
    """

    def __init__(self, observer=None, clock: Optional[Callable[[], float]] = None):
        self._plans: List[tuple] = []
        # [plan, partition_action, heal_action, partition_fired, heal_fired]
        self._partitions: List[list] = []
        self._clock = clock
        self.observer = resolve_observer(observer)
        self.fired: List[FiredPlan] = []

    def schedule(self, plan: CrashPlan, action: Callable[[], None]) -> None:
        self._plans.append((plan, action))

    def schedule_partition(
        self,
        plan: PartitionPlan,
        partition_action: Callable[[], None],
        heal_action: Optional[Callable[[], None]] = None,
    ) -> None:
        """Register a partition (and optional heal) to fire on
        :meth:`on_time` notifications, like time-triggered crashes."""
        self._partitions.append([plan, partition_action, heal_action, False, False])

    def on_transaction_committed(self, count: int) -> bool:
        """Notify that ``count`` transactions have committed; fires any
        matching plan. Returns True if a crash fired."""
        fired = False
        for plan, action in list(self._plans):
            if (
                plan.after_transactions is not None
                and count >= plan.after_transactions
            ):
                self._fire(plan, action, at_us=self._now(), at_transactions=count)
                fired = True
        return fired

    def on_time(self, now_us: float) -> bool:
        """Notify simulated time progress; fires any due time plan."""
        fired = False
        for plan, action in list(self._plans):
            if plan.at_time_us is not None and now_us >= plan.at_time_us:
                self._fire(plan, action, at_us=now_us)
                fired = True
        for entry in self._partitions:
            plan, partition_action, heal_action, cut_done, heal_done = entry
            if not cut_done and now_us >= plan.at_time_us:
                entry[3] = True
                self._fire_partition(plan, partition_action, "fault.partition",
                                     at_us=now_us)
                fired = True
            if (
                entry[3]
                and not heal_done
                and plan.heal_at_us is not None
                and now_us >= plan.heal_at_us
            ):
                entry[4] = True
                self._fire_partition(plan, heal_action, "fault.heal",
                                     at_us=now_us)
                fired = True
        self._partitions = [
            entry for entry in self._partitions
            if not (entry[3] and (entry[0].heal_at_us is None or entry[4]))
        ]
        return fired

    def next_transaction_boundary(self) -> Optional[CrashPlan]:
        """The earliest pending transaction-count plan, if any."""
        plans = [
            plan
            for plan, _action in self._plans
            if plan.after_transactions is not None
        ]
        if not plans:
            return None
        return min(plans, key=lambda plan: plan.after_transactions)

    def _now(self) -> Optional[float]:
        if self._clock is not None:
            return self._clock()
        if self.observer.enabled:
            return self.observer.now
        return None

    def _fire(
        self,
        plan: CrashPlan,
        action: Callable[[], None],
        at_us: Optional[float] = None,
        at_transactions: Optional[int] = None,
    ) -> None:
        self._plans = [
            (other_plan, other_action)
            for other_plan, other_action in self._plans
            if other_plan is not plan
        ]
        self.fired.append(
            FiredPlan(
                plan=plan,
                plan_repr=repr(plan),
                at_us=at_us,
                at_transactions=at_transactions,
            )
        )
        if self.observer.enabled:
            self.observer.count("faults.fired")
            attrs = {"plan": repr(plan)}
            if at_transactions is not None:
                attrs["at_transactions"] = at_transactions
            if at_us is not None:
                self.observer.event_at(at_us, "faults", "fault.crash", **attrs)
            else:
                self.observer.event("faults", "fault.crash", **attrs)
        action()

    def _fire_partition(
        self,
        plan: PartitionPlan,
        action: Optional[Callable[[], None]],
        event_name: str,
        at_us: float,
    ) -> None:
        self.fired.append(
            FiredPlan(plan=plan, plan_repr=repr(plan), at_us=at_us)
        )
        if self.observer.enabled:
            self.observer.count("faults.fired")
            attrs = {"plan": repr(plan), "symmetric": plan.symmetric}
            if plan.description:
                attrs["sides"] = plan.description
            self.observer.event_at(at_us, "faults", event_name, **attrs)
        if action is not None:
            action()

    @property
    def pending(self) -> int:
        stages = 0
        for plan, _cut, _heal, cut_done, heal_done in self._partitions:
            if not cut_done:
                stages += 1
            if plan.heal_at_us is not None and not heal_done:
                stages += 1
        return len(self._plans) + stages
