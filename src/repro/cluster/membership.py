"""Heartbeat failure detection and a two-node membership view.

The paper defers crash detection and group-view management to
well-known cluster services (Section 1, citing the Microsoft Cluster
Service design). This module supplies a simple but honest version of
that machinery on the discrete-event kernel: the primary emits
heartbeats every ``interval_us``; the monitor on the backup declares
the primary dead once no heartbeat has arrived for ``timeout_us`` and
triggers failover. Detection latency is therefore bounded by
``timeout_us`` plus one polling period — asserted by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.cluster.node import Node
from repro.sim.engine import Simulator


@dataclass
class Membership:
    """The backup's view of who is in the cluster and who leads."""

    members: List[str]
    primary: str
    view_id: int = 0
    history: List[tuple] = field(default_factory=list)

    def fail(self, name: str) -> None:
        """Remove a member; promotes the first survivor if it led."""
        if name not in self.members:
            return
        self.members.remove(name)
        if self.primary == name:
            if not self.members:
                raise ValueError("no surviving member to promote")
            self.primary = self.members[0]
        self.view_id += 1
        self.history.append((self.view_id, tuple(self.members), self.primary))


class HeartbeatMonitor:
    """Watches a node's heartbeats on the simulator; calls
    ``on_failure`` when they stop for longer than the timeout."""

    def __init__(
        self,
        sim: Simulator,
        watched: Node,
        on_failure: Callable[[], None],
        interval_us: float = 1000.0,
        timeout_us: float = 5000.0,
    ):
        if timeout_us <= interval_us:
            raise ValueError("timeout must exceed the heartbeat interval")
        self.sim = sim
        self.watched = watched
        self.on_failure = on_failure
        self.interval_us = interval_us
        self.timeout_us = timeout_us
        self.detected_at_us: Optional[float] = None
        self._stopped = False

    def start(self) -> None:
        """Begin heartbeating and monitoring."""
        self.watched.heartbeat(self.sim.now)
        self._schedule_beat()
        self._schedule_check()

    def stop(self) -> None:
        self._stopped = True

    # -- internal ----------------------------------------------------------

    def _schedule_beat(self) -> None:
        self.sim.schedule_after(self.interval_us, self._beat, name="heartbeat")

    def _beat(self) -> None:
        if self._stopped:
            return
        self.watched.heartbeat(self.sim.now)
        self._schedule_beat()

    def _schedule_check(self) -> None:
        self.sim.schedule_after(self.interval_us, self._check, name="hb-check")

    def _check(self) -> None:
        if self._stopped or self.detected_at_us is not None:
            return
        last = self.watched.last_heartbeat_us or 0.0
        if self.sim.now - last > self.timeout_us:
            self.detected_at_us = self.sim.now
            self.on_failure()
            return
        self._schedule_check()
