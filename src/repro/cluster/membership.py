"""Heartbeat failure detection and an N-member membership view.

The paper defers crash detection and group-view management to
well-known cluster services (Section 1, citing the Microsoft Cluster
Service design). This module supplies a simple but honest version of
that machinery on the discrete-event kernel: the primary emits
heartbeats every ``interval_us``; the monitor on the backup declares
the primary dead once no heartbeat has arrived for ``timeout_us`` and
triggers failover. Detection latency is therefore bounded by
``timeout_us`` plus one polling period — asserted by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.cluster.node import Node
from repro.obs.observer import NULL_OBSERVER, resolve_observer
from repro.sim.engine import Simulator


@dataclass
class Membership:
    """A node's view of who is in the cluster and who leads.

    Works for any member count, not just a primary-backup pair. Every
    view change — the initial view, joins, and failures — is recorded
    in ``history`` as ``(view_id, members, primary)`` tuples, so a
    late-joining observer can replay how the cluster got here.

    Promotion after a primary failure is deterministic: the survivor
    with the lowest *seniority rank* (order of joining the view) takes
    over, regardless of the order earlier members failed. A member that
    leaves and rejoins receives a fresh, higher rank, so a flapping
    node can never steal leadership from a stable one.
    """

    members: List[str]
    primary: str
    view_id: int = 0
    history: List[tuple] = field(default_factory=list)
    observer: object = field(default=NULL_OBSERVER, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.primary not in self.members:
            raise ValueError(
                f"primary {self.primary!r} is not a member of {self.members}"
            )
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate members in {self.members}")
        self._ranks = {name: rank for rank, name in enumerate(self.members)}
        self._next_rank = len(self.members)
        # View 0 is itself part of the record.
        self.history.append((self.view_id, tuple(self.members), self.primary))
        self._emit_view()

    def _emit_view(self) -> None:
        if self.observer.enabled:
            self.observer.count("membership.view_changes")
            self.observer.gauge("membership.members", len(self.members))
            self.observer.event(
                "membership", "view.change",
                view_id=self.view_id, members=list(self.members),
                primary=self.primary,
            )

    def rank(self, name: str) -> int:
        """Seniority rank of a current member (lower is more senior)."""
        if name not in self.members:
            raise ValueError(f"{name!r} is not a member")
        return self._ranks[name]

    def join(self, name: str) -> None:
        """Add a member at the lowest seniority; records a view change."""
        if name in self.members:
            return
        self.members.append(name)
        self._ranks[name] = self._next_rank
        self._next_rank += 1
        self._record()

    def fail(self, name: str) -> None:
        """Remove a member; promotes the most senior survivor if it led."""
        if name not in self.members:
            return
        self.members.remove(name)
        del self._ranks[name]
        if self.primary == name:
            if not self.members:
                raise ValueError("no surviving member to promote")
            self.primary = min(self.members, key=self._ranks.__getitem__)
        self._record()

    def _record(self) -> None:
        self.view_id += 1
        self.history.append((self.view_id, tuple(self.members), self.primary))
        self._emit_view()


class HeartbeatMonitor:
    """Watches a node's heartbeats on the simulator; calls
    ``on_failure`` when they stop for longer than the timeout."""

    def __init__(
        self,
        sim: Simulator,
        watched: Node,
        on_failure: Callable[[], None],
        interval_us: float = 1000.0,
        timeout_us: float = 5000.0,
        observer=None,
    ):
        if timeout_us <= interval_us:
            raise ValueError("timeout must exceed the heartbeat interval")
        self.sim = sim
        self.watched = watched
        self.on_failure = on_failure
        self.interval_us = interval_us
        self.timeout_us = timeout_us
        self.observer = resolve_observer(observer)
        self.detected_at_us: Optional[float] = None
        self._stopped = False

    def start(self) -> None:
        """Begin heartbeating and monitoring."""
        self.watched.heartbeat(self.sim.now)
        self._schedule_beat()
        self._schedule_check()

    def stop(self) -> None:
        self._stopped = True

    # -- internal ----------------------------------------------------------

    def _schedule_beat(self) -> None:
        self.sim.schedule_after(self.interval_us, self._beat, name="heartbeat")

    def _beat(self) -> None:
        if self._stopped:
            return
        self.watched.heartbeat(self.sim.now)
        if self.observer.enabled:
            self.observer.count("monitor.heartbeats")
        self._schedule_beat()

    def _schedule_check(self) -> None:
        self.sim.schedule_after(self.interval_us, self._check, name="hb-check")

    def _check(self) -> None:
        if self._stopped or self.detected_at_us is not None:
            return
        last = self.watched.last_heartbeat_us or 0.0
        if self.sim.now - last > self.timeout_us:
            self.detected_at_us = self.sim.now
            if self.observer.enabled:
                self.observer.count("monitor.missed_beats")
                self.observer.event(
                    "monitor", "heartbeat.missed",
                    node=self.watched.name,
                    last_heartbeat_us=last,
                    timeout_us=self.timeout_us,
                )
            self.on_failure()
            return
        self._schedule_check()
