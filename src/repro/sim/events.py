"""Event and event-queue primitives for the simulation kernel.

Events are ordered by (time, sequence number); the sequence number
makes ordering stable and deterministic when several events share a
timestamp.

Two queue implementations provide the same discipline:

* :class:`EventQueue` — the reference: a binary heap of
  ``(time, seq, event)`` tuples. Because ``(time, seq)`` is unique,
  every heap comparison resolves at C level on the first two tuple
  slots and the :class:`Event` payload is never compared.
* :class:`BucketedEventQueue` — the fast-path front-end: a hash wheel
  of exact-time buckets (``dict`` keyed by firing time, FIFO deque per
  bucket) over a heap that holds one bare ``float`` per *distinct*
  pending time. Poll loops and heartbeats schedule thousands of events
  onto a handful of shared timestamps; those pushes are O(1) dict
  appends with no heap traffic at all. Irregular times fall back to
  the heap as single-event buckets.

Both pop events in identical ``(time, seq)`` order (FIFO within a
timestamp) — a property the Hypothesis suite checks on random
schedules — so the simulator can pick either without changing any
measured output.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple


class Event:
    """A scheduled callback.

    Attributes:
        time: simulated time (microseconds) at which the event fires.
        seq: tie-breaking sequence number assigned by the queue.
        action: zero-argument callable run when the event fires.
        name: optional label for tracing and debugging.
        cancelled: lazy-cancellation flag; the queue skips the event
            when it surfaces rather than repairing the heap eagerly.
    """

    __slots__ = ("time", "seq", "action", "name", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], Any],
        name: str = "",
    ):
        self.time = time
        self.seq = seq
        self.action = action
        self.name = name
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = ", cancelled" if self.cancelled else ""
        return f"Event(time={self.time}, seq={self.seq}, name={self.name!r}{state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    The heap entries are ``(time, seq, event)`` tuples: ``(time, seq)``
    is unique, so tuple comparison never falls through to the event and
    stays entirely in C.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, action: Callable[[], Any], name: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        seq = next(self._counter)
        event = Event(time, seq, action, name)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                return event
        return None

    def pop_until(self, until: Optional[float] = None) -> Optional[Event]:
        """Pop the earliest live event firing at or before ``until``.

        Returns None — leaving the queue intact — when the queue is
        empty or the earliest live event fires after ``until``. This is
        the fused form of ``peek_time()`` + ``pop()``: one heap
        traversal per event instead of two.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if until is not None and entry[0] > until:
                return None
            heapq.heappop(heap)
            event = entry[2]
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or None."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if heap:
            return heap[0][0]
        return None

    def distinct_times(self) -> int:
        """Number of distinct firing times among pending entries.

        Counts lazily-cancelled events that have not yet surfaced, the
        same discipline as ``len()``, so both queue implementations
        report the same figure for identical contents. This is the
        "timer-wheel occupancy" probe: how many wheel buckets the same
        schedule would occupy.
        """
        return len({entry[0] for entry in self._heap})

    def pending_times(self) -> List[float]:
        """Sorted distinct firing times among pending entries.

        Same lazy-cancellation discipline as :meth:`distinct_times`
        (``len(pending_times()) == distinct_times()`` always); the
        parallel shard executor unions these across domains to rebuild
        the sequential run's wheel-occupancy probe exactly.
        """
        return sorted({entry[0] for entry in self._heap})

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()


class BucketedEventQueue:
    """Hash-wheel event queue: exact-time FIFO buckets over a float heap.

    Same API and same deterministic ``(time, seq)`` pop order as
    :class:`EventQueue`. Scheduling onto a timestamp that already has a
    pending event is a dict lookup plus a deque append — no heap
    operation — which is the common case for the poll-dominated event
    populations (``wait_for`` busy-waiting, heartbeats) where thousands
    of events share a handful of firing times.

    ``len()`` mirrors the reference queue's semantics: cancelled events
    keep counting until they physically surface at a pop/peek, because
    cancellation is lazy in both implementations.

    A bucket with a single event is stored as the :class:`Event`
    itself; the deque only materializes on the second arrival at the
    same timestamp, so irregular singleton times pay no container
    allocation.
    """

    def __init__(self) -> None:
        self._heap: List[float] = []  # one entry per distinct pending time
        self._buckets: Dict[float, Any] = {}  # time -> Event | deque[Event]
        self._counter = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, time: float, action: Callable[[], Any], name: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        event = Event(time, next(self._counter), action, name)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = event
            heapq.heappush(self._heap, time)
        elif type(bucket) is deque:
            bucket.append(event)
        else:
            buckets[time] = deque((bucket, event))
        self._size += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        return self.pop_until(None)

    def pop_until(self, until: Optional[float] = None) -> Optional[Event]:
        """Pop the earliest live event firing at or before ``until``.

        Returns None — leaving the queue intact — when the queue is
        empty or the earliest live event fires after ``until``.
        """
        heap = self._heap
        buckets = self._buckets
        while heap:
            time = heap[0]
            if until is not None and time > until:
                return None
            bucket = buckets[time]
            if type(bucket) is deque:
                event = bucket.popleft()
                if not bucket:
                    heapq.heappop(heap)
                    del buckets[time]
            else:
                event = bucket
                heapq.heappop(heap)
                del buckets[time]
            self._size -= 1
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or None."""
        heap = self._heap
        buckets = self._buckets
        while heap:
            time = heap[0]
            bucket = buckets[time]
            if type(bucket) is deque:
                while bucket and bucket[0].cancelled:
                    bucket.popleft()
                    self._size -= 1
                if bucket:
                    return time
            elif not bucket.cancelled:
                return time
            else:
                self._size -= 1
            heapq.heappop(heap)
            del buckets[time]
        return None

    def distinct_times(self) -> int:
        """Number of distinct firing times among pending entries.

        For the wheel this is exactly the number of live buckets (one
        heap float per distinct time); matches the reference queue's
        figure for identical contents.
        """
        return len(self._heap)

    def pending_times(self) -> List[float]:
        """Sorted distinct firing times among pending entries (the
        live bucket keys); matches the reference queue's figure for
        identical contents."""
        return sorted(self._heap)

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._buckets.clear()
        self._size = 0


#: Schedule-shape hints for :func:`default_event_queue`. "shared"
#: means the population repeats exact timestamps heavily (heartbeat
#: chains across cluster members, takeover timers); "irregular" means
#: timestamps rarely collide (desynchronized ``wait_for`` poll phases,
#: link service completions).
SHAPE_IRREGULAR = "irregular"
SHAPE_SHARED = "shared"


def default_event_queue(shape: str = SHAPE_IRREGULAR):
    """The queue implementation for a new simulator.

    The bucketed wheel beats the tuple heap only when pushes actually
    collide on timestamps (measured ~1.2x on heartbeat populations; the
    exact-time dict costs ~1.3x on fully irregular poll schedules), so
    the fast path selects it per schedule shape: simulators declaring
    ``SHAPE_SHARED`` (cluster/shard heartbeat machinery) get the wheel,
    everything else keeps the reference heap. ``REPRO_FASTPATH=0`` /
    ``--no-fastpath`` pins the reference heap everywhere, same
    discipline as the rest of :mod:`repro.fastpath`."""
    import repro.fastpath

    if shape == SHAPE_SHARED and repro.fastpath.enabled():
        return BucketedEventQueue()
    return EventQueue()
