"""Event and event-queue primitives for the simulation kernel.

Events are ordered by (time, sequence number); the sequence number
makes ordering stable and deterministic when several events share a
timestamp.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulated time (microseconds) at which the event fires.
        seq: tie-breaking sequence number assigned by the queue.
        action: zero-argument callable run when the event fires.
        name: optional label for tracing and debugging.
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, action: Callable[[], Any], name: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        event = Event(time=time, seq=next(self._counter), action=action, name=name)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
