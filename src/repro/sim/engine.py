"""The discrete-event simulator.

A :class:`Simulator` owns the virtual clock and the event queue and
runs events in timestamp order. Generator-based processes
(:mod:`repro.sim.process`) are layered on top of this engine.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.obs.observer import resolve_observer
from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue, default_event_queue


class Simulator:
    """Deterministic discrete-event simulator.

    An attached observer (default: the no-op ``NULL_OBSERVER``) gets
    this simulator's clock as its time source and sees per-event
    counters and the queue depth; it never influences execution.

    The event queue defaults to the bucketed wheel when the fast path
    is on and the reference heap under ``REPRO_FASTPATH=0``; both pop
    in identical (time, seq) order. Pass ``queue`` to pin either
    implementation explicitly.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule_at(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        5.0
        >>> fired
        [5.0]
    """

    def __init__(self, start_time: float = 0.0, observer=None, queue=None):
        self.clock = VirtualClock(start_time)
        self.queue = default_event_queue() if queue is None else queue
        self.observer = resolve_observer(observer)
        self.observer.bind_clock(lambda: self.clock.now)
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def schedule_at(
        self, when: float, action: Callable[[], Any], name: str = ""
    ) -> Event:
        """Schedule ``action`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event at {when} before current time {self.now}"
            )
        return self.queue.push(when, action, name)

    def schedule_after(
        self, delay: float, action: Callable[[], Any], name: str = ""
    ) -> Event:
        """Schedule ``action`` ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        return self.queue.push(self.now + delay, action, name)

    def step(self) -> bool:
        """Run the next event. Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._events_processed += 1
        if self.observer.enabled:
            self.observer.count("sim.events")
            self.observer.gauge("sim.queue_depth", len(self.queue))
        event.action()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        on_event: Optional[Callable[[Event], Any]] = None,
    ) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        Returns the simulated time when the run stopped. When stopping
        because of ``until``, the clock is advanced to exactly ``until``
        and pending later events remain queued.

        ``on_event`` replaces the dispatch of every event: instead of
        calling ``event.action()`` the loop calls ``on_event(event)``
        (which must invoke the action itself). This is the profiler's
        exact-timer hook; the check is hoisted out of the per-event hot
        loop so passing ``None`` — the default — costs nothing.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        executed = 0
        queue = self.queue
        pop_until = queue.pop_until
        advance_to = self.clock.advance_to
        observer = self.observer
        try:
            if max_events is None and not observer.enabled and on_event is None:
                # Hot loop: one heap traversal per event (pop_until
                # fuses the old peek_time + pop pair) and no per-event
                # bookkeeping beyond the counter.
                while True:
                    event = pop_until(until)
                    if event is None:
                        break
                    advance_to(event.time)
                    executed += 1
                    event.action()
            else:
                while True:
                    if max_events is not None and executed >= max_events:
                        break
                    event = pop_until(until)
                    if event is None:
                        break
                    advance_to(event.time)
                    executed += 1
                    if observer.enabled:
                        observer.count("sim.events")
                        observer.gauge("sim.queue_depth", len(queue))
                    if on_event is not None:
                        on_event(event)
                    else:
                        event.action()
            if until is not None and self.now < until:
                advance_to(until)
        finally:
            self._running = False
            self._events_processed += executed
        return self.now

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.3f}us, pending={len(self.queue)}, "
            f"processed={self._events_processed})"
        )
