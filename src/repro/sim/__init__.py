"""Deterministic discrete-event simulation kernel.

The kernel provides a virtual clock measured in microseconds (the
natural unit for the paper's hardware: Memory Channel latency is
3.3 us, transactions take 2-20 us), an event queue with stable
ordering, a process abstraction built on generators, and seeded
random-number helpers so every simulation is reproducible.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import (
    BucketedEventQueue,
    Event,
    EventQueue,
    SHAPE_IRREGULAR,
    SHAPE_SHARED,
    default_event_queue,
)
from repro.sim.engine import Simulator
from repro.sim.process import Process, sleep, wait_for
from repro.sim.rng import SeedSequence, make_rng

__all__ = [
    "VirtualClock",
    "Event",
    "EventQueue",
    "BucketedEventQueue",
    "SHAPE_IRREGULAR",
    "SHAPE_SHARED",
    "default_event_queue",
    "Simulator",
    "Process",
    "sleep",
    "wait_for",
    "SeedSequence",
    "make_rng",
]
