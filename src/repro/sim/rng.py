"""Seeded random-number helpers.

All stochastic behaviour in the library flows through these helpers so
that an experiment is fully determined by a single integer seed. Child
streams are derived with :class:`SeedSequence` so adding a new consumer
does not perturb existing ones.
"""

from __future__ import annotations

import random
from typing import Iterator


class SeedSequence:
    """Derives independent, named child seeds from a root seed.

    Each distinct ``name`` yields a stable child seed; the mapping does
    not depend on the order in which names are requested.
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def child_seed(self, name: str) -> int:
        """Return a deterministic 63-bit seed for ``name``."""
        h = 1469598103934665603  # FNV-1a 64-bit offset basis
        for byte in f"{self.root_seed}/{name}".encode():
            h ^= byte
            h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
        return h & 0x7FFFFFFFFFFFFFFF

    def rng(self, name: str) -> random.Random:
        """Return a ``random.Random`` seeded for ``name``."""
        return random.Random(self.child_seed(name))

    def spawn(self, name: str) -> "SeedSequence":
        """Return a child sequence rooted at ``name``'s seed."""
        return SeedSequence(self.child_seed(name))


def make_rng(seed: int) -> random.Random:
    """Return a ``random.Random`` for a bare integer seed."""
    return random.Random(seed)


def zipf_like(rng: random.Random, n: int, skew: float = 0.0) -> Iterator[int]:
    """Yield indices in ``[0, n)``; uniform when ``skew`` is 0.

    The TPC-derived benchmarks in the paper use uniform random account
    selection; ``skew`` is provided for sensitivity experiments.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if skew <= 0:
        while True:
            yield rng.randrange(n)
    else:
        # Approximate Zipf by rank r ~ U^(1/(1-skew)) scaling; adequate
        # for workload-skew sensitivity studies, not for exact Zipf fits.
        exponent = 1.0 / max(1e-9, 1.0 - min(skew, 0.999))
        while True:
            u = rng.random()
            yield min(n - 1, int(n * (u ** exponent)))
