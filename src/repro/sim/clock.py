"""Virtual clock for discrete-event simulation.

Time is a float in microseconds. The clock only moves forward;
attempting to rewind raises :class:`~repro.errors.ClockError`.
"""

from __future__ import annotations

from repro.errors import ClockError


class VirtualClock:
    """A monotonically non-decreasing simulated clock.

    The clock starts at zero (or ``start``). All simulation components
    share one clock instance owned by the :class:`~repro.sim.Simulator`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            ClockError: if ``when`` is earlier than the current time.
        """
        if when < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = when

    def advance_by(self, delta: float) -> float:
        """Move the clock forward by ``delta`` microseconds.

        Returns the new time. A negative ``delta`` raises
        :class:`ClockError`.
        """
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.3f}us)"
