"""Generator-based processes on top of the event engine.

A process is a Python generator that yields *commands*:

* ``sleep(delay)`` — suspend for ``delay`` simulated microseconds.
* ``wait_for(predicate, poll)`` — poll ``predicate`` every ``poll``
  microseconds until it returns True (models busy-waiting, e.g. the
  active backup polling the redo-log producer pointer).

This is intentionally small: the replication layer uses it to model
the active backup's consumer loop and failure detectors, while the
performance experiments use plain cost accounting.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class _Sleep:
    __slots__ = ("delay",)

    def __init__(self, delay: float):
        self.delay = delay


class _WaitFor:
    __slots__ = ("predicate", "poll")

    def __init__(self, predicate: Callable[[], bool], poll: float):
        self.predicate = predicate
        self.poll = poll


def sleep(delay: float) -> _Sleep:
    """Yield from a process to suspend for ``delay`` microseconds."""
    return _Sleep(delay)


def wait_for(predicate: Callable[[], bool], poll: float = 0.1) -> _WaitFor:
    """Yield from a process to busy-wait until ``predicate()`` is True.

    ``poll`` is the simulated polling interval in microseconds.
    """
    return _WaitFor(predicate, poll)


class Process:
    """Drives a generator through the simulator's event queue."""

    __slots__ = ("sim", "generator", "name", "finished", "result")

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, None, None],
        name: str = "process",
    ):
        self.sim = sim
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Optional[Any] = None
        self._start()

    def _start(self) -> None:
        self.sim.schedule_after(0.0, self._resume, name=f"{self.name}:start")

    def _resume(self) -> None:
        if self.finished:
            return
        try:
            command = next(self.generator)
        except StopIteration as stop:
            self.finished = True
            self.result = getattr(stop, "value", None)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, _Sleep):
            if command.delay < 0:
                raise SimulationError(f"process {self.name} slept negative time")
            self.sim.schedule_after(command.delay, self._resume, name=self.name)
        elif isinstance(command, _WaitFor):
            self._poll(command)
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported command {command!r}"
            )

    def _poll(self, command: _WaitFor) -> None:
        # One closure serves every poll tick of this wait (the seed
        # allocated a fresh lambda and a fresh f-string name per tick;
        # busy-wait loops tick millions of times per run). Behavior —
        # predicate checked synchronously, resume at +0.0, retry after
        # ``poll`` — is unchanged.
        predicate = command.predicate
        poll = command.poll
        schedule_after = self.sim.schedule_after
        resume = self._resume
        resume_name = self.name
        poll_name = f"{self.name}:poll"

        def tick() -> None:
            if predicate():
                schedule_after(0.0, resume, name=resume_name)
            else:
                schedule_after(poll, tick, name=poll_name)

        tick()
