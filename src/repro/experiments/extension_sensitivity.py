"""Extension: are the paper's conclusions robust to the calibration?

The reproduction's hardware constants (overlap factor, cache-miss
penalty, per-packet overhead) carry uncertainty. This experiment
re-evaluates the measured runs under a grid of perturbed calibrations
— re-anchoring the base costs each time, exactly as the real pipeline
does — and checks which of the paper's qualitative conclusions hold at
every grid point:

1. passive ordering V0 < V1 < V2 < V3 (both benchmarks);
2. the active backup beats the best passive scheme (both benchmarks);
3. the straightforward V0 primary-backup collapses by >= 2x;
4. at 4 CPUs the active scheme beats passive V3 by >= 1.5x.

A conclusion that only holds for one lucky constant would be a
reproduction artifact; these hold across the grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List

from repro.experiments.common import ExperimentContext, PAPER_DB_BYTES
from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.perf.report import ReportTable
from repro.perf.throughput import ThroughputEstimator, calibrate_bases

WORKLOADS = ("debit-credit", "order-entry")

OVERLAPS = (0.15, 0.30, 0.50)
MISS_PENALTIES = (0.07, 0.13, 0.22)  # us
PACKET_OVERHEADS = (0.20, 0.272, 0.35)  # us

CONCLUSIONS = (
    "passive ordering v0<v1<v2<v3",
    "active beats best passive",
    "straightforward collapse >= 2x",
    "active >= 1.5x passive-v3 at 4 CPUs",
)


@dataclass
class SensitivityResult:
    grid_points: int
    held: Dict[str, int]
    failures: List[tuple]

    def table(self) -> ReportTable:
        table = ReportTable(
            "Extension: conclusion robustness across the calibration grid",
            ["conclusion", "held", "grid"],
        )
        for conclusion in CONCLUSIONS:
            table.add_row(
                conclusion, self.held[conclusion], self.grid_points
            )
        table.add_note(
            f"grid: overlap {OVERLAPS} x miss penalty {MISS_PENALTIES} "
            f"x packet overhead {PACKET_OVERHEADS} us"
        )
        return table

    def check(self, minimum_fraction: float = 0.95) -> None:
        for conclusion in CONCLUSIONS:
            fraction = self.held[conclusion] / self.grid_points
            assert fraction >= minimum_fraction, (
                conclusion, fraction, self.failures[:5],
            )


def run(ctx: ExperimentContext) -> SensitivityResult:
    # Measured runs are calibration-independent: gather them once.
    runs = {}
    for workload in WORKLOADS:
        runs[workload] = {
            "v3-standalone": ctx.standalone_result("v3", workload, PAPER_DB_BYTES),
            "v0-standalone": ctx.standalone_result("v0", workload, PAPER_DB_BYTES),
            "passive": {
                version: ctx.passive_result(version, workload, PAPER_DB_BYTES)
                for version in ("v0", "v1", "v2", "v3")
            },
            "active": ctx.active_result(workload, PAPER_DB_BYTES),
        }

    held = {conclusion: 0 for conclusion in CONCLUSIONS}
    failures: List[tuple] = []
    grid = list(itertools.product(OVERLAPS, MISS_PENALTIES, PACKET_OVERHEADS))

    for overlap, miss_penalty, packet_overhead in grid:
        base = DEFAULT_CALIBRATION
        calibration = replace(
            base,
            overlap=overlap,
            machine=replace(
                base.machine,
                board_cache=replace(
                    base.machine.board_cache, miss_penalty_us=miss_penalty
                ),
            ),
            san=replace(base.san, per_packet_overhead_us=packet_overhead),
        )
        calibration = calibrate_bases(
            calibration,
            {workload: runs[workload]["v3-standalone"] for workload in WORKLOADS},
        )
        estimator = ThroughputEstimator(calibration)

        point = (overlap, miss_penalty, packet_overhead)
        verdicts = _evaluate(estimator, runs)
        for conclusion, ok in verdicts.items():
            if ok:
                held[conclusion] += 1
            else:
                failures.append((conclusion, point))

    return SensitivityResult(
        grid_points=len(grid), held=held, failures=failures
    )


def _evaluate(estimator: ThroughputEstimator, runs) -> Dict[str, bool]:
    ordering_ok = True
    active_ok = True
    collapse_ok = True
    smp_ok = True
    for workload in WORKLOADS:
        passive = {
            version: estimator.passive(result).tps
            for version, result in runs[workload]["passive"].items()
        }
        active_report = estimator.active(runs[workload]["active"])
        v0_standalone = estimator.standalone(runs[workload]["v0-standalone"]).tps

        if not passive["v0"] < passive["v1"] < passive["v2"] < passive["v3"]:
            ordering_ok = False
        if not active_report.tps > passive["v3"]:
            active_ok = False
        if not passive["v0"] < v0_standalone / 2.0:
            collapse_ok = False
        passive_v3_report = estimator.passive(runs[workload]["passive"]["v3"])
        active_4 = estimator.smp_aggregate(active_report, 4)
        passive_4 = estimator.smp_aggregate(passive_v3_report, 4)
        if not active_4 > 1.5 * passive_4:
            smp_ok = False
    return {
        "passive ordering v0<v1<v2<v3": ordering_ok,
        "active beats best passive": active_ok,
        "straightforward collapse >= 2x": collapse_ok,
        "active >= 1.5x passive-v3 at 4 CPUs": smp_ok,
    }
