"""Extension experiment: recovery time and availability per design.

Not a table in the paper — it quantifies two of the paper's qualitative
claims. The takeover work is *measured* by actually crashing each
replicated system mid-transaction and counting the bytes its failover
restores (``counters.rollback_bytes``), then converted to time by the
memcpy-bandwidth model in :mod:`repro.replication.recovery_time`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.obs import MetricsRegistry, Observer
from repro.perf.report import ReportTable
from repro.replication.active import ActiveReplicatedSystem
from repro.replication.passive import PassiveReplicatedSystem
from repro.replication.recovery_time import (
    MEMCPY_BYTES_PER_US,
    RecoveryProfile,
    availability,
    nines,
    one_safe_window_us,
    profiles_for,
)
from repro.vista.api import EngineConfig
from repro.workloads import DebitCreditWorkload

MB = 1024 * 1024
DETECTION_US = 5_000.0


@dataclass
class RecoveryResult:
    profiles: Dict[str, RecoveryProfile]
    measured_restore_bytes: Dict[str, int]
    db_bytes: int
    loss_window_us: float = 0.0
    #: The obs registry every engine's counters were bridged into;
    #: ``measured_restore_bytes`` is read back out of it, so the check
    #: consumes the observability path, not engine-private state.
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def table(self) -> ReportTable:
        table = ReportTable(
            f"Extension: recovery time and availability "
            f"({self.db_bytes // MB} MB database, 5 ms detection, "
            f"30-day MTBF)",
            ["design", "restore bytes", "downtime", "availability"],
        )
        for name, profile in self.profiles.items():
            downtime_us = profile.takeover_us()
            avail = availability(downtime_us)
            downtime = (
                f"{downtime_us / 1e6:.1f} s"
                if downtime_us >= 1e6
                else f"{downtime_us / 1000:.2f} ms"
            )
            table.add_row(
                name,
                profile.bytes_to_restore,
                downtime,
                f"{nines(avail):.1f} nines",
            )
        table.add_note(
            "the mirror versions' whole-database restore is the "
            "Section 5.1 tradeoff; standalone Vista pays a full reboot"
        )
        table.add_note(
            f"1-safe loss window (active): {self.loss_window_us:.1f} us "
            f"per commit — the paper's 'few microseconds', quantified"
        )
        return table

    def check(self) -> None:
        takeovers = {
            name: profile.takeover_us()
            for name, profile in self.profiles.items()
        }
        # Every replicated design recovers orders of magnitude faster
        # than waiting out a standalone reboot.
        standalone = takeovers["standalone (Vista)"]
        for name, value in takeovers.items():
            if name != "standalone (Vista)":
                assert value < standalone / 100, (name, value, standalone)
        # Mirror restore is the slowest replicated path (Section 5.1).
        mirror = takeovers["passive v1/v2 (mirror restore)"]
        for name in ("passive v3 (log rollback)", "active (drain redo ring)"):
            assert mirror > takeovers[name], (name, takeovers)
        # The measured restore bytes back the profiles: the mirror
        # versions really copied the whole database.
        assert self.measured_restore_bytes["v1"] == self.db_bytes
        assert self.measured_restore_bytes["v2"] == self.db_bytes
        assert self.measured_restore_bytes["v3"] < 4096
        # ...and the obs registry holds the same numbers the check just
        # consumed — the bridge is lossless.
        for version in ("v0", "v1", "v2", "v3"):
            assert self.registry.value(
                f"recovery.{version}.engine.rollback_bytes"
            ) == self.measured_restore_bytes[version]
        assert self.registry.value(
            "recovery.active.ring_backlog_bytes"
        ) == self.measured_restore_bytes["active-backlog"]
        # "A very short window of vulnerability (a few microseconds)".
        assert 3.0 < self.loss_window_us < 20.0, self.loss_window_us


def run(db_bytes: int = 8 * MB, seed: int = 42) -> RecoveryResult:
    config = EngineConfig(db_bytes=db_bytes, log_bytes=2 * MB)
    observer = Observer()
    measured: Dict[str, int] = {}
    live_undo = 0

    for version in ("v0", "v1", "v2", "v3"):
        system = PassiveReplicatedSystem(version, config)
        workload = DebitCreditWorkload(db_bytes, seed=seed)
        workload.setup(system)
        system.sync_initial()
        for _ in range(50):
            workload.run_transaction(system)
        # Crash mid-transaction so there is live undo to handle.
        system.begin_transaction()
        system.set_range(0, 64)
        system.write(0, b"\xff" * 64)
        system.fail_primary()
        engine = system.failover()
        # Bridge the promoted engine's tallies into the obs namespace
        # and read the measurement back out of the registry.
        engine.counters.snapshot_into(
            observer.registry, f"recovery.{version}.engine"
        )
        measured[version] = int(
            observer.registry.value(f"recovery.{version}.engine.rollback_bytes")
        )
        if version == "v3":
            live_undo = max(live_undo, measured[version])

    active = ActiveReplicatedSystem(config, auto_apply=False)
    workload = DebitCreditWorkload(db_bytes, seed=seed)
    workload.setup(active)
    active.sync_initial()
    for _ in range(50):
        workload.run_transaction(active)
    backlog = active.producer.produced - active.applier.consumed
    redo_link_per_txn = active.primary_interface.trace.link_time_us(
        active.san
    ) / 50.0
    active.fail_primary()
    active.failover()
    observer.registry.gauge("recovery.active.ring_backlog_bytes").set(
        float(backlog)
    )
    measured["active-backlog"] = backlog

    profiles = profiles_for(
        db_bytes=db_bytes,
        live_undo_bytes=max(64, live_undo),
        ring_backlog_bytes=float(backlog),
        detection_us=DETECTION_US,
    )
    return RecoveryResult(
        profiles=profiles,
        measured_restore_bytes=measured,
        db_bytes=db_bytes,
        loss_window_us=one_safe_window_us(redo_link_per_txn),
        registry=observer.registry,
    )
