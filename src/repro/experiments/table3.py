"""Table 3 — standalone throughput of the restructured versions.

The restructuring done for the backup's benefit improves standalone
performance too: Versions 1 and 2 drop the dynamic allocation and
linked-list work, and Version 3's inline log adds memory-access
locality on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import ExperimentContext, PAPER_DB_BYTES
from repro.perf.calibration import PAPER
from repro.perf.report import ReportTable, ratio
from repro.vista.factory import ENGINE_VERSIONS

WORKLOADS = ("debit-credit", "order-entry")

TITLES = {
    "v0": "Version 0 (Vista)",
    "v1": "Version 1 (Mirror by Copy)",
    "v2": "Version 2 (Mirror by Diff)",
    "v3": "Version 3 (Improved Log)",
}


@dataclass
class Table3Result:
    tps: Dict[str, Dict[str, float]]  # workload -> version -> tps

    def table(self) -> ReportTable:
        table = ReportTable(
            "Table 3: Standalone throughput of the re-structured versions "
            "(txns/sec)",
            ["version", "Debit-Credit", "paper", "ratio",
             "Order-Entry", "paper", "ratio"],
        )
        for version in ENGINE_VERSIONS:
            dc = self.tps["debit-credit"][version]
            oe = self.tps["order-entry"][version]
            paper_dc = PAPER["standalone"]["debit-credit"][version]
            paper_oe = PAPER["standalone"]["order-entry"][version]
            table.add_row(
                TITLES[version], dc, paper_dc, ratio(dc, paper_dc),
                oe, paper_oe, ratio(oe, paper_oe),
            )
        table.add_note(
            "V3 is calibration's anchor row; V0-V2 are predictions from "
            "measured operation counts"
        )
        return table

    def check(self) -> None:
        """The paper's standalone ordering: V3 > V1 > V2 > V0."""
        for workload in WORKLOADS:
            tps = self.tps[workload]
            assert tps["v3"] > tps["v1"] > tps["v2"] > tps["v0"], (
                f"{workload}: standalone ordering violated: {tps}"
            )


def run(ctx: ExperimentContext) -> Table3Result:
    estimator = ctx.estimator()
    tps: Dict[str, Dict[str, float]] = {}
    for workload in WORKLOADS:
        tps[workload] = {}
        for version in ENGINE_VERSIONS:
            result = ctx.standalone_result(version, workload, PAPER_DB_BYTES)
            tps[workload][version] = estimator.standalone(result).tps
    return Table3Result(tps=tps)
