"""Run every experiment and print the paper's tables and figures.

Installed as the ``repro-experiments`` console script::

    repro-experiments                # everything
    repro-experiments table4 fig2   # a subset
    repro-experiments --transactions 5000   # higher fidelity
    repro-experiments --jobs 4      # fan cells over 4 processes
    repro-experiments --no-fastpath # reference slow path (golden check)
    repro-experiments --profile out.txt   # wall-clock subsystem profile
    repro-experiments --cprofile out.txt  # cProfile one hot cell

``--jobs N`` computes the independent measurement cells in worker
processes, then renders every table in-process from the preloaded
cache — the printed output is byte-identical at any job count.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pstats
import sys
import time
from typing import Callable, Dict, List

from repro import fastpath

from repro.experiments import (
    ablations,
    extension_quorum,
    extension_recovery,
    extension_sensitivity,
    extension_sharding,
    extension_smp_sim,
    figure1,
    figures2_3,
)
from repro.experiments import table1_2, table3, table4_5, table6_7, table8
from repro.experiments.common import ExperimentContext, ExperimentSettings


def _run_figure1(_ctx: ExperimentContext) -> List[str]:
    result = figure1.run()
    result.check()
    return [result.table().render()]


def _run_table1_2(ctx: ExperimentContext) -> List[str]:
    result = table1_2.run(ctx)
    result.check()
    return [result.table1().render(), result.table2().render()]


def _run_table3(ctx: ExperimentContext) -> List[str]:
    result = table3.run(ctx)
    result.check()
    return [result.table().render()]


def _run_table4_5(ctx: ExperimentContext) -> List[str]:
    result = table4_5.run(ctx)
    result.check()
    return [result.table4().render(), result.table5().render()]


def _run_table6_7(ctx: ExperimentContext) -> List[str]:
    result = table6_7.run(ctx)
    result.check()
    return [result.table6().render(), result.table7().render()]


def _run_table8(ctx: ExperimentContext) -> List[str]:
    result = table8.run(ctx)
    result.check()
    return [result.table().render()]


def _run_figures2_3(ctx: ExperimentContext) -> List[str]:
    result = figures2_3.run(ctx)
    result.check()
    return [result.figure("debit-credit"), result.figure("order-entry")]


def _run_ablations(ctx: ExperimentContext) -> List[str]:
    result = ablations.run(ctx)
    result.check()
    return [result.table().render()]


def _run_recovery(_ctx: ExperimentContext) -> List[str]:
    result = extension_recovery.run()
    result.check()
    return [result.table().render()]


def _run_smp_validation(ctx: ExperimentContext) -> List[str]:
    result = extension_smp_sim.run(ctx)
    result.check()
    return [result.table().render()]


def _run_sensitivity(ctx: ExperimentContext) -> List[str]:
    result = extension_sensitivity.run(ctx)
    result.check()
    return [result.table().render()]


def _run_sharding(ctx: ExperimentContext) -> List[str]:
    result = extension_sharding.run(ctx)
    result.check()
    return [result.table().render(), result.timeline_figure()]


def _run_quorum(ctx: ExperimentContext) -> List[str]:
    result = extension_quorum.run(ctx)
    result.check()
    return [result.table().render(), result.timeline_figure()]


EXPERIMENTS: Dict[str, Callable[[ExperimentContext], List[str]]] = {
    "figure1": _run_figure1,
    "table1": _run_table1_2,
    "table3": _run_table3,
    "table4": _run_table4_5,
    "table6": _run_table6_7,
    "table8": _run_table8,
    "figures2-3": _run_figures2_3,
    "ablations": _run_ablations,
    "recovery": _run_recovery,
    "smp-validation": _run_smp_validation,
    "sensitivity": _run_sensitivity,
    "sharding": _run_sharding,
    "quorum": _run_quorum,
}

ALIASES = {
    "table2": "table1", "table5": "table4", "table7": "table6",
    "fig1": "figure1", "fig2": "figures2-3", "fig3": "figures2-3",
    "figure2": "figures2-3", "figure3": "figures2-3",
}


def _precompute(ctx: ExperimentContext, resolved: List[str], jobs: int) -> None:
    """Fan the selected experiments' measurement cells (and the SMP
    discrete-event simulations) over ``jobs`` worker processes, then
    seed the context cache. Rendering afterwards only reads the cache
    (falling back to inline computation for any cell the plan missed),
    so the printed tables are byte-identical to a sequential run."""
    from repro.experiments import cells
    from repro.fastpath.parallel import run_tasks
    from repro.obs.observer import get_default_observer

    observer = get_default_observer()
    plan = cells.plan_for(resolved)
    if observer.enabled:
        # Observed run: workers also return their per-cell metrics
        # snapshots, merged here in task order (run_tasks preserves
        # it), so the aggregate registry is deterministic at any -j.
        computed = run_tasks(
            cells.compute_cell_observed,
            [(ctx.settings, spec) for spec in plan], jobs,
        )
        ctx.preload(cells={key: result for key, result, _ in computed})
        for _key, _result, snapshot in computed:
            if snapshot is not None:
                observer.registry.merge_snapshot(snapshot)
        if "smp-validation" in resolved:
            sims = run_tasks(
                cells.compute_smp_sim_observed, cells.smp_sim_tasks(ctx), jobs
            )
            ctx.preload(memos={key: sim for key, sim, _ in sims})
            for _key, _sim, snapshot in sims:
                if snapshot is not None:
                    observer.registry.merge_snapshot(snapshot)
        return
    computed = run_tasks(
        cells.compute_cell, [(ctx.settings, spec) for spec in plan], jobs
    )
    ctx.preload(cells=dict(computed))
    if "smp-validation" in resolved:
        sims = run_tasks(cells.compute_smp_sim, cells.smp_sim_tasks(ctx), jobs)
        ctx.preload(memos=dict(sims))


def _cprofile_cell(args) -> int:
    """cProfile one representative hot cell and report the top 25
    functions by internal time (function-level drill-down; the
    subsystem-level view is ``--profile``)."""
    from repro.experiments.common import PAPER_DB_BYTES

    settings = ExperimentSettings(transactions=args.transactions, seed=args.seed)
    ctx = ExperimentContext(settings)
    profiler = cProfile.Profile()
    profiler.enable()
    ctx.passive_result("v3", "debit-credit", PAPER_DB_BYTES)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("tottime").print_stats(25)
    report = (
        f"# cProfile: passive v3 debit-credit @ 50 MB nominal, "
        f"{args.transactions} transactions, "
        f"fastpath={'off' if args.no_fastpath else 'on'}\n"
        + buffer.getvalue()
    )
    if args.cprofile == "-":
        print(report, end="")
    else:
        with open(args.cprofile, "w") as handle:
            handle.write(report)
        print(f"[profile written to {args.cprofile}]")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the tables and figures of Amza et al., "
        "DSN 2000."
    )
    parser.add_argument(
        "experiments", nargs="*",
        help=f"subset to run (default all): {sorted(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--transactions", type=int, default=1500,
        help="measured transactions per configuration (default 1500)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="workload RNG seed"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="compute measurement cells across N worker processes "
        "(output stays byte-identical; default 1 = sequential)",
    )
    parser.add_argument(
        "--shard-jobs", type=int, default=1, metavar="N",
        help="run the sharded failover simulation as N per-shard "
        "processes merged deterministically (output stays "
        "byte-identical; default 1 = one simulator)",
    )
    parser.add_argument(
        "--no-fastpath", action="store_true",
        help="disable the batched store pipeline and replay cache; "
        "the reference path for golden-output comparison",
    )
    parser.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="PATH",
        help="run the selected grid under the wall-clock stack sampler "
        "and write the per-subsystem attribution report to PATH "
        "(stdout if omitted); sampling covers this process only, so "
        "profile with --jobs 1",
    )
    parser.add_argument(
        "--profile-collapsed", default=None, metavar="PATH",
        help="with --profile, also write folded stacks to PATH "
        "(flamegraph.pl / speedscope input)",
    )
    parser.add_argument(
        "--cprofile", nargs="?", const="-", default=None, metavar="PATH",
        help="instead of running the grid, cProfile one representative "
        "cell (passive v3 debit-credit at the paper's 50 MB database) "
        "and write the top-25 functions to PATH (stdout if omitted)",
    )
    args = parser.parse_args(argv)
    if args.profile_collapsed and args.profile is None:
        parser.error("--profile-collapsed requires --profile")

    if args.no_fastpath:
        # The env var covers worker processes too (spawn or fork).
        os.environ["REPRO_FASTPATH"] = "0"
        fastpath.set_enabled(False)

    if args.cprofile is not None:
        return _cprofile_cell(args)

    names = args.experiments or list(EXPERIMENTS)
    resolved = []
    for name in names:
        key = ALIASES.get(name, name)
        if key not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {name!r}; choose from "
                f"{sorted(set(EXPERIMENTS) | set(ALIASES))}"
            )
        if key not in resolved:
            resolved.append(key)

    settings = ExperimentSettings(
        transactions=args.transactions, seed=args.seed,
        shard_jobs=args.shard_jobs,
    )
    ctx = ExperimentContext(settings)

    def run_grid() -> None:
        started = time.time()
        if args.jobs > 1:
            _precompute(ctx, resolved, args.jobs)
        for key in resolved:
            for block in EXPERIMENTS[key](ctx):
                print(block)
                print()
        print(f"[all experiments passed their shape checks in "
              f"{time.time() - started:.1f}s]")

    if args.profile is None:
        run_grid()
        return 0

    from repro.obs.prof import profile

    _, report = profile(
        run_grid, label=f"repro-experiments {' '.join(resolved)}"
    )
    text = report.render()
    if args.profile == "-":
        print(text, end="")
    else:
        with open(args.profile, "w") as handle:
            handle.write(text)
        print(f"[profile written to {args.profile}]")
    if args.profile_collapsed:
        report.write_collapsed(args.profile_collapsed)
        print(f"[collapsed stacks written to {args.profile_collapsed}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
