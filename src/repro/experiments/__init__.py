"""Experiment reproductions: one module per table/figure of the paper.

Every experiment drives the *real* implementation (engines,
replication, workloads) to measure operation counts and packet traces,
then applies the calibrated performance model to produce the paper's
rows. Use :mod:`repro.experiments.runner` (or the installed
``repro-experiments`` script) to run everything.
"""

from repro.experiments.common import ExperimentContext, ExperimentSettings

__all__ = ["ExperimentContext", "ExperimentSettings"]
