"""Extension experiment: sharded multi-pair scaling and failover.

Not in the paper — its cluster is one primary-backup pair. This
experiment puts the :mod:`repro.shard` layer through both of the
claims that justify sharding:

* **Scaling** — aggregate throughput of 1/2/4/8 pairs serving
  disjoint Debit-Credit partitions. Each pair's rate is the calibrated
  single-pair estimate (the same one behind Tables 6/7); the
  composition shows near-linear scaling with dedicated per-pair SAN
  links, next to the cap one shared SAN would impose given the
  measured per-transaction packet mix (:mod:`repro.perf.sharding`).

* **Availability under failure** — a 4-shard cluster on one
  discrete-event simulator, a router submitting a fixed per-slot load,
  and one shard's primary crashing mid-run. Aggregate completions dip
  to exactly 3/4 of the offered rate while that shard's backup
  restores (the other shards never notice), then the router's retried
  backlog drains in a catch-up burst and the rate returns to normal.
  The pair uses passive Version 1 replication, whose whole-database
  mirror restore makes the takeover window long enough to see.

Everything is deterministic under the seed: the timeline is a pure
function of (shards, slots, crash time, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.cluster.cluster import TakeoverReport
from repro.experiments.common import ExperimentContext
from repro.fastpath import shardpar
from repro.fastpath.shardpar import TimelinePlan
from repro.obs import Observer, TraceEvent, analyze_timeline, write_jsonl
from repro.obs.report import TimelineReport
from repro.obs.series import (
    DipSummary,
    SeriesFrame,
    derive_dip,
    series_interval_us,
    windowed_goodput,
)
from repro.perf.report import ReportTable
from repro.perf.sharding import ShardedThroughputReport, sharded_aggregate
from repro.shard import ShardedWorkload

MB = 1024 * 1024

SHARD_COUNTS = (1, 2, 4, 8)

#: Failover-timeline defaults (all in simulated microseconds).
SLOT_US = 1_000.0
SLOTS = 28
OFFERED_PER_SHARD_PER_SLOT = 2
CRASH_AT_US = 5_250.0
HEARTBEAT_INTERVAL_US = 100.0
HEARTBEAT_TIMEOUT_US = 500.0


@dataclass
class SlotSample:
    """One timeline slot: what was offered and what completed."""

    start_us: float
    offered: int
    completed: int


class SeriesDerivations:
    """Windowed derivations shared by the measured timelines.

    Expects ``series`` (a :class:`SeriesFrame` with a cumulative
    ``router.completed`` column), ``slot_us`` and ``normal_per_slot``
    on the concrete dataclass.
    """

    def goodput_windows(self, window_us: Optional[float] = None) -> List[float]:
        """Completions per window derived from the sampled series."""
        window = self.slot_us if window_us is None else window_us
        return windowed_goodput(self.series, "router.completed", window)

    def series_dip(self, window_us: Optional[float] = None) -> Optional[DipSummary]:
        """Dip-and-recovery summary of the sampled goodput curve."""
        window = self.slot_us if window_us is None else window_us
        return derive_dip(
            self.goodput_windows(window), window, float(self.normal_per_slot)
        )

    def recovery(self):
        """Per-scope downtime decomposition from the recovery spans
        (expects ``trace_events`` on the concrete dataclass)."""
        from repro.obs.critpath import decompose_recoveries

        return decompose_recoveries(self.trace_events)

    def alerts(self):
        """Cross-check the recorded burn-rate alerts against the
        trace's own downtime record."""
        from repro.obs.alerts import verify_alerts

        return verify_alerts(self.trace_events)


@dataclass
class FailoverTimeline(SeriesDerivations):
    """The measured dip-and-recovery curve of one shard's failover."""

    num_shards: int
    slot_us: float
    offered_per_shard_per_slot: int
    crashed_shard: int
    crash_at_us: float
    takeover: TakeoverReport
    samples: List[SlotSample]
    router_stats: Dict[str, int] = field(default_factory=dict)
    #: The raw trace the numbers above were derived from.
    trace_events: List[TraceEvent] = field(default_factory=list)
    #: The sampled time series recorded alongside the trace.
    series: SeriesFrame = field(default_factory=SeriesFrame)

    def trace_report(self, window_us: Optional[float] = None) -> TimelineReport:
        """Re-derive the timeline report from the recorded trace."""
        return analyze_timeline(
            self.trace_events,
            window_us=self.slot_us if window_us is None else window_us,
        )

    def audit(self):
        """Run the online trace auditor over the recorded trace."""
        from repro.obs.audit import audit_events

        return audit_events(self.trace_events)

    def slo(self, audited: bool = True):
        """Fold the trace's downtime into an availability report,
        audit-confirmed unless ``audited`` is False."""
        from repro.obs.slo import compute_slo

        audit_ok = self.audit().ok if audited else None
        return compute_slo(self.trace_events, audit_ok=audit_ok)

    @property
    def normal_per_slot(self) -> int:
        return self.num_shards * self.offered_per_shard_per_slot

    @property
    def degraded_per_slot(self) -> int:
        return (self.num_shards - 1) * self.offered_per_shard_per_slot

    def outage_slots(self) -> List[SlotSample]:
        """Slots that lie fully inside the unavailability window."""
        return [
            s for s in self.samples
            if s.start_us > self.crash_at_us
            and s.start_us + self.slot_us <= self.takeover.service_restored_at_us
        ]

    def recovered_slots(self) -> List[SlotSample]:
        """Slots starting after service was restored *and* the retry
        backlog drained (completions back at the offered rate)."""
        drained = [
            s for s in self.samples
            if s.start_us > self.takeover.service_restored_at_us
        ]
        return [s for s in drained if s.completed == self.normal_per_slot]


@dataclass
class ShardingResult:
    scaling: List[ShardedThroughputReport]
    timeline: FailoverTimeline

    def table(self) -> ReportTable:
        table = ReportTable(
            "Extension: sharded cluster aggregate throughput "
            "(Debit-Credit, active replication, calibrated per-pair rate)",
            ["pairs", "per-pair tps", "dedicated links", "speedup",
             "one shared SAN", "SAN util."],
        )
        for report in self.scaling:
            table.add_row(
                report.shards,
                report.per_pair_tps,
                report.dedicated_tps,
                f"{report.dedicated_speedup:.2f}x",
                report.shared_san_tps,
                f"{report.shared_san_utilization * 100:.0f}%",
            )
        table.add_note(
            "disjoint shards with per-pair links scale linearly; one "
            "shared SAN caps at the link's packet-mix capacity"
        )
        timeline = self.timeline
        table.add_note(
            f"failover dip: {timeline.num_shards} shards served "
            f"{timeline.normal_per_slot}/slot, crash held "
            f"{len(timeline.outage_slots())} slots at "
            f"{timeline.degraded_per_slot}/slot "
            f"(downtime {timeline.takeover.downtime_us / 1000:.1f} ms), "
            f"then recovered"
        )
        return table

    def timeline_figure(self) -> str:
        timeline = self.timeline
        title = (
            f"Extension: aggregate completions per {timeline.slot_us:.0f} us "
            f"slot across one shard failover "
            f"({timeline.num_shards} shards, crash at "
            f"{timeline.crash_at_us / 1000:.2f} ms)"
        )
        lines = [title, "=" * len(title)]
        restored_at = timeline.takeover.service_restored_at_us
        for sample in timeline.samples:
            marks = []
            if sample.start_us <= timeline.crash_at_us < sample.start_us + timeline.slot_us:
                marks.append("<- crash")
            if sample.start_us <= restored_at < sample.start_us + timeline.slot_us:
                marks.append("<- restored")
            bar = "#" * sample.completed
            lines.append(
                f"  {sample.start_us / 1000:>5.1f} ms  "
                f"{sample.completed:>3}  {bar} {' '.join(marks)}".rstrip()
            )
        stats = timeline.router_stats
        lines.append(
            f"  router: {stats.get('routed', 0)} routed, "
            f"{stats.get('retries', 0)} retries, "
            f"{stats.get('redirects', 0)} redirects, "
            f"{stats.get('dropped', 0)} dropped"
        )
        return "\n".join(lines)

    def check(self) -> None:
        # -- scaling ----------------------------------------------------
        by_shards = {r.shards: r for r in self.scaling}
        one = by_shards[1]
        for n, report in by_shards.items():
            # Disjoint shards on dedicated links scale linearly.
            assert abs(report.dedicated_speedup - n) < 1e-9, (
                n, report.dedicated_speedup
            )
            # Sharing one SAN can only cost throughput, never add it.
            assert report.shared_san_tps <= report.dedicated_tps + 1e-9
            assert report.per_pair_tps == one.per_pair_tps
        shared = [by_shards[n].shared_san_tps for n in sorted(by_shards)]
        assert shared == sorted(shared), f"shared-SAN curve not monotone: {shared}"
        # Near-linear 1 -> 4 on dedicated links (exactly 4.0 here).
        assert by_shards[4].dedicated_tps >= 3.6 * one.dedicated_tps

        # -- failover timeline ------------------------------------------
        timeline = self.timeline
        n = timeline.num_shards
        normal = timeline.normal_per_slot
        degraded = timeline.degraded_per_slot

        pre_crash = [
            s for s in timeline.samples
            if s.start_us + timeline.slot_us <= timeline.crash_at_us
        ]
        assert pre_crash and all(s.completed == normal for s in pre_crash), (
            "healthy cluster must complete the offered rate"
        )
        outage = timeline.outage_slots()
        assert len(outage) >= 3, "takeover window too short to observe"
        assert all(s.completed == degraded for s in outage), (
            f"outage slots should degrade to exactly (n-1)/n = "
            f"{degraded}/{normal}: {[s.completed for s in outage]}"
        )
        assert timeline.recovered_slots(), "throughput never recovered"
        # The retried backlog drains: nothing is lost end to end.
        offered = sum(s.offered for s in timeline.samples)
        completed = sum(s.completed for s in timeline.samples)
        assert completed == offered, (completed, offered)
        assert timeline.router_stats["dropped"] == 0
        assert timeline.router_stats["retries"] > 0
        assert timeline.router_stats["redirects"] > 0
        # Downtime is bounded by detection plus the mirror restore.
        report = timeline.takeover
        assert report.downtime_us <= (
            HEARTBEAT_TIMEOUT_US + 2 * HEARTBEAT_INTERVAL_US
            + report.bytes_restored / 300.0 + 1.0
        )
        # The dip is 1/N of aggregate, not a full outage.
        assert degraded == normal * (n - 1) // n

        # -- trace consistency ------------------------------------------
        # Re-deriving the report from the raw trace must reproduce the
        # numbers every assertion above just consumed.
        rederived = timeline.trace_report()
        assert rederived.routing == timeline.router_stats
        spans = [
            s for s in rederived.failovers
            if s.shard_id == timeline.crashed_shard
        ]
        assert len(spans) == 1, "exactly one shard failed over"
        assert spans[0].downtime_us == report.downtime_us
        assert spans[0].crash_at_us == timeline.crash_at_us
        sampled_slots = len(
            [s for s in timeline.samples if s.offered > 0]
        )
        assert rederived.window_counts(sampled_slots) == [
            s.completed for s in timeline.samples[:sampled_slots]
        ]
        assert len(rederived.completions) == sum(
            s.completed for s in timeline.samples
        )
        # Every shard — crashed one included — eventually completed
        # exactly what it was offered; the dip was delay, not loss.
        assert sorted(rederived.per_shard_completions) == list(range(n))
        for count in rederived.per_shard_completions.values():
            assert count == SLOTS * timeline.offered_per_shard_per_slot

        # -- series consistency -----------------------------------------
        # The sampled SeriesFrame must tell the same story as the
        # trace, window for window: goodput derived from the sampler's
        # cumulative completion counter equals the trace-derived
        # half-open window counts exactly, and the dip-and-recovery
        # summaries computed from each agree.
        series = timeline.series
        assert len(series) > 0, "sampler recorded no ticks"
        deltas = timeline.goodput_windows()
        trace_counts = [float(c) for c in rederived.window_counts(len(deltas))]
        assert deltas == trace_counts, "series windows diverge from trace"
        assert sum(deltas) == float(completed)
        series_dip = timeline.series_dip()
        trace_dip = derive_dip(
            trace_counts, timeline.slot_us, float(normal)
        )
        assert series_dip is not None and series_dip == trace_dip
        assert series_dip.dip_floor == float(degraded)
        # The dip's duration brackets the measured takeover downtime
        # to within the slot quantization on each side.
        assert abs(
            series_dip.time_to_recover_us - report.downtime_us
        ) <= 2 * timeline.slot_us
        # Per-scope cumulative counters land on the per-shard totals.
        for shard in range(n):
            assert timeline.series.last(f"shard.{shard}.completed") == float(
                rederived.per_shard_completions[shard]
            )

        # -- audit + SLO ------------------------------------------------
        # A clean run must satisfy every replication invariant the
        # auditor knows, and the availability accounting must charge
        # the measured downtime to exactly the crashed shard.
        audit = timeline.audit()
        assert audit.ok, audit.render()
        slo = timeline.slo()
        assert slo.audit_ok is True
        by_scope = {s.scope: s for s in slo.scopes}
        assert set(by_scope) == {f"shard.{i}" for i in range(n)}
        for shard in range(n):
            scope = by_scope[f"shard.{shard}"]
            if shard == timeline.crashed_shard:
                assert scope.failovers == 1
                assert scope.availability < 1.0
            else:
                assert scope.downtime_us == 0.0
                assert scope.availability == 1.0
        # Cluster availability loses exactly the crashed shard's share.
        crashed = by_scope[f"shard.{timeline.crashed_shard}"]
        expected = (n - 1 + crashed.availability) / n
        assert abs(slo.cluster_availability - expected) < 1e-12

        # -- recovery decomposition -------------------------------------
        # SLO downtime and the recovery-span roots must tell one story,
        # scope by scope, window by window (this replaces the ad-hoc
        # downtime arithmetic the experiments used to duplicate).
        from repro.obs.critpath import crosscheck_recovery_slo

        decomposition = crosscheck_recovery_slo(timeline.trace_events, slo)
        crashed_scope = decomposition.scope(f"shard.{timeline.crashed_shard}")
        assert crashed_scope.recoveries == 1
        assert abs(
            crashed_scope.total_downtime_us - report.downtime_us
        ) <= 1e-6
        # Passive v1's whole-database mirror restore dominates the
        # failover — the trace-derived root cause, not an assumption.
        assert crashed_scope.dominant_phase == "catchup"
        assert crashed_scope.share("catchup") > 0.9
        # The resume instant links the recovery to the first served
        # completion, at or after restoration. A passive pair's
        # promoted engine serves bare (no commit-span recorder), so
        # the commit-tree link is absent here; the quorum experiment
        # asserts the linked variant.
        assert crashed_scope.resume_gaps == 1
        tree = decomposition.trees[0]
        assert tree.resume_gap_us is not None and tree.resume_gap_us >= 0.0
        assert tree.resume_commit_trace_id is None

        # -- alerts -----------------------------------------------------
        # The recorded burn-rate alerts are grounded: every fire
        # justified by real downtime, no justified window missed, and
        # only the crashed shard's scope ever pages.
        verification = timeline.alerts()
        assert verification.ok, verification.render()
        fires = [
            e for e in timeline.trace_events if e.name == "alert.fire"
        ]
        assert fires, "an outage this long must trip the burn-rate rules"
        assert {
            str(e.attrs["scope"]) for e in fires
        } == {f"shard.{timeline.crashed_shard}"}
        resolves = [
            e for e in timeline.trace_events if e.name == "alert.resolve"
        ]
        assert len(resolves) == len(fires), "every alert must resolve"


def failover_plan(
    num_shards: int = 4,
    slots: int = SLOTS,
    slot_us: float = SLOT_US,
    offered_per_shard: int = OFFERED_PER_SHARD_PER_SLOT,
    crash_at_us: float = CRASH_AT_US,
    crashed_shard: int = 2,
    db_bytes_per_shard: int = 4 * MB,
    seed: int = 42,
    crashes: tuple = None,
) -> TimelinePlan:
    """The failover timeline as a recorded schedule: a fixed
    round-robin load (``offered_per_shard`` transactions per shard per
    slot, keyed to the first branch each shard owns) plus one primary
    crash, replayable by either of the shardpar executors.

    ``crashes`` — a tuple of ``(shard_id, at_us)`` pairs — overrides
    the single ``crashed_shard``/``crash_at_us`` crash: the multi-crash
    schedules the widened decomposition boundary covers (each shard at
    most once; the pair model has one backup)."""
    workload = ShardedWorkload(
        "debit-credit", num_shards, db_bytes_per_shard, seed=seed
    )
    submissions = []
    for slot in range(slots):
        at_us = slot * slot_us
        for shard_id in range(num_shards):
            key = workload.partitioner.ranges[shard_id].start
            submissions.extend((at_us, key) for _ in range(offered_per_shard))
    horizon_us = slots * slot_us + 30_000.0
    return TimelinePlan(
        num_shards=num_shards,
        mode="passive",
        version="v1",  # whole-database mirror restore: a visible window
        db_bytes_per_shard=db_bytes_per_shard,
        log_bytes=512 * 1024,
        heartbeat_interval_us=HEARTBEAT_INTERVAL_US,
        heartbeat_timeout_us=HEARTBEAT_TIMEOUT_US,
        restore_bytes_per_us=300.0,
        workload="debit-credit",
        seed=seed,
        max_attempts=12,
        # The sampler's ticks are pre-scheduled *before* the load, so
        # at any shared timestamp they fire first and each sample sees
        # exactly the [0, t) prefix — the property that makes the
        # series windows match the trace windows bit for bit. The tick
        # divides the slot width (REPRO_SERIES can select a finer
        # divisor without changing any measured number).
        sample_interval_us=series_interval_us(slot_us, slot_us),
        sample_until_us=horizon_us,
        # Run past the load so the retry backlog fully drains.
        horizon_us=horizon_us,
        submissions=tuple(submissions),
        crashes=(
            ((crashed_shard, crash_at_us),) if crashes is None
            else tuple(crashes)
        ),
    )


def failover_timeline(
    num_shards: int = 4,
    slots: int = SLOTS,
    slot_us: float = SLOT_US,
    offered_per_shard: int = OFFERED_PER_SHARD_PER_SLOT,
    crash_at_us: float = CRASH_AT_US,
    crashed_shard: int = 2,
    db_bytes_per_shard: int = 4 * MB,
    seed: int = 42,
    observer: Optional[Observer] = None,
    trace_path: Optional[Union[str, "object"]] = None,
    shard_jobs: int = 1,
) -> FailoverTimeline:
    """Drive a sharded cluster through one primary crash and derive the
    per-slot timeline *from the recorded trace*.

    An :class:`~repro.obs.Observer` is always attached (recording never
    touches model state, so the numbers match an unobserved run bit for
    bit); the takeover span, slot completions and router totals all
    come out of :func:`~repro.obs.report.analyze_timeline` rather than
    the live objects. Pass ``trace_path`` to additionally dump the
    trace (and metrics snapshot) as JSONL for ``python -m
    repro.obs.report``.

    ``shard_jobs > 1`` executes the plan on the parallel per-shard
    decomposition (:mod:`repro.fastpath.shardpar`) — the trace, series
    and every derived number are byte-identical to the sequential run.
    A ``trace_path`` forces the sequential executor: the JSONL dump
    snapshots the metrics registry, which only the single-simulator
    run populates.
    """
    if observer is None:
        observer = Observer()
    plan = failover_plan(
        num_shards=num_shards,
        slots=slots,
        slot_us=slot_us,
        offered_per_shard=offered_per_shard,
        crash_at_us=crash_at_us,
        crashed_shard=crashed_shard,
        db_bytes_per_shard=db_bytes_per_shard,
        seed=seed,
    )
    jobs = shard_jobs if trace_path is None else 1
    outcome = shardpar.execute(plan, jobs=jobs, observer=observer)

    # Annotate the trace with the burn-rate alert schedule its own
    # downtime record justifies. Appended post-run (every consumer
    # selects events by name, none by position), computed purely from
    # the recorded events — deterministic across executors.
    from repro.obs.alerts import evaluate_alerts

    events = outcome.events + evaluate_alerts(outcome.events)
    report = analyze_timeline(events, window_us=slot_us)
    span = next(
        s for s in report.failovers if s.shard_id == crashed_shard
    )
    takeover = TakeoverReport(
        crash_at_us=span.crash_at_us,
        detected_at_us=span.detected_at_us,
        service_restored_at_us=span.restored_at_us,
        bytes_restored=span.bytes_restored,
    )
    samples = [
        SlotSample(
            start_us=slot * slot_us,
            offered=num_shards * offered_per_shard,
            completed=report.completions_between(
                slot * slot_us, (slot + 1) * slot_us
            ),
        )
        for slot in range(slots)
    ]
    # Completions after the sampled horizon still belong to the run;
    # fold them into a final catch-up slot so nothing goes missing.
    tail = report.completions_between(slots * slot_us, float("inf"))
    if tail:
        samples.append(SlotSample(slots * slot_us, 0, tail))
    # The trace must agree with the router's own bookkeeping — the
    # observer is a recorder, never a participant.
    assert report.routing["routed"] == outcome.routed
    assert report.routing["completed"] == outcome.completed
    assert takeover.downtime_us == outcome.takeover_downtime_us[crashed_shard]
    if trace_path is not None:
        write_jsonl(trace_path, events, metrics=observer.registry)
    return FailoverTimeline(
        num_shards=num_shards,
        slot_us=slot_us,
        offered_per_shard_per_slot=offered_per_shard,
        crashed_shard=crashed_shard,
        crash_at_us=crash_at_us,
        takeover=takeover,
        samples=samples,
        router_stats=dict(report.routing),
        trace_events=events,
        series=outcome.frame,
    )


def run(ctx: Optional[ExperimentContext] = None) -> ShardingResult:
    if ctx is None:
        ctx = ExperimentContext()
    result = ctx.active_result("debit-credit")
    single = ctx.estimator().active(result)
    per_txn_trace = result.packets_per_txn()
    scaling = [
        sharded_aggregate(single, n, per_txn_trace=per_txn_trace)
        for n in SHARD_COUNTS
    ]
    timeline = failover_timeline(
        seed=ctx.settings.seed, shard_jobs=ctx.settings.shard_jobs
    )
    return ShardingResult(scaling=scaling, timeline=timeline)
