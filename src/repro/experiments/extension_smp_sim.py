"""Extension: validate the Figures 2/3 closed form by simulation.

The figures use ``min(n * single_stream, link_capacity)``. Here the
same measured packet schedules drive a discrete-event simulation of n
streams contending for one FIFO link with write-buffer backpressure,
and the two are compared. Agreement means the figures do not depend on
the closed form's simplifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import ExperimentContext
from repro.perf.report import ReportTable
from repro.perf.smp_sim import simulate_from_run

MB = 1024 * 1024
STREAM_DB_BYTES = 10 * MB
PROCESSORS = (1, 2, 3, 4)


@dataclass
class SmpValidationResult:
    #: workload -> config -> [(analytic, simulated) per processor count]
    curves: Dict[str, Dict[str, List[tuple]]]

    def table(self) -> ReportTable:
        table = ReportTable(
            "Extension: SMP closed form vs discrete-event simulation "
            "(aggregate txns/sec)",
            ["workload/config", "CPUs", "analytic", "simulated", "delta"],
        )
        for workload, configs in self.curves.items():
            for config, points in configs.items():
                for processors, (analytic, simulated) in zip(PROCESSORS, points):
                    delta = (simulated - analytic) / analytic * 100
                    table.add_row(
                        f"{workload} {config}", processors,
                        analytic, simulated, f"{delta:+.0f}%",
                    )
        table.add_note(
            "the simulation includes FIFO queueing and write-buffer "
            "stalls the closed form ignores"
        )
        return table

    def check(self, tolerance: float = 0.35) -> None:
        """Simulated and analytic agree within ``tolerance`` at every
        point, and the qualitative shapes match."""
        for workload, configs in self.curves.items():
            for config, points in configs.items():
                for processors, (analytic, simulated) in zip(PROCESSORS, points):
                    error = abs(simulated - analytic) / analytic
                    assert error <= tolerance, (
                        workload, config, processors, analytic, simulated,
                    )


def run(ctx: ExperimentContext, configs=("active", "passive-v3", "passive-v1"),
        duration_us: float = 20_000.0) -> SmpValidationResult:
    estimator = ctx.estimator()
    curves: Dict[str, Dict[str, List[tuple]]] = {}
    for workload in ("debit-credit", "order-entry"):
        curves[workload] = {}
        for config in configs:
            if config == "active":
                result = ctx.active_result(workload, STREAM_DB_BYTES)
                report = estimator.active(result)
            else:
                version = config.split("-")[1]
                result = ctx.passive_result(version, workload, STREAM_DB_BYTES)
                report = estimator.passive(result)
            points = []
            for processors in PROCESSORS:
                analytic = estimator.smp_aggregate(report, processors)
                # Each stream computes for its pure CPU time; link
                # occupancy, queueing and write-buffer stalls all
                # emerge from the simulation. The closed form is the
                # conservative side at one CPU (it charges a partial
                # overlap penalty; pure backpressure hides more).
                simulated = ctx.memo(
                    ("smp-sim", workload, config, processors, duration_us),
                    lambda: simulate_from_run(
                        result, cpu_us=report.cpu_us,
                        processors=processors, duration_us=duration_us,
                    ),
                )
                points.append((analytic, simulated.aggregate_tps))
            curves[workload][config] = points
    return SmpValidationResult(curves=curves)
