"""Figure 1 — effective Memory Channel bandwidth vs packet size.

Reproduces the paper's strided-write microbenchmark: writing a large
region with varying strides produces fixed-size packets (stride one ->
32-byte packets, stride two -> 16-byte, ...); effective bandwidth is
bytes over link time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.perf.calibration import PAPER
from repro.perf.report import ReportTable, ratio
from repro.san.ping_pong import BandwidthPoint, run_figure1_sweep


@dataclass
class Figure1Result:
    points: List[BandwidthPoint]
    paper: Dict[int, float]

    def table(self) -> ReportTable:
        table = ReportTable(
            "Figure 1: Effective bandwidth vs Memory Channel packet size",
            ["packet", "measured MB/s", "paper MB/s", "ratio"],
        )
        for point in self.points:
            paper = self.paper[point.packet_bytes]
            table.add_row(
                f"{point.packet_bytes} bytes",
                point.effective_mb_per_s,
                paper,
                ratio(point.effective_mb_per_s, paper),
            )
        table.add_note(
            "bandwidth grows with packet size because the per-packet "
            "overhead amortizes; 32-byte packets reach the link's peak"
        )
        return table

    def check(self) -> None:
        """Shape invariants: monotonic growth, correct endpoints."""
        bandwidths = [point.effective_mb_per_s for point in self.points]
        assert bandwidths == sorted(bandwidths), (
            f"bandwidth must grow with packet size: {bandwidths}"
        )
        by_size = {p.packet_bytes: p.effective_mb_per_s for p in self.points}
        assert 10.0 <= by_size[4] <= 18.0, by_size
        assert 70.0 <= by_size[32] <= 90.0, by_size


def run(region_bytes: int = 1 << 18) -> Figure1Result:
    points = run_figure1_sweep(region_bytes=region_bytes)
    return Figure1Result(points=points, paper=dict(PAPER["figure1"]))
