"""Figures 2 and 3 — SMP primary scaling.

One independent transaction stream per CPU (disjoint data, 10 MB of
database per stream, as in Section 8), all sharing a single Memory
Channel link to the backup. Aggregate throughput is capped by the
link's carrying capacity for each protocol's packet mix:

* the active scheme's compact 32-byte-packet redo stream scales nearly
  linearly to 4 CPUs;
* passive logging (Version 3) ships more bytes in mixed packets and
  saturates around 2 CPUs;
* the mirroring versions' word-size packets see under 20 MB/s and
  barely scale at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import ExperimentContext
from repro.perf.report import ascii_series
from repro.perf.throughput import ThroughputReport

from repro.experiments.table3 import WORKLOADS

MB = 1024 * 1024
STREAM_DB_BYTES = 10 * MB  # "a 10 Mbyte database per transaction stream"
PROCESSORS = (1, 2, 3, 4)

CONFIGS = ("active", "passive-v3", "passive-v2", "passive-v1")
LABELS = {
    "active": "Active",
    "passive-v3": "Pass. Ver. 3",
    "passive-v2": "Pass. Ver. 2",
    "passive-v1": "Pass. Ver. 1",
}


@dataclass
class Figures23Result:
    #: workload -> config -> [tps at 1..4 processors]
    aggregate: Dict[str, Dict[str, List[float]]]
    singles: Dict[str, Dict[str, ThroughputReport]]

    def figure(self, workload: str) -> str:
        number = "2" if workload == "debit-credit" else "3"
        return ascii_series(
            f"Figure {number}: SMP primary aggregate throughput "
            f"({workload}, txns/sec)",
            PROCESSORS,
            [
                (LABELS[config], self.aggregate[workload][config])
                for config in CONFIGS
            ],
        )

    def check(self) -> None:
        for workload in WORKLOADS:
            curves = self.aggregate[workload]
            # Active scales best and is close to linear.
            active = curves["active"]
            assert active[3] >= 3.0 * active[0], (
                f"{workload}: active should be near-linear: {active}"
            )
            # Passive logging saturates: 4 CPUs buy little over 2.
            passive3 = curves["passive-v3"]
            assert passive3[3] <= passive3[1] * 1.35, (
                f"{workload}: passive V3 should saturate by ~2 CPUs: {passive3}"
            )
            # Mirror-by-copy barely scales at all.
            passive1 = curves["passive-v1"]
            assert passive1[3] <= passive1[0] * 1.6, (
                f"{workload}: mirroring should not scale: {passive1}"
            )
            # Active dominates every other config at 4 CPUs.
            for config in ("passive-v3", "passive-v2", "passive-v1"):
                assert active[3] > curves[config][3] * 1.5, (
                    workload, config, active[3], curves[config][3],
                )


def run(ctx: ExperimentContext) -> Figures23Result:
    estimator = ctx.estimator()
    aggregate: Dict[str, Dict[str, List[float]]] = {}
    singles: Dict[str, Dict[str, ThroughputReport]] = {}
    for workload in WORKLOADS:
        aggregate[workload] = {}
        singles[workload] = {}
        reports = {
            "active": estimator.active(
                ctx.active_result(workload, STREAM_DB_BYTES)
            ),
            "passive-v3": estimator.passive(
                ctx.passive_result("v3", workload, STREAM_DB_BYTES)
            ),
            "passive-v2": estimator.passive(
                ctx.passive_result("v2", workload, STREAM_DB_BYTES)
            ),
            "passive-v1": estimator.passive(
                ctx.passive_result("v1", workload, STREAM_DB_BYTES)
            ),
        }
        for config, report in reports.items():
            singles[workload][config] = report
            aggregate[workload][config] = [
                estimator.smp_aggregate(report, n) for n in PROCESSORS
            ]
    return Figures23Result(aggregate=aggregate, singles=singles)
