"""Shared experiment machinery.

:class:`ExperimentContext` owns the settings, runs (and caches) the
driven workload measurements each experiment needs, and produces the
calibrated throughput estimator. The calibration fits exactly two
numbers — the per-benchmark base cost, anchored to Table 3's Version 3
standalone row — and everything else in every experiment is a
prediction from measured counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.memory.rio import RioMemory
from repro.perf.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perf.throughput import ThroughputEstimator, calibrate_bases
from repro.replication.active import ActiveReplicatedSystem
from repro.replication.passive import PassiveReplicatedSystem
from repro.vista.api import EngineConfig
from repro.vista.factory import create_engine
from repro.workloads import (
    DebitCreditWorkload,
    OrderEntryWorkload,
    RunResult,
    run_workload,
)

MB = 1024 * 1024

WORKLOAD_CLASSES = {
    "debit-credit": DebitCreditWorkload,
    "order-entry": OrderEntryWorkload,
}

#: The paper's default database size (Section 2.4).
PAPER_DB_BYTES = 50 * MB


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs controlling experiment cost/fidelity."""

    transactions: int = 1500
    warmup: int = 100
    seed: int = 42
    allocated_db_bytes: int = 8 * MB
    log_bytes: int = 2 * MB
    nominal_db_bytes: int = PAPER_DB_BYTES
    #: Worker processes for the per-shard parallel simulation executor
    #: (:mod:`repro.fastpath.shardpar`); 1 = the sequential reference.
    #: Outputs are byte-identical at any value.
    shard_jobs: int = 1

    def engine_config(self, nominal: Optional[int] = None) -> EngineConfig:
        return EngineConfig(
            db_bytes=self.allocated_db_bytes,
            nominal_db_bytes=nominal or self.nominal_db_bytes,
            log_bytes=self.log_bytes,
        )


class ExperimentContext:
    """Runs and caches the measurements behind the tables/figures."""

    def __init__(self, settings: Optional[ExperimentSettings] = None,
                 calibration: Calibration = DEFAULT_CALIBRATION):
        self.settings = settings or ExperimentSettings()
        self._base_calibration = calibration
        self._calibrated: Optional[Calibration] = None
        self._cache: Dict[Tuple, RunResult] = {}
        self._memo: Dict[Tuple, object] = {}

    # -- precomputation hooks ------------------------------------------------

    def memo(self, key: Tuple, thunk):
        """Memoized derived computation (e.g. a discrete-event SMP
        simulation). Deterministic thunks only: the parallel runner
        precomputes these in worker processes and installs the values
        via :meth:`preload`, so a memoized value must equal what the
        thunk would produce in this process."""
        if key not in self._memo:
            self._memo[key] = thunk()
        return self._memo[key]

    def preload(self, cells: Optional[Dict] = None,
                memos: Optional[Dict] = None) -> None:
        """Seed the run cache and memo table with values computed
        elsewhere (the ``--jobs`` runner computes cells in worker
        processes and installs them here before rendering). Any cell
        missing from the preload is simply computed inline."""
        if cells:
            self._cache.update(cells)
        if memos:
            self._memo.update(memos)

    # -- workload helpers ---------------------------------------------------

    def _workload(self, name: str):
        cls = WORKLOAD_CLASSES[name]
        return cls(self.settings.allocated_db_bytes, seed=self.settings.seed)

    def _run(self, key: Tuple, target, workload) -> RunResult:
        if key in self._cache:
            return self._cache[key]
        workload.setup(target)
        sync = getattr(target, "sync_initial", None)
        if sync is not None:
            sync()
        result = run_workload(
            target,
            workload,
            self.settings.transactions,
            warmup=self.settings.warmup,
            verify=True,
        )
        self._cache[key] = result
        return result

    # -- measured runs ----------------------------------------------------------

    def standalone_result(
        self, version: str, workload_name: str, nominal: Optional[int] = None
    ) -> RunResult:
        key = ("standalone", version, workload_name, nominal)
        if key in self._cache:
            return self._cache[key]
        config = self.settings.engine_config(nominal)
        rio = RioMemory(f"standalone-{version}-{workload_name}")
        engine = create_engine(version, rio, config)
        return self._run(key, engine, self._workload(workload_name))

    def passive_result(
        self,
        version: str,
        workload_name: str,
        nominal: Optional[int] = None,
        ship_undo_log: bool = False,
        coalescing: bool = True,
    ) -> RunResult:
        key = ("passive", version, workload_name, nominal, ship_undo_log, coalescing)
        if key in self._cache:
            return self._cache[key]
        config = self.settings.engine_config(nominal)
        system = PassiveReplicatedSystem(
            version, config, ship_undo_log=ship_undo_log
        )
        if not coalescing:
            _disable_coalescing(system.interface)
        return self._run(key, system, self._workload(workload_name))

    def active_result(
        self, workload_name: str, nominal: Optional[int] = None,
        coalescing: bool = True,
    ) -> RunResult:
        key = ("active", workload_name, nominal, coalescing)
        if key in self._cache:
            return self._cache[key]
        config = self.settings.engine_config(nominal)
        system = ActiveReplicatedSystem(config)
        if not coalescing:
            _disable_coalescing(system.primary_interface)
        return self._run(key, system, self._workload(workload_name))

    # -- calibration ----------------------------------------------------------------

    def calibration(self) -> Calibration:
        """The calibrated constants: base costs anchored to Table 3's
        Version 3 standalone row at the paper's 50 MB database."""
        if self._calibrated is None:
            anchors = {
                name: self.standalone_result("v3", name, PAPER_DB_BYTES)
                for name in WORKLOAD_CLASSES
            }
            self._calibrated = calibrate_bases(self._base_calibration, anchors)
        return self._calibrated

    def estimator(self) -> ThroughputEstimator:
        return ThroughputEstimator(self.calibration())


def _disable_coalescing(interface) -> None:
    """Ablation hook: make every I/O-space store its own packet by
    shrinking the write buffers to one 4-byte slot (models a network
    interface with no write-combining)."""
    from repro.hardware.writebuffer import writebuffer_model

    interface.write_buffer = writebuffer_model(
        num_buffers=1, block_bytes=4, on_packet=interface.record_packet
    )


def scale_to_paper_mb(bytes_per_txn: float, workload_name: str) -> float:
    """Convert measured bytes/transaction into the MB a paper-length
    run would ship, for side-by-side comparison with Tables 2/5/7.

    The paper's runs are ~4.98 M Debit-Credit transactions (22.8 s at
    218,627 tps) and ~457 k Order-Entry transactions (6.2 s at
    73,748 tps).
    """
    paper_txns = {"debit-credit": 4_984_695, "order-entry": 457_238}
    return bytes_per_txn * paper_txns[workload_name] / MB
