"""Tables 6 and 7 — the best passive scheme versus the active backup.

The active backup ships only a redo log of committed changes (no undo
data, no mirror) through the circular buffer; the backup CPU applies
it. It wins moderately on throughput (14% / 29% in the paper) and
dramatically on bytes shipped (2x / 4x less).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import (
    ExperimentContext,
    PAPER_DB_BYTES,
    scale_to_paper_mb,
)
from repro.perf.calibration import PAPER
from repro.perf.report import ReportTable, ratio

from repro.experiments.table3 import WORKLOADS

#: Paper Table 7, MB over the paper-length run.
PAPER_TABLE7 = {
    "debit-credit": {
        "passive-v3": {"modified": 140.8, "undo": 323.2, "meta": 141.4, "total": 605.4},
        "active": {"modified": 140.8, "undo": 0.0, "meta": 141.4, "total": 282.2},
    },
    "order-entry": {
        "passive-v3": {"modified": 38.9, "undo": 199.8, "meta": 14.5, "total": 253.2},
        "active": {"modified": 38.9, "undo": 0.0, "meta": 24.7, "total": 63.6},
    },
}


@dataclass
class Table67Result:
    tps: Dict[str, Dict[str, float]]  # workload -> {passive-v3, active}
    traffic_mb: Dict[str, Dict[str, Dict[str, float]]]

    def table6(self) -> ReportTable:
        table = ReportTable(
            "Table 6: Passive vs Active backup throughput (txns/sec)",
            ["configuration", "Debit-Credit", "paper", "ratio",
             "Order-Entry", "paper", "ratio"],
        )
        paper_passive = PAPER["passive"]
        paper_active = PAPER["active"]
        table.add_row(
            "Best Passive (Version 3)",
            self.tps["debit-credit"]["passive-v3"],
            paper_passive["debit-credit"]["v3"],
            ratio(self.tps["debit-credit"]["passive-v3"],
                  paper_passive["debit-credit"]["v3"]),
            self.tps["order-entry"]["passive-v3"],
            paper_passive["order-entry"]["v3"],
            ratio(self.tps["order-entry"]["passive-v3"],
                  paper_passive["order-entry"]["v3"]),
        )
        table.add_row(
            "Active",
            self.tps["debit-credit"]["active"],
            paper_active["debit-credit"]["active"],
            ratio(self.tps["debit-credit"]["active"],
                  paper_active["debit-credit"]["active"]),
            self.tps["order-entry"]["active"],
            paper_active["order-entry"]["active"],
            ratio(self.tps["order-entry"]["active"],
                  paper_active["order-entry"]["active"]),
        )
        for workload in WORKLOADS:
            gain = (
                self.tps[workload]["active"] / self.tps[workload]["passive-v3"]
                - 1.0
            ) * 100
            paper_gain = (
                PAPER["active"][workload]["active"]
                / PAPER["passive"][workload]["v3"]
                - 1.0
            ) * 100
            table.add_note(
                f"{workload}: active gains {gain:.0f}% "
                f"(paper: {paper_gain:.0f}%)"
            )
        return table

    def table7(self) -> ReportTable:
        table = ReportTable(
            "Table 7: Data transferred, active vs best passive "
            "(MB, paper-length run)",
            ["benchmark/config", "modified", "paper", "undo", "paper",
             "meta", "paper", "total", "paper"],
        )
        for workload in WORKLOADS:
            for config in ("passive-v3", "active"):
                measured = self.traffic_mb[workload][config]
                paper = PAPER_TABLE7[workload][config]
                table.add_row(
                    f"{workload} {config}",
                    measured.get("modified", 0.0), paper["modified"],
                    measured.get("undo", 0.0), paper["undo"],
                    measured.get("meta", 0.0), paper["meta"],
                    sum(measured.values()), paper["total"],
                )
        table.add_note(
            "the active scheme ships no undo data at all; its meta-data "
            "describes scattered modified bytes, so Order-Entry needs "
            "more redo records than set_range records"
        )
        return table

    def check(self) -> None:
        for workload in WORKLOADS:
            active = self.tps[workload]["active"]
            passive = self.tps[workload]["passive-v3"]
            assert active > passive, (workload, active, passive)
            assert active < passive * 1.6, (
                "the active gain should be moderate, not dramatic",
                workload, active, passive,
            )
            active_total = sum(self.traffic_mb[workload]["active"].values())
            passive_total = sum(self.traffic_mb[workload]["passive-v3"].values())
            assert active_total < passive_total / 1.8, (
                workload, active_total, passive_total,
            )
            assert self.traffic_mb[workload]["active"].get("undo", 0.0) == 0.0


def run(ctx: ExperimentContext) -> Table67Result:
    estimator = ctx.estimator()
    tps: Dict[str, Dict[str, float]] = {}
    traffic: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload in WORKLOADS:
        passive = ctx.passive_result("v3", workload, PAPER_DB_BYTES)
        active = ctx.active_result(workload, PAPER_DB_BYTES)
        tps[workload] = {
            "passive-v3": estimator.passive(passive).tps,
            "active": estimator.active(active).tps,
        }
        traffic[workload] = {}
        for config, result in (("passive-v3", passive), ("active", active)):
            per_txn = result.traffic_per_txn()
            traffic[workload][config] = {
                category: scale_to_paper_mb(count, workload)
                for category, count in per_txn.items()
                if category != "total"
            }
        traffic[workload]["active"].setdefault("undo", 0.0)
    return Table67Result(tps=tps, traffic_mb=traffic)
