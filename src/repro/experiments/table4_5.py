"""Tables 4 and 5 — primary-backup with a passive backup.

Table 4: throughput of each version write-doubling its replicated
structures to an idle backup. Table 5: the traffic each version ships,
broken into modified / undo / meta-data.

The paper's headline: Version 3 wins *despite sending more bytes than
Version 2*, because its log writes coalesce into large Memory Channel
packets while the mirror versions' scattered writes ride in small ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import (
    ExperimentContext,
    PAPER_DB_BYTES,
    scale_to_paper_mb,
)
from repro.perf.calibration import PAPER
from repro.perf.report import ReportTable, ratio
from repro.vista.factory import ENGINE_VERSIONS

from repro.experiments.table3 import TITLES, WORKLOADS

#: Paper Table 5, in MB over the paper-length run.
PAPER_TABLE5 = {
    "debit-credit": {
        "v0": {"modified": 140.8, "undo": 323.2, "meta": 6708.4, "total": 7172.4},
        "v1": {"modified": 140.8, "undo": 323.2, "meta": 40.4, "total": 504.4},
        "v2": {"modified": 140.8, "undo": 140.8, "meta": 40.4, "total": 322.1},
        "v3": {"modified": 140.8, "undo": 323.2, "meta": 141.4, "total": 605.4},
    },
    "order-entry": {
        "v0": {"modified": 38.9, "undo": 199.8, "meta": 433.6, "total": 672.3},
        "v1": {"modified": 38.9, "undo": 199.8, "meta": 3.7, "total": 242.4},
        "v2": {"modified": 38.9, "undo": 38.9, "meta": 3.7, "total": 81.5},
        "v3": {"modified": 38.9, "undo": 199.8, "meta": 14.5, "total": 253.2},
    },
}


@dataclass
class Table45Result:
    tps: Dict[str, Dict[str, float]]
    traffic_mb: Dict[str, Dict[str, Dict[str, float]]]

    def table4(self) -> ReportTable:
        table = ReportTable(
            "Table 4: Primary-backup (passive) throughput (txns/sec)",
            ["version", "Debit-Credit", "paper", "ratio",
             "Order-Entry", "paper", "ratio"],
        )
        for version in ENGINE_VERSIONS:
            dc = self.tps["debit-credit"][version]
            oe = self.tps["order-entry"][version]
            paper_dc = PAPER["passive"]["debit-credit"][version]
            paper_oe = PAPER["passive"]["order-entry"][version]
            table.add_row(
                TITLES[version], dc, paper_dc, ratio(dc, paper_dc),
                oe, paper_oe, ratio(oe, paper_oe),
            )
        table.add_note(
            "V3 outperforms the mirror versions despite shipping more "
            "bytes — its contiguous log coalesces into 32-byte packets"
        )
        return table

    def table5(self) -> ReportTable:
        table = ReportTable(
            "Table 5: Data transferred to the passive backup "
            "(MB, paper-length run)",
            ["benchmark/version", "modified", "paper", "undo", "paper",
             "meta", "paper", "total", "paper"],
        )
        for workload in WORKLOADS:
            for version in ENGINE_VERSIONS:
                measured = self.traffic_mb[workload][version]
                paper = PAPER_TABLE5[workload][version]
                table.add_row(
                    f"{workload} {version}",
                    measured.get("modified", 0.0), paper["modified"],
                    measured.get("undo", 0.0), paper["undo"],
                    measured.get("meta", 0.0), paper["meta"],
                    sum(measured.values()), paper["total"],
                )
        return table

    def check(self) -> None:
        for workload in WORKLOADS:
            tps = self.tps[workload]
            assert tps["v3"] > tps["v2"] > tps["v1"] > tps["v0"], (
                f"{workload}: passive ordering violated: {tps}"
            )
            # V3 ships more than V2 yet wins (the locality argument).
            v3_total = sum(self.traffic_mb[workload]["v3"].values())
            v2_total = sum(self.traffic_mb[workload]["v2"].values())
            assert v3_total > v2_total, (workload, v3_total, v2_total)
            # V0 ships an order of magnitude more than any other version.
            v0_total = sum(self.traffic_mb[workload]["v0"].values())
            assert v0_total > 3 * v3_total, (workload, v0_total, v3_total)


def run(ctx: ExperimentContext) -> Table45Result:
    estimator = ctx.estimator()
    tps: Dict[str, Dict[str, float]] = {}
    traffic: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload in WORKLOADS:
        tps[workload] = {}
        traffic[workload] = {}
        for version in ENGINE_VERSIONS:
            result = ctx.passive_result(version, workload, PAPER_DB_BYTES)
            tps[workload][version] = estimator.passive(result).tps
            per_txn = result.traffic_per_txn()
            traffic[workload][version] = {
                category: scale_to_paper_mb(count, workload)
                for category, count in per_txn.items()
                if category != "total"
            }
    return Table45Result(tps=tps, traffic_mb=traffic)
