"""Cell plans for the process-parallel experiment runner.

The experiments share one :class:`~repro.experiments.common.
ExperimentContext` cache, and every cache entry — a *cell* — is a pure
function of the :class:`ExperimentSettings` (each cell builds a fresh
system and a fresh seeded workload). That makes cells safe to compute
in worker processes: the runner fans the plan over a pool, installs
the returned ``RunResult`` objects via ``ctx.preload()``, and renders
the experiments sequentially in-process, so the output is byte for
byte what a sequential run prints, at any ``--jobs`` value.

The plan is advisory, not load-bearing: a cell missing from the plan
(say, after an experiment module grows a new configuration) is simply
computed inline by the rendering pass, exactly as without ``--jobs``.

Two task shapes exist:

* *cells* — driven workload runs, keyed exactly like the context
  cache (``("passive", version, workload, nominal, ship_undo_log,
  coalescing)`` and friends);
* *SMP simulation memos* — the discrete-event validations behind the
  ``smp-validation`` extension, which dominate a full-grid run's
  wall-clock and are pure functions of an already-measured cell plus
  the calibrated per-transaction CPU time.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.experiments.common import (
    MB,
    PAPER_DB_BYTES,
    ExperimentContext,
    ExperimentSettings,
)

WORKLOADS = ("debit-credit", "order-entry")
VERSIONS = ("v0", "v1", "v2", "v3")
STREAM_DB_BYTES = 10 * MB

#: A cell spec: (kind, full argument tuple of the context method).
CellSpec = Tuple[str, tuple]

#: Anchors for :meth:`ExperimentContext.calibration`.
CALIBRATION_CELLS: List[CellSpec] = [
    ("standalone", ("v3", workload, PAPER_DB_BYTES)) for workload in WORKLOADS
]

_SMP_CONFIGS = ("active", "passive-v3", "passive-v1")
_SMP_PROCESSORS = (1, 2, 3, 4)
_SMP_DURATION_US = 20_000.0


def _experiment_cells(key: str) -> List[CellSpec]:
    """The driven-run cells experiment ``key`` reads from the cache."""
    paper, stream = PAPER_DB_BYTES, STREAM_DB_BYTES
    cells: List[CellSpec] = []
    if key == "table1":
        for workload in WORKLOADS:
            cells.append(("standalone", ("v0", workload, paper)))
            cells.append(("passive", ("v0", workload, paper, False, True)))
    elif key == "table3":
        for workload in WORKLOADS:
            for version in VERSIONS:
                cells.append(("standalone", (version, workload, paper)))
    elif key == "table4":
        for workload in WORKLOADS:
            for version in VERSIONS:
                cells.append(("passive", (version, workload, paper, False, True)))
    elif key == "table6":
        for workload in WORKLOADS:
            cells.append(("passive", ("v3", workload, paper, False, True)))
            cells.append(("active", (workload, paper, True)))
    elif key == "table8":
        for workload in WORKLOADS:
            for nominal in (10 * MB, 100 * MB, 1024 * MB):
                cells.append(("active", (workload, nominal, True)))
    elif key == "figures2-3":
        for workload in WORKLOADS:
            cells.append(("active", (workload, stream, True)))
            for version in ("v3", "v2", "v1"):
                cells.append(("passive", (version, workload, stream, False, True)))
    elif key == "ablations":
        for workload in WORKLOADS:
            cells.append(("passive", ("v3", workload, paper, False, True)))
            cells.append(("passive", ("v3", workload, paper, False, False)))
            cells.append(("active", (workload, paper, True)))
            cells.append(("passive", ("v1", workload, paper, False, True)))
            cells.append(("passive", ("v1", workload, paper, True, True)))
    elif key == "smp-validation":
        for workload in WORKLOADS:
            cells.append(("active", (workload, stream, True)))
            cells.append(("passive", ("v3", workload, stream, False, True)))
            cells.append(("passive", ("v1", workload, stream, False, True)))
    elif key == "sensitivity":
        for workload in WORKLOADS:
            cells.append(("standalone", ("v3", workload, paper)))
            cells.append(("standalone", ("v0", workload, paper)))
            for version in VERSIONS:
                cells.append(("passive", (version, workload, paper, False, True)))
            cells.append(("active", (workload, paper, True)))
    elif key == "sharding":
        cells.append(("active", ("debit-credit", None, True)))
    # figure1 / recovery build their own clusters and read no cells;
    # quorum's runs are pure discrete-event simulations of the seed.
    return cells


#: Experiments that never call ``ctx.estimator()``.
_NO_CALIBRATION = frozenset({"figure1", "recovery", "quorum"})


def plan_for(experiment_keys: Iterable[str]) -> List[CellSpec]:
    """Deduplicated cell plan for the selected experiments, in a
    deterministic order (calibration anchors first, since every
    estimator call needs them)."""
    keys = list(experiment_keys)
    plan: List[CellSpec] = []
    if any(key not in _NO_CALIBRATION for key in keys):
        plan.extend(CALIBRATION_CELLS)
    for key in keys:
        plan.extend(_experiment_cells(key))
    seen = set()
    deduped = []
    for spec in plan:
        if spec not in seen:
            seen.add(spec)
            deduped.append(spec)
    return deduped


def cache_key(spec: CellSpec) -> Tuple:
    """The context-cache key this spec's result lands under."""
    kind, args = spec
    return (kind,) + tuple(args)


def compute_cell(task: Tuple[ExperimentSettings, CellSpec]):
    """Pool worker: measure one cell in a fresh context.

    Returns ``(cache_key, RunResult)`` — both picklable, and identical
    to what the main process would compute (fresh system, fresh seeded
    workload, same settings).
    """
    settings, spec = task
    ctx = ExperimentContext(settings)
    kind, args = spec
    method = {
        "standalone": ctx.standalone_result,
        "passive": ctx.passive_result,
        "active": ctx.active_result,
    }[kind]
    return cache_key(spec), method(*args)


def smp_sim_tasks(ctx: ExperimentContext) -> List[tuple]:
    """Build the SMP discrete-event simulation tasks.

    Must run *after* the cells are preloaded: each task carries the
    measured ``RunResult`` and the calibrated per-transaction CPU time
    its simulation needs, so workers do no redundant measuring."""
    estimator = ctx.estimator()
    tasks = []
    for workload in WORKLOADS:
        for config in _SMP_CONFIGS:
            if config == "active":
                result = ctx.active_result(workload, STREAM_DB_BYTES)
                report = estimator.active(result)
            else:
                version = config.split("-")[1]
                result = ctx.passive_result(version, workload, STREAM_DB_BYTES)
                report = estimator.passive(result)
            for processors in _SMP_PROCESSORS:
                key = ("smp-sim", workload, config, processors, _SMP_DURATION_US)
                tasks.append((key, result, report.cpu_us, processors))
    return tasks


def compute_smp_sim(task: tuple):
    """Pool worker: one discrete-event SMP simulation point."""
    from repro.perf.smp_sim import simulate_from_run

    key, result, cpu_us, processors = task
    simulated = simulate_from_run(
        result, cpu_us=cpu_us, processors=processors,
        duration_us=_SMP_DURATION_US,
    )
    return key, simulated


def _cell_metrics_snapshot():
    """The worker's default-observer metrics for the cell just
    computed, or None when observation is off (the common case)."""
    from repro.obs.observer import get_default_observer

    observer = get_default_observer()
    if not observer.enabled:
        return None
    return observer.registry.snapshot()


def compute_cell_observed(task: Tuple[ExperimentSettings, CellSpec]):
    """Pool worker for observed runs: ``compute_cell`` plus the cell's
    own metrics snapshot.

    A pool process computes many cells back to back against one
    process-global default observer, so each cell starts by resetting
    it — otherwise a cell's snapshot would also contain every earlier
    cell's counts and the runner's merge would double-count them.
    Returns ``(cache_key, RunResult, snapshot-or-None)``.
    """
    from repro.obs.observer import reset_default_observer

    reset_default_observer()
    key, result = compute_cell(task)
    return key, result, _cell_metrics_snapshot()


def compute_smp_sim_observed(task: tuple):
    """Pool worker: one observed SMP simulation point, with its
    metrics snapshot (same reset discipline as
    :func:`compute_cell_observed`)."""
    from repro.obs.observer import reset_default_observer

    reset_default_observer()
    key, simulated = compute_smp_sim(task)
    return key, simulated, _cell_metrics_snapshot()
