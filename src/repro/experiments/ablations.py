"""Ablation experiments beyond the paper.

These quantify the design choices the paper argues for qualitatively:

* **coalescing** — re-run the best passive scheme with a network
  interface that cannot write-combine (every store is its own packet).
  How much of Version 3's win is packet aggregation?
* **two-safe** — close the 1-safe window by waiting for the backup's
  acknowledgment at commit. What does the round trip cost?
* **mirror undo shipping** — disable the Section 5.1 optimization and
  write the set_range coordinate array through for Version 1. What
  does the faster failover cost during normal operation?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import ExperimentContext, PAPER_DB_BYTES
from repro.perf.report import ReportTable

from repro.experiments.table3 import WORKLOADS


@dataclass
class AblationResult:
    rows: Dict[str, Dict[str, float]]  # ablation -> workload -> tps

    def table(self) -> ReportTable:
        table = ReportTable(
            "Ablations: what each design choice is worth (txns/sec)",
            ["configuration", "Debit-Credit", "Order-Entry"],
        )
        order = (
            "passive-v3",
            "passive-v3-no-coalescing",
            "active",
            "active-2safe",
            "passive-v1",
            "passive-v1-ship-undo",
        )
        for name in order:
            table.add_row(
                name,
                self.rows[name]["debit-credit"],
                self.rows[name]["order-entry"],
            )
        table.add_note(
            "no-coalescing: a SAN without write-combining; 2safe: commit "
            "waits for the backup round trip; ship-undo: Section 5.1 "
            "optimization disabled"
        )
        return table

    def check(self) -> None:
        for workload in WORKLOADS:
            # Write-combining is load-bearing for the logging scheme.
            assert (
                self.rows["passive-v3-no-coalescing"][workload]
                < self.rows["passive-v3"][workload]
            ), workload
            # 2-safe costs a round trip but must stay within ~2x.
            assert (
                self.rows["active-2safe"][workload]
                < self.rows["active"][workload]
            ), workload
            # The round trip is ~6.6 us against a 3.6-13 us transaction,
            # so the hit is large for Debit-Credit, mild for Order-Entry.
            assert (
                self.rows["active-2safe"][workload]
                > self.rows["active"][workload] / 6.0
            ), workload
            # Shipping the coordinate array can only add traffic/time.
            assert (
                self.rows["passive-v1-ship-undo"][workload]
                <= self.rows["passive-v1"][workload] * 1.001
            ), workload


def run(ctx: ExperimentContext) -> AblationResult:
    estimator = ctx.estimator()
    rows: Dict[str, Dict[str, float]] = {
        name: {}
        for name in (
            "passive-v3", "passive-v3-no-coalescing",
            "active", "active-2safe",
            "passive-v1", "passive-v1-ship-undo",
        )
    }
    for workload in WORKLOADS:
        rows["passive-v3"][workload] = estimator.passive(
            ctx.passive_result("v3", workload, PAPER_DB_BYTES)
        ).tps
        rows["passive-v3-no-coalescing"][workload] = estimator.passive(
            ctx.passive_result("v3", workload, PAPER_DB_BYTES, coalescing=False)
        ).tps
        active = ctx.active_result(workload, PAPER_DB_BYTES)
        rows["active"][workload] = estimator.active(active).tps
        rows["active-2safe"][workload] = estimator.active(
            active, two_safe=True
        ).tps
        rows["passive-v1"][workload] = estimator.passive(
            ctx.passive_result("v1", workload, PAPER_DB_BYTES)
        ).tps
        rows["passive-v1-ship-undo"][workload] = estimator.passive(
            ctx.passive_result("v1", workload, PAPER_DB_BYTES, ship_undo_log=True)
        ).tps
    return AblationResult(rows=rows)
