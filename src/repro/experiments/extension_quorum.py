"""Extension experiment: leaderless quorum groups vs primary-backup.

Not in the paper — its replication is primary-backup in both flavors.
This experiment measures the third architecture (:mod:`repro.quorum`)
on the axes the paper cares about, availability and replication
traffic:

* **The (N, R, W) sweep** — the analytic cost model
  (:mod:`repro.perf.quorum`) prices four quorum geometries next to the
  primary-backup pair: availability as the binomial k-of-n tail,
  traffic as shipped copies per transaction. Read-dominant strict
  configurations buy availability with write fan-out; a sloppy pair
  buys more availability than anything strict at pair-level traffic.

* **Availability under failure, from a trace** — a 3-group strict
  (3, 2, 2) cluster on one discrete-event simulator, the shard router
  submitting a fixed per-slot load, one group losing quorum (two
  member crashes, one recovery) and another riding out a symmetric
  network partition without losing quorum. Aggregate completions dip
  to exactly 2/3 of the offered rate during the quorum-loss window,
  the retried backlog drains afterwards, and the background Merkle
  anti-entropy loop converges every replica byte-identically by the
  end. All numbers are derived from the recorded trace, audited
  (quorum-intersection and version-vector rules included), and folded
  into per-group SLO availability.

* **Quorum vs pair at equal replica count** — two replicas each, the
  same crash at the same simulated instant: the sloppy quorum group
  keeps serving on its surviving replica (hinted handoff catches the
  crashed one up on recovery) while the passive-v1 pair takes its
  whole-database-restore outage. The SLO reports make the comparison:
  quorum availability >= pair availability, measured, not modeled.

Everything is deterministic under the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.experiments.common import ExperimentContext
from repro.experiments.extension_sharding import (
    FailoverTimeline,
    SeriesDerivations,
    SlotSample,
    failover_timeline,
)
from repro.obs import Observer, TraceEvent, analyze_timeline, write_jsonl
from repro.obs.report import FailoverSpan, TimelineReport
from repro.obs.series import (
    SeriesFrame,
    TimeSeriesSampler,
    derive_dip,
    quorum_probes,
    router_probes,
    series_interval_us,
    sim_probes,
)
from repro.perf.quorum import (
    QuorumCostReport,
    primary_backup_cost,
    quorum_cost,
)
from repro.perf.report import ReportTable
from repro.quorum import QuorumCluster, QuorumWorkload
from repro.shard import Router

MB = 1024 * 1024

#: The sweep: (N, R, W, sloppy). The sloppy pair must be sloppy — the
#: auditor rightly flags a *strict* R + W <= N configuration as having
#: no intersection guarantee to offer.
SWEEP = (
    (2, 1, 1, True),
    (3, 1, 3, False),
    (3, 2, 2, False),
    (5, 2, 4, False),
)
#: Model inputs: per-replica availability and the nominal replicated
#: record (64-byte value plus version-vector header).
REPLICA_AVAILABILITY = 0.99
RECORD_BYTES = 96

#: Trace-driven timeline defaults (simulated microseconds).
SLOT_US = 1_000.0
SLOTS = 24
OFFERED_PER_GROUP_PER_SLOT = 2
NUM_GROUPS = 3
KEYS_PER_GROUP = 32
VALUE_BYTES = 64
REPAIR_INTERVAL_US = 2_500.0
DRAIN_US = 30_000.0

#: Group 1 loses quorum when its second member dies and regains it
#: when the first recovers: exactly one quorum-loss window.
DOWNED_GROUP = 1
CRASH_FIRST_AT_US = 3_600.0
CRASH_SECOND_AT_US = 5_250.0
RECOVER_FIRST_AT_US = 9_250.0
RECOVER_SECOND_AT_US = 12_000.0
#: Group 2 is partitioned {0} | {1, 2} — it keeps quorum on the
#: majority side and diverges replica 0 for anti-entropy to repair.
PARTITIONED_GROUP = 2
PARTITION_AT_US = 6_000.0
HEAL_AT_US = 8_000.0

#: Comparison run: both systems have two replicas and lose one at the
#: same instant (the sharding experiment's crash time).
PAIR_CRASH_AT_US = 5_250.0
PAIR_RECOVER_AT_US = 15_250.0


@dataclass
class QuorumTimeline(SeriesDerivations):
    """The measured dip-and-recovery curve of one group's quorum loss."""

    num_groups: int
    slot_us: float
    offered_per_group_per_slot: int
    downed_group: int
    quorum_loss: FailoverSpan
    samples: List[SlotSample]
    converged: bool
    router_stats: Dict[str, int] = field(default_factory=dict)
    group_stats: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: The raw trace the numbers above were derived from.
    trace_events: List[TraceEvent] = field(default_factory=list)
    #: The sampled time series recorded alongside the trace.
    series: SeriesFrame = field(default_factory=SeriesFrame)

    def trace_report(self, window_us: Optional[float] = None) -> TimelineReport:
        """Re-derive the timeline report from the recorded trace."""
        return analyze_timeline(
            self.trace_events,
            window_us=self.slot_us if window_us is None else window_us,
        )

    def audit(self):
        """Run the online trace auditor over the recorded trace."""
        from repro.obs.audit import audit_events

        return audit_events(self.trace_events)

    def slo(self, audited: bool = True, scopes=None):
        """Fold the trace's quorum-loss windows into availability."""
        from repro.obs.slo import compute_slo

        audit_ok = self.audit().ok if audited else None
        return compute_slo(
            self.trace_events, audit_ok=audit_ok, scopes=scopes
        )

    @property
    def normal_per_slot(self) -> int:
        return self.num_groups * self.offered_per_group_per_slot

    @property
    def degraded_per_slot(self) -> int:
        return (self.num_groups - 1) * self.offered_per_group_per_slot

    def outage_slots(self) -> List[SlotSample]:
        """Slots that lie fully inside the quorum-loss window."""
        return [
            s for s in self.samples
            if s.start_us > self.quorum_loss.crash_at_us
            and s.start_us + self.slot_us <= self.quorum_loss.restored_at_us
        ]

    def recovered_slots(self) -> List[SlotSample]:
        """Slots after quorum returned whose completions are back at
        the offered rate (the catch-up burst has drained)."""
        drained = [
            s for s in self.samples
            if s.start_us > self.quorum_loss.restored_at_us
        ]
        return [s for s in drained if s.completed == self.normal_per_slot]


@dataclass
class QuorumComparison:
    """Quorum vs passive pair: same replica count, same crash."""

    crash_at_us: float
    quorum_availability: float
    quorum_downtime_us: float
    hints_delivered: int
    pair_timeline: FailoverTimeline
    quorum_trace_events: List[TraceEvent] = field(default_factory=list)
    #: Sampled series of the sloppy group's run (hint backlog curve).
    quorum_series: SeriesFrame = field(default_factory=SeriesFrame)

    @property
    def pair_availability(self) -> float:
        pair = self.pair_timeline.slo()
        return pair.cluster_availability

    @property
    def pair_downtime_us(self) -> float:
        return self.pair_timeline.takeover.downtime_us

    def audit(self):
        from repro.obs.audit import audit_events

        return audit_events(self.quorum_trace_events)


@dataclass
class QuorumResult:
    sweep: List[QuorumCostReport]
    baseline: QuorumCostReport
    timeline: QuorumTimeline
    comparison: QuorumComparison

    def table(self) -> ReportTable:
        table = ReportTable(
            "Extension: quorum replication cost "
            f"(per-replica availability {REPLICA_AVAILABILITY:.2f}, "
            f"{RECORD_BYTES}-byte records)",
            ["configuration", "mode", "R+W>N", "availability",
             "write bytes/txn", "read bytes/txn", "traffic vs pair"],
        )
        for report in [self.baseline] + self.sweep:
            table.add_row(
                report.label,
                report.mode,
                "yes" if report.intersects else "no",
                f"{report.availability * 100:.4f}%",
                report.write_bytes_per_txn,
                report.read_bytes_per_txn,
                f"{report.traffic_ratio(self.baseline):.2f}x",
            )
        table.add_note(
            "availability is the binomial k-of-n tail (strict: "
            "max(R,W) reachable; sloppy: any live replica); traffic "
            "is shipped copies per read-modify-write transaction"
        )
        timeline = self.timeline
        loss = timeline.quorum_loss
        stats = timeline.group_stats[timeline.downed_group]
        table.add_note(
            f"measured quorum loss: group {timeline.downed_group} held "
            f"{len(timeline.outage_slots())} slots at "
            f"{timeline.degraded_per_slot}/{timeline.normal_per_slot} "
            f"per slot (downtime {loss.downtime_us / 1000:.1f} ms), "
            f"then recovered; anti-entropy exchanged "
            f"{stats['repair_keys']:.0f} keys to reconverge"
        )
        comparison = self.comparison
        table.add_note(
            f"two replicas, same crash at "
            f"{comparison.crash_at_us / 1000:.2f} ms: sloppy quorum "
            f"served {comparison.quorum_availability * 100:.4f}% "
            f"({comparison.hints_delivered} hints handed off), passive "
            f"pair {comparison.pair_availability * 100:.4f}% "
            f"(restore outage {comparison.pair_downtime_us / 1000:.1f} ms)"
        )
        return table

    def timeline_figure(self) -> str:
        timeline = self.timeline
        loss = timeline.quorum_loss
        title = (
            f"Extension: aggregate completions per "
            f"{timeline.slot_us:.0f} us slot across one quorum loss "
            f"({timeline.num_groups} strict (3,2,2) groups, group "
            f"{timeline.downed_group} below quorum at "
            f"{loss.crash_at_us / 1000:.2f} ms)"
        )
        lines = [title, "=" * len(title)]
        for sample in timeline.samples:
            marks = []
            if sample.start_us <= loss.crash_at_us < sample.start_us + timeline.slot_us:
                marks.append("<- quorum lost")
            if sample.start_us <= loss.restored_at_us < sample.start_us + timeline.slot_us:
                marks.append("<- quorum restored")
            bar = "#" * sample.completed
            lines.append(
                f"  {sample.start_us / 1000:>5.1f} ms  "
                f"{sample.completed:>3}  {bar} {' '.join(marks)}".rstrip()
            )
        stats = timeline.router_stats
        lines.append(
            f"  router: {stats.get('routed', 0)} routed, "
            f"{stats.get('retries', 0)} retries, "
            f"{stats.get('dropped', 0)} dropped; replicas converged: "
            f"{'yes' if timeline.converged else 'no'}"
        )
        return "\n".join(lines)

    def check(self) -> None:
        # -- the cost model sweep ---------------------------------------
        by_config = {
            (r.replicas, r.read_quorum, r.write_quorum): r
            for r in self.sweep
        }
        assert len(by_config) == len(self.sweep)
        for report in self.sweep:
            assert 0.0 <= report.availability <= 1.0
            # Every strict configuration in the sweep must carry the
            # intersection guarantee; the sloppy one trades it away.
            assert report.intersects or report.sloppy, report.label
            # N-replica groups ship at least the pair's write traffic.
            assert (
                report.write_bytes_per_txn
                >= self.baseline.write_bytes_per_txn
            )
        sloppy_pair = by_config[(2, 1, 1)]
        assert sloppy_pair.sloppy
        # A sloppy pair outlives every strict geometry here: one live
        # replica suffices, so only total loss takes it down.
        for report in self.sweep:
            if report is not sloppy_pair:
                assert sloppy_pair.availability > report.availability
        # ... at exactly the pair's traffic.
        assert sloppy_pair.traffic_ratio(self.baseline) == 1.0
        # Read-dominant (3,2,2) beats write-all (3,1,3) on availability
        # at equal storage: needing 2-of-3 beats needing 3-of-3.
        assert (
            by_config[(3, 2, 2)].availability
            > by_config[(3, 1, 3)].availability
        )

        # -- the quorum-loss timeline -----------------------------------
        timeline = self.timeline
        n = timeline.num_groups
        normal = timeline.normal_per_slot
        degraded = timeline.degraded_per_slot
        loss = timeline.quorum_loss
        assert loss.crash_at_us == CRASH_SECOND_AT_US
        assert loss.restored_at_us == RECOVER_FIRST_AT_US
        pre_crash = [
            s for s in timeline.samples
            if s.start_us + timeline.slot_us <= loss.crash_at_us
        ]
        assert pre_crash and all(s.completed == normal for s in pre_crash), (
            "healthy groups must complete the offered rate"
        )
        outage = timeline.outage_slots()
        assert len(outage) >= 3, "quorum-loss window too short to observe"
        assert all(s.completed == degraded for s in outage), (
            f"outage slots should degrade to exactly (n-1)/n = "
            f"{degraded}/{normal}: {[s.completed for s in outage]}"
        )
        assert timeline.recovered_slots(), "throughput never recovered"
        offered = sum(s.offered for s in timeline.samples)
        completed = sum(s.completed for s in timeline.samples)
        assert completed == offered, (completed, offered)
        assert timeline.router_stats["dropped"] == 0
        assert timeline.router_stats["retries"] > 0
        # Divergence existed (the partition forced hintless staleness)
        # and anti-entropy repaired it: every replica byte-identical.
        assert timeline.converged, "anti-entropy failed to converge"
        assert timeline.group_stats[PARTITIONED_GROUP]["repair_keys"] > 0

        # -- trace consistency ------------------------------------------
        rederived = timeline.trace_report()
        assert rederived.routing == timeline.router_stats
        spans = [
            s for s in rederived.failovers
            if s.scope == f"group.{timeline.downed_group}"
        ]
        assert len(spans) == 1, "exactly one group lost quorum"
        assert spans[0].downtime_us == loss.downtime_us
        assert rederived.failovers == [spans[0]], (
            "no other group may lose quorum"
        )
        per_group = sum(
            s.offered for s in timeline.samples
        ) // n
        assert rederived.per_scope_completions == {
            f"group.{group}": per_group for group in range(n)
        }, "the dip was delay, not loss — every group served its offer"

        # -- series consistency -----------------------------------------
        # The sampled time series must tell the same story as the trace:
        # per-window completion deltas equal the trace's window counts
        # exactly, and the dip derived from the series matches the dip
        # derived from the trace.
        assert len(timeline.series) > 0, "sampler recorded no ticks"
        deltas = timeline.goodput_windows()
        trace_counts = rederived.window_counts(len(deltas))
        assert deltas == [float(c) for c in trace_counts], (
            "series-derived goodput disagrees with the trace"
        )
        assert sum(deltas) == float(completed)
        series_dip = timeline.series_dip()
        assert series_dip is not None
        trace_dip = derive_dip(
            [float(c) for c in trace_counts],
            timeline.slot_us,
            float(normal),
        )
        assert series_dip == trace_dip
        assert series_dip.dip_floor == float(degraded)
        # The dip window brackets the measured quorum loss to within
        # the sampling resolution on each side.
        assert (
            abs(series_dip.time_to_recover_us - loss.downtime_us)
            <= 2 * timeline.slot_us
        )
        for group in range(n):
            assert timeline.series.last(
                f"group.{group}.completed"
            ) == float(rederived.per_scope_completions[f"group.{group}"])
        # Anti-entropy ran: the sampled repair-key counter moved, and
        # never past the groups' own final bookkeeping.
        repair_last = timeline.series.last("quorum.repair_keys")
        repair_total = sum(
            g["repair_keys"] for g in timeline.group_stats.values()
        )
        assert 0 < repair_last <= repair_total, (repair_last, repair_total)

        # -- audit + SLO ------------------------------------------------
        audit = timeline.audit()
        assert audit.ok, audit.render()
        slo = timeline.slo()
        assert slo.audit_ok is True
        by_scope = {s.scope: s for s in slo.scopes}
        assert set(by_scope) == {f"group.{i}" for i in range(n)}
        for group in range(n):
            scope = by_scope[f"group.{group}"]
            if group == timeline.downed_group:
                assert scope.failovers == 1
                assert scope.availability < 1.0
            else:
                assert scope.downtime_us == 0.0
                assert scope.availability == 1.0
        downed = by_scope[f"group.{timeline.downed_group}"]
        expected = (n - 1 + downed.availability) / n
        assert abs(slo.cluster_availability - expected) < 1e-12
        # The per-scope filter isolates one group's record.
        filtered = timeline.slo(scopes=[f"group.{timeline.downed_group}"])
        assert len(filtered.scopes) == 1
        assert filtered.scopes[0].scope == f"group.{timeline.downed_group}"

        # -- recovery decomposition -------------------------------------
        # SLO downtime and the recovery-span roots must tell one story,
        # scope by scope, window by window (this replaces the ad-hoc
        # downtime arithmetic the experiments used to duplicate).
        from repro.obs.critpath import crosscheck_recovery_slo

        decomposition = crosscheck_recovery_slo(timeline.trace_events, slo)
        downed_scope = decomposition.scope(f"group.{timeline.downed_group}")
        assert downed_scope.recoveries == 1
        assert abs(
            downed_scope.total_downtime_us - loss.downtime_us
        ) <= 1e-6
        # A quorum loss is a membership problem by construction: the
        # whole outage is the view phase (no reachable quorum), with
        # zero-width detection and instantaneous hint delivery.
        assert downed_scope.dominant_phase == "view"
        assert downed_scope.share("view") == 1.0
        # The resume instant links into the first post-outage commit's
        # span tree (quorum groups record commit spans while serving).
        assert downed_scope.resume_gaps == 1
        tree = decomposition.trees[0]
        assert tree.resume_gap_us is not None and tree.resume_gap_us >= 0.0
        assert tree.resume_commit_trace_id is not None

        # -- alerts -----------------------------------------------------
        # The recorded burn-rate alerts are grounded: every fire
        # justified by real downtime, none missed, and only the downed
        # group's scope ever pages.
        verification = timeline.alerts()
        assert verification.ok, verification.render()
        fires = [
            e for e in timeline.trace_events if e.name == "alert.fire"
        ]
        assert fires, "the quorum-loss window must trip the fast-burn rule"
        assert {
            str(e.attrs["scope"]) for e in fires
        } == {f"group.{timeline.downed_group}"}
        resolves = [
            e for e in timeline.trace_events if e.name == "alert.resolve"
        ]
        assert len(resolves) == len(fires), "every alert must resolve"

        # -- quorum vs pair, equal replica count ------------------------
        comparison = self.comparison
        assert comparison.audit().ok
        assert comparison.pair_timeline.audit().ok
        assert comparison.pair_availability < 1.0
        assert comparison.quorum_availability >= comparison.pair_availability
        # The sloppy group never stopped serving, and the crashed
        # replica was caught up by hinted handoff, not luck.
        assert comparison.quorum_downtime_us == 0.0
        assert comparison.hints_delivered > 0
        # The series shows the mechanism: hints pooled while the
        # replica was down, then the backlog drained to nothing.
        backlog = comparison.quorum_series.values("quorum.hints_pending")
        assert max(backlog) > 0.0, "hint backlog never observed"
        assert backlog[-1] == 0.0, "hint backlog never drained"


def quorum_timeline(
    num_groups: int = NUM_GROUPS,
    slots: int = SLOTS,
    slot_us: float = SLOT_US,
    offered_per_group: int = OFFERED_PER_GROUP_PER_SLOT,
    seed: int = 42,
    observer: Optional[Observer] = None,
    trace_path: Optional[Union[str, "object"]] = None,
) -> QuorumTimeline:
    """Drive a strict (3, 2, 2) quorum cluster through one quorum loss
    and one partition, deriving the timeline *from the recorded trace*.

    Pass ``trace_path`` to additionally dump the trace as JSONL for
    ``python -m repro.obs.report``.
    """
    if observer is None:
        observer = Observer()
    cluster = QuorumCluster(
        num_groups,
        replicas_per_group=3,
        read_quorum=2,
        write_quorum=2,
        keys_per_group=KEYS_PER_GROUP,
        repair_interval_us=REPAIR_INTERVAL_US,
        observer=observer,
    )
    workload = QuorumWorkload(
        num_groups, KEYS_PER_GROUP, value_bytes=VALUE_BYTES, seed=seed
    )
    cluster.setup(workload)
    router = Router(cluster, workload, max_attempts=12, observer=observer)

    horizon_us = slots * slot_us + DRAIN_US
    sampler = TimeSeriesSampler(observer=observer)
    sampler.add_probes(sim_probes(cluster.sim))
    sampler.add_probes(router_probes(
        router, scopes={f"group.{g}": g for g in range(num_groups)}
    ))
    sampler.add_probes(quorum_probes(cluster.groups))
    sampler.attach(
        cluster.sim, series_interval_us(slot_us, slot_us), horizon_us
    )

    # A fixed load: offered_per_group transactions per group per slot
    # (global key g routes to group g; the group draws its own local
    # keys from its seeded stream).
    for slot in range(slots):
        at_us = slot * slot_us
        for group_id in range(num_groups):
            for _ in range(offered_per_group):
                router.submit(key=group_id, at_us=at_us)

    cluster.schedule_member_crash(DOWNED_GROUP, 1, CRASH_FIRST_AT_US)
    cluster.schedule_member_crash(DOWNED_GROUP, 2, CRASH_SECOND_AT_US)
    cluster.schedule_member_recover(DOWNED_GROUP, 1, RECOVER_FIRST_AT_US)
    cluster.schedule_member_recover(DOWNED_GROUP, 2, RECOVER_SECOND_AT_US)
    cluster.schedule_partition(
        PARTITIONED_GROUP, [0], [1, 2],
        at_us=PARTITION_AT_US, heal_at_us=HEAL_AT_US,
    )
    # Run past the horizon so retries and repair rounds fully drain,
    # then one explicit sweep to pick up any last divergence.
    cluster.run_until(horizon_us)
    cluster.repair_pass_all()
    converged = all(
        group.replicas_converged() for group in cluster.groups
    )

    # Annotate the trace with the burn-rate alert schedule its own
    # downtime record justifies (appended post-run; every consumer
    # selects events by name, none by position).
    from repro.obs.alerts import evaluate_alerts

    events = list(observer.recorder.events)
    events = events + evaluate_alerts(events)
    report = analyze_timeline(events, window_us=slot_us)
    loss = next(
        s for s in report.failovers
        if s.scope == f"group.{DOWNED_GROUP}"
    )
    samples = [
        SlotSample(
            start_us=slot * slot_us,
            offered=num_groups * offered_per_group,
            completed=report.completions_between(
                slot * slot_us, (slot + 1) * slot_us
            ),
        )
        for slot in range(slots)
    ]
    tail = report.completions_between(slots * slot_us, float("inf"))
    if tail:
        samples.append(SlotSample(slots * slot_us, 0, tail))
    # The trace must agree with the live objects' own bookkeeping —
    # the observer is a recorder, never a participant.
    assert report.routing["routed"] == router.routed
    assert report.routing["completed"] == router.completed
    if trace_path is not None:
        write_jsonl(trace_path, events, metrics=observer.registry)
    return QuorumTimeline(
        num_groups=num_groups,
        slot_us=slot_us,
        offered_per_group_per_slot=offered_per_group,
        downed_group=DOWNED_GROUP,
        quorum_loss=loss,
        samples=samples,
        converged=converged,
        router_stats=dict(report.routing),
        group_stats=cluster.stats,
        trace_events=events,
        series=sampler.frame,
    )


def availability_comparison(seed: int = 42) -> QuorumComparison:
    """Two replicas each, one crash at the same instant: a sloppy
    quorum group vs the passive-v1 pair, both availability records
    measured from their own traces."""
    observer = Observer()
    cluster = QuorumCluster(
        1,
        replicas_per_group=2,
        read_quorum=1,
        write_quorum=1,
        keys_per_group=KEYS_PER_GROUP,
        sloppy=True,
        observer=observer,
    )
    workload = QuorumWorkload(
        1, KEYS_PER_GROUP, value_bytes=VALUE_BYTES, seed=seed
    )
    cluster.setup(workload)
    router = Router(cluster, workload, max_attempts=12, observer=observer)
    sampler = TimeSeriesSampler(observer=observer)
    sampler.add_probes(router_probes(router, scopes={"group.0": 0}))
    sampler.add_probes(quorum_probes(cluster.groups))
    sampler.attach(
        cluster.sim,
        series_interval_us(SLOT_US, SLOT_US),
        SLOTS * SLOT_US + DRAIN_US,
    )
    for slot in range(SLOTS):
        at_us = slot * SLOT_US
        for _ in range(OFFERED_PER_GROUP_PER_SLOT):
            router.submit(key=0, at_us=at_us)
    cluster.schedule_member_crash(0, 0, PAIR_CRASH_AT_US)
    cluster.schedule_member_recover(0, 0, PAIR_RECOVER_AT_US)
    cluster.run_until(SLOTS * SLOT_US + DRAIN_US)
    group = cluster.groups[0]
    events = list(observer.recorder.events)

    from repro.obs.slo import compute_slo

    slo = compute_slo(events)
    by_scope = {s.scope: s for s in slo.scopes}
    quorum_scope = by_scope["group.0"]
    assert router.dropped == 0

    pair = failover_timeline(
        num_shards=1,
        slots=SLOTS,
        crashed_shard=0,
        crash_at_us=PAIR_CRASH_AT_US,
        db_bytes_per_shard=4 * MB,
        seed=seed,
    )
    return QuorumComparison(
        crash_at_us=PAIR_CRASH_AT_US,
        quorum_availability=quorum_scope.availability,
        quorum_downtime_us=quorum_scope.downtime_us,
        hints_delivered=group.stats.hints_delivered,
        pair_timeline=pair,
        quorum_trace_events=events,
        quorum_series=sampler.frame,
    )


def run(ctx: Optional[ExperimentContext] = None) -> QuorumResult:
    if ctx is None:
        ctx = ExperimentContext()
    seed = ctx.settings.seed
    sweep = [
        quorum_cost(
            n, r, w, REPLICA_AVAILABILITY, RECORD_BYTES, sloppy=sloppy
        )
        for n, r, w, sloppy in SWEEP
    ]
    baseline = primary_backup_cost(REPLICA_AVAILABILITY, RECORD_BYTES)
    timeline = quorum_timeline(seed=seed)
    comparison = availability_comparison(seed=seed)
    return QuorumResult(
        sweep=sweep,
        baseline=baseline,
        timeline=timeline,
        comparison=comparison,
    )
