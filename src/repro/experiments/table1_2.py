"""Tables 1 and 2 — the straightforward cluster implementation.

Table 1: transaction throughput of unmodified Vista (Version 0),
standalone versus with every data structure write-doubled to a passive
backup. Table 2: where the bytes went — almost all of the traffic is
allocator/list metadata, which is the paper's motivation for
restructuring the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import (
    ExperimentContext,
    PAPER_DB_BYTES,
    scale_to_paper_mb,
)
from repro.perf.calibration import PAPER
from repro.perf.report import ReportTable, ratio

WORKLOADS = ("debit-credit", "order-entry")
CATEGORIES = ("modified", "undo", "meta")


@dataclass
class Table12Result:
    throughput: Dict[str, Dict[str, float]]  # workload -> mode -> tps
    traffic: Dict[str, Dict[str, float]]  # workload -> category -> bytes/txn

    def table1(self) -> ReportTable:
        table = ReportTable(
            "Table 1: Straightforward implementation throughput (txns/sec)",
            ["configuration", "Debit-Credit", "paper", "Order-Entry", "paper"],
        )
        paper_sa = PAPER["standalone"]
        paper_pb = PAPER["passive"]
        table.add_row(
            "Single machine",
            self.throughput["debit-credit"]["standalone"],
            paper_sa["debit-credit"]["v0"],
            self.throughput["order-entry"]["standalone"],
            paper_sa["order-entry"]["v0"],
        )
        table.add_row(
            "Primary-backup",
            self.throughput["debit-credit"]["passive"],
            paper_pb["debit-credit"]["v0"],
            self.throughput["order-entry"]["passive"],
            paper_pb["order-entry"]["v0"],
        )
        for workload in WORKLOADS:
            drop = (
                self.throughput[workload]["standalone"]
                / self.throughput[workload]["passive"]
            )
            paper_drop = (
                paper_sa[workload]["v0"] / paper_pb[workload]["v0"]
            )
            table.add_note(
                f"{workload}: throughput drops {drop:.1f}x "
                f"(paper: {paper_drop:.1f}x)"
            )
        return table

    def table2(self) -> ReportTable:
        table = ReportTable(
            "Table 2: Data communicated to the backup (MB, paper-length run)",
            ["category", "Debit-Credit", "paper", "Order-Entry", "paper"],
        )
        paper_rows = {
            "modified": ("Modified data", 140.8, 38.9),
            "undo": ("Undo log", 323.2, 199.8),
            "meta": ("Meta-data", 6708.4, 433.6),
        }
        totals = {"debit-credit": 0.0, "order-entry": 0.0}
        for category, (label, paper_dc, paper_oe) in paper_rows.items():
            dc = scale_to_paper_mb(
                self.traffic["debit-credit"].get(category, 0.0), "debit-credit"
            )
            oe = scale_to_paper_mb(
                self.traffic["order-entry"].get(category, 0.0), "order-entry"
            )
            totals["debit-credit"] += dc
            totals["order-entry"] += oe
            table.add_row(label, dc, paper_dc, oe, paper_oe)
        table.add_row("Total data", totals["debit-credit"], 7172.4,
                      totals["order-entry"], 672.3)
        table.add_note(
            "meta-data dominates: the heap allocator and linked-list "
            "bookkeeping all cross the SAN in the straightforward scheme"
        )
        return table

    def check(self) -> None:
        for workload in WORKLOADS:
            standalone = self.throughput[workload]["standalone"]
            passive = self.throughput[workload]["passive"]
            assert passive < standalone / 2, (
                f"{workload}: straightforward replication must collapse "
                f"throughput (got {standalone} -> {passive})"
            )
            traffic = self.traffic[workload]
            payload = traffic.get("modified", 0) + traffic.get("undo", 0)
            assert traffic.get("meta", 0) > payload, (
                f"{workload}: metadata must dominate V0 traffic: {traffic}"
            )


def run(ctx: ExperimentContext) -> Table12Result:
    estimator = ctx.estimator()
    throughput: Dict[str, Dict[str, float]] = {}
    traffic: Dict[str, Dict[str, float]] = {}
    for workload in WORKLOADS:
        standalone = ctx.standalone_result("v0", workload, PAPER_DB_BYTES)
        passive = ctx.passive_result("v0", workload, PAPER_DB_BYTES)
        throughput[workload] = {
            "standalone": estimator.standalone(standalone).tps,
            "passive": estimator.passive(passive).tps,
        }
        per_txn = passive.traffic_per_txn()
        traffic[workload] = {
            category: per_txn.get(category, 0.0) for category in CATEGORIES
        }
    return Table12Result(throughput=throughput, traffic=traffic)
