"""Table 8 — active-backup throughput at larger database sizes.

The active scheme maps only the redo ring through the Memory Channel,
so the database can outgrow the SAN address space. Throughput degrades
gracefully as the database outgrows the 8 MB board cache: the random
balance/record lines miss more often.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import ExperimentContext
from repro.perf.calibration import PAPER
from repro.perf.report import ReportTable, ratio

from repro.experiments.table3 import WORKLOADS

MB = 1024 * 1024
SIZES = (("10MB", 10 * MB), ("100MB", 100 * MB), ("1GB", 1024 * MB))


@dataclass
class Table8Result:
    tps: Dict[str, Dict[str, float]]  # workload -> size label -> tps

    def table(self) -> ReportTable:
        table = ReportTable(
            "Table 8: Active-backup throughput vs database size (txns/sec)",
            ["benchmark", "10 MB", "paper", "100 MB", "paper",
             "1 GB", "paper"],
        )
        for workload in WORKLOADS:
            paper = PAPER["dbsize"][workload]
            table.add_row(
                workload,
                self.tps[workload]["10MB"], paper["10MB"],
                self.tps[workload]["100MB"], paper["100MB"],
                self.tps[workload]["1GB"], paper["1GB"],
            )
        for workload in WORKLOADS:
            drop = (
                1.0 - self.tps[workload]["1GB"] / self.tps[workload]["10MB"]
            ) * 100
            paper_drop = (
                1.0 - PAPER["dbsize"][workload]["1GB"]
                / PAPER["dbsize"][workload]["10MB"]
            ) * 100
            table.add_note(
                f"{workload}: degrades {drop:.0f}% from 10 MB to 1 GB "
                f"(paper: {paper_drop:.0f}%) — cache misses on random "
                f"record lines"
            )
        return table

    def check(self) -> None:
        for workload in WORKLOADS:
            tps = self.tps[workload]
            assert tps["10MB"] > tps["100MB"] > tps["1GB"], (
                f"{workload}: degradation must be monotonic: {tps}"
            )
            drop = 1.0 - tps["1GB"] / tps["10MB"]
            assert 0.03 <= drop <= 0.40, (
                f"{workload}: degradation should be graceful "
                f"(paper: 13%/22%), got {drop:.0%}"
            )


def run(ctx: ExperimentContext) -> Table8Result:
    estimator = ctx.estimator()
    tps: Dict[str, Dict[str, float]] = {}
    for workload in WORKLOADS:
        tps[workload] = {}
        for label, nominal in SIZES:
            result = ctx.active_result(workload, nominal)
            tps[workload][label] = estimator.active(result).tps
    return Table8Result(tps=tps)
