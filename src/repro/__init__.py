"""repro — a reproduction of "Data Replication Strategies for Fault
Tolerance and Availability on Commodity Clusters" (Amza, Cox &
Zwaenepoel, DSN 2000).

The library implements, for real and from scratch:

* the **Rio** recoverable-memory substrate and the **Vista**
  transaction engine in the paper's four structural variants
  (:mod:`repro.vista`);
* a **Memory Channel** system-area-network model with write-through
  mappings, write doubling and write-buffer packet coalescing
  (:mod:`repro.san`, :mod:`repro.hardware`);
* **passive** (write-through) and **active** (redo-log) primary-backup
  replication with 1-safe/2-safe commit and failover
  (:mod:`repro.replication`, :mod:`repro.cluster`);
* the **Debit-Credit** (TPC-B) and **Order-Entry** (TPC-C) benchmarks
  (:mod:`repro.workloads`);
* a **sharding layer** beyond the paper — N primary-backup pairs
  behind a versioned shard map and a retrying client router
  (:mod:`repro.shard`);
* **leaderless quorum replication** beyond the paper — N-replica
  groups with R/W quorums, version vectors, hinted handoff and
  Merkle anti-entropy repair (:mod:`repro.quorum`);
* a calibrated **performance model** that converts measured operation
  counts into the paper's tables and figures (:mod:`repro.perf`,
  :mod:`repro.experiments`).

Quick start::

    from repro import RioMemory, EngineConfig, create_engine

    engine = create_engine("v3", RioMemory("node"),
                           EngineConfig(db_bytes=1 << 20))
    engine.begin_transaction()
    engine.set_range(0, 16)
    engine.write(0, b"hello, vista!   ")
    engine.commit_transaction()
"""

from repro.errors import ReproError
from repro.memory.rio import RioMemory
from repro.vista.api import EngineConfig, TransactionEngine
from repro.vista.factory import ENGINE_VERSIONS, create_engine
from repro.replication.active import ActiveReplicatedSystem
from repro.replication.passive import PassiveReplicatedSystem
from repro.replication.commit_safety import CommitSafety
from repro.quorum import QuorumCluster, QuorumGroup, QuorumWorkload
from repro.shard import Router, ShardedCluster, ShardedWorkload
from repro.workloads import (
    DebitCreditWorkload,
    OrderEntryWorkload,
    run_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "RioMemory",
    "EngineConfig",
    "TransactionEngine",
    "ENGINE_VERSIONS",
    "create_engine",
    "PassiveReplicatedSystem",
    "ActiveReplicatedSystem",
    "CommitSafety",
    "Router",
    "ShardedCluster",
    "ShardedWorkload",
    "QuorumCluster",
    "QuorumGroup",
    "QuorumWorkload",
    "DebitCreditWorkload",
    "OrderEntryWorkload",
    "run_workload",
    "__version__",
]
