"""Workload abstractions.

A :class:`Workload` owns a database layout and knows how to run one
transaction against any :class:`TransactionTarget` — a standalone
engine, a passive replicated system, or an active replicated system
all satisfy the protocol. Workloads are deterministic given a seed and
keep a Python *shadow model* of the balances they maintain, which the
tests use to verify that the engine's bytes agree with ground truth.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Protocol, runtime_checkable

from repro.vista.api import HINT_RANDOM


@runtime_checkable
class TransactionTarget(Protocol):
    """Anything the RVM transaction API can be driven against."""

    def begin_transaction(self) -> None: ...

    def set_range(self, offset: int, length: int, hint: str = HINT_RANDOM) -> None: ...

    def write(self, offset: int, data: bytes) -> None: ...

    def read(self, offset: int, length: int) -> bytes: ...

    def commit_transaction(self) -> None: ...

    def abort_transaction(self) -> None: ...

    def initialize_data(self, offset: int, data: bytes) -> None: ...


class Workload(abc.ABC):
    """Base class for the paper's benchmarks."""

    name: str = "workload"

    def __init__(self, db_bytes: int, seed: int = 0):
        self.db_bytes = db_bytes
        self.seed = seed
        self.rng = random.Random(seed)
        self.transactions_run = 0
        self.type_counts: Dict[str, int] = {}

    @abc.abstractmethod
    def setup(self, target: TransactionTarget) -> None:
        """Load the initial database image (setup phase, not counted)."""

    @abc.abstractmethod
    def run_transaction(self, target: TransactionTarget) -> None:
        """Run one complete transaction (begin..commit) on ``target``."""

    def verify(self, target: TransactionTarget) -> None:
        """Check the database bytes against the shadow model; raises
        AssertionError on divergence. Optional per workload."""

    def _count(self, txn_type: str) -> None:
        self.transactions_run += 1
        self.type_counts[txn_type] = self.type_counts.get(txn_type, 0) + 1

    def reset_rng(self) -> None:
        """Restart the deterministic sequence (for paired runs that must
        issue identical transactions against different targets)."""
        self.rng = random.Random(self.seed)
        self.transactions_run = 0
        self.type_counts = {}
