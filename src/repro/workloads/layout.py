"""Record-array layout helpers.

The benchmarks store their tables as fixed-size record arrays packed
into the database region. :class:`DatabaseLayout` parcels the region
into named :class:`Table` areas; a table knows its record size, its
field offsets, and how to read/update integer fields through a
transaction target (so every access goes through the engine API and is
instrumented like any other transaction work).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError

_I64 = struct.Struct("<q")
_I32 = struct.Struct("<i")


@dataclass(frozen=True)
class Field:
    """One integer field inside a record."""

    offset: int
    size: int  # 4 or 8 bytes, signed little-endian

    def pack(self, value: int) -> bytes:
        return (_I32 if self.size == 4 else _I64).pack(value)

    def unpack(self, data: bytes) -> int:
        return (_I32 if self.size == 4 else _I64).unpack(data)[0]


class Table:
    """A fixed-record array at a base offset of the database."""

    def __init__(
        self,
        name: str,
        base: int,
        record_bytes: int,
        records: int,
        fields: Dict[str, Tuple[int, int]],
    ):
        if records < 1:
            raise ConfigurationError(f"table {name!r} needs at least one record")
        self.name = name
        self.base = base
        self.record_bytes = record_bytes
        self.records = records
        self.fields = {
            field_name: Field(offset, size)
            for field_name, (offset, size) in fields.items()
        }
        for field_name, field in self.fields.items():
            if field.offset + field.size > record_bytes:
                raise ConfigurationError(
                    f"field {field_name!r} overflows record of table {name!r}"
                )

    @property
    def size_bytes(self) -> int:
        return self.record_bytes * self.records

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def record_offset(self, index: int) -> int:
        if index < 0 or index >= self.records:
            raise ConfigurationError(
                f"record {index} out of range for table {self.name!r} "
                f"({self.records} records)"
            )
        return self.base + index * self.record_bytes

    def field_offset(self, index: int, field_name: str) -> int:
        return self.record_offset(index) + self.fields[field_name].offset

    # -- instrumented access through a transaction target ---------------

    def read_field(self, target, index: int, field_name: str) -> int:
        field = self.fields[field_name]
        data = target.read(self.field_offset(index, field_name), field.size)
        return field.unpack(data)

    def write_field(self, target, index: int, field_name: str, value: int) -> None:
        field = self.fields[field_name]
        target.write(self.field_offset(index, field_name), field.pack(value))

    def add_to_field(self, target, index: int, field_name: str, delta: int) -> int:
        """Read-modify-write of one field; returns the new value."""
        value = self.read_field(target, index, field_name) + delta
        self.write_field(target, index, field_name, value)
        return value


class DatabaseLayout:
    """Parcels the database region into tables and raw areas."""

    def __init__(self, db_bytes: int):
        self.db_bytes = db_bytes
        self._cursor = 0
        self.tables: Dict[str, Table] = {}
        self.areas: Dict[str, Tuple[int, int]] = {}

    def add_table(
        self,
        name: str,
        record_bytes: int,
        records: int,
        fields: Dict[str, Tuple[int, int]],
    ) -> Table:
        table = Table(name, self._cursor, record_bytes, records, fields)
        if table.end > self.db_bytes:
            raise ConfigurationError(
                f"table {name!r} ({table.size_bytes} bytes at {table.base}) "
                f"does not fit in a {self.db_bytes}-byte database"
            )
        self._cursor = table.end
        self.tables[name] = table
        return table

    def add_area(self, name: str, size_bytes: int) -> Tuple[int, int]:
        """Reserve a raw (base, size) area, e.g. the audit trail."""
        if self._cursor + size_bytes > self.db_bytes:
            raise ConfigurationError(
                f"area {name!r} of {size_bytes} bytes does not fit"
            )
        area = (self._cursor, size_bytes)
        self._cursor += size_bytes
        self.areas[name] = area
        return area

    @property
    def used_bytes(self) -> int:
        return self._cursor
