"""Order-Entry: the Vista variant of TPC-C (Section 2.4).

TPC-C models a wholesale supplier receiving orders, payments and
deliveries over warehouses, districts, customers, orders, order lines,
stock and items. Order-Entry uses the three TPC-C transaction types
that *update* the database:

* **New-Order** — allocate an order id from the district, insert an
  order and a new-order entry, and insert one order line plus a stock
  update per item (5-8 items here). Declared ranges are whole records
  while only a few fields are written, so undo data is several times
  the modified data — the paper's Order-Entry profile (Table 5:
  199.8 MB undo vs 38.9 MB modified ≈ 5x).
* **Payment** — update warehouse and district year-to-date totals,
  the customer's balance/payment record, and append a history record.
* **Delivery** — mark a batch of orders delivered: per order, stamp
  the carrier and settle the customer balance.

The mix follows TPC-C's weights renormalized over the three update
types: 48.9% New-Order, 46.7% Payment, 4.4% Delivery.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.workloads.base import TransactionTarget, Workload
from repro.workloads.layout import DatabaseLayout

MB = 1024 * 1024

#: TPC-C mix (45 / 43 / 4) renormalized over the update transactions.
MIX_NEW_ORDER = 0.489
MIX_PAYMENT = 0.467
MIX_DELIVERY = 0.044

MIN_ORDER_LINES = 5
MAX_ORDER_LINES = 8
DELIVERY_BATCH = 10

_WAREHOUSE_REC = 64
_DISTRICT_REC = 64
_CUSTOMER_REC = 160
_ORDER_REC = 48
_NEW_ORDER_REC = 8
_ORDER_LINE_REC = 80
_STOCK_REC = 64
_HISTORY_SLOT = 50


class OrderEntryWorkload(Workload):
    """The Order-Entry benchmark over a database of ``db_bytes``."""

    name = "order-entry"

    def __init__(self, db_bytes: int, seed: int = 0):
        super().__init__(db_bytes, seed)
        if db_bytes < 4 * MB:
            raise ConfigurationError(
                f"Order-Entry needs at least 4 MB of database; got {db_bytes}"
            )
        layout = DatabaseLayout(db_bytes)

        warehouses = max(1, db_bytes // (16 * MB))
        districts = warehouses * 10
        # Space split: customers and stock dominate; orders and order
        # lines are circular arrays sized to hold a long history.
        customers = max(100, int(db_bytes * 0.30) // _CUSTOMER_REC)
        stock_items = max(100, int(db_bytes * 0.25) // _STOCK_REC)
        orders = max(100, int(db_bytes * 0.10) // _ORDER_REC)
        new_orders = max(100, int(db_bytes * 0.02) // _NEW_ORDER_REC)
        order_lines = max(1000, int(db_bytes * 0.25) // _ORDER_LINE_REC)
        history_slots = max(100, int(db_bytes * 0.04) // _HISTORY_SLOT)

        self.warehouse = layout.add_table(
            "warehouse", _WAREHOUSE_REC, warehouses, {"ytd": (0, 8)}
        )
        self.district = layout.add_table(
            "district",
            _DISTRICT_REC,
            districts,
            {"ytd": (0, 8), "next_o_id": (8, 4)},
        )
        self.customer = layout.add_table(
            "customer",
            _CUSTOMER_REC,
            customers,
            {"balance": (0, 8), "ytd_payment": (8, 4), "payment_cnt": (12, 4)},
        )
        self.order = layout.add_table(
            "order",
            _ORDER_REC,
            orders,
            {"customer": (0, 4), "ol_cnt": (4, 4), "carrier": (8, 4), "entry": (12, 8)},
        )
        self.new_order = layout.add_table(
            "new_order", _NEW_ORDER_REC, new_orders, {"order": (0, 4)}
        )
        self.order_line = layout.add_table(
            "order_line",
            _ORDER_LINE_REC,
            order_lines,
            {"item": (0, 4), "qty": (4, 4), "amount": (8, 4)},
        )
        self.stock = layout.add_table(
            "stock",
            _STOCK_REC,
            stock_items,
            {"quantity": (0, 4), "ytd": (4, 4)},
        )
        self.history_base, history_bytes = layout.add_area(
            "history", history_slots * _HISTORY_SLOT
        )
        self.history_slots = history_slots
        self.layout = layout

        # Monotonic cursors into the circular arrays.
        self._order_cursor = 0
        self._order_line_cursor = 0
        self._new_order_cursor = 0
        self._history_cursor = 0
        self._delivery_cursor = 0  # oldest undelivered order

        # Shadow model for verification.
        self.shadow_customer_balance: Dict[int, int] = {}
        self.shadow_district_next_oid: Dict[int, int] = {}
        self.shadow_stock_ytd: Dict[int, int] = {}

    # -- setup ---------------------------------------------------------------

    def setup(self, target: TransactionTarget) -> None:
        target.initialize_data(0, b"\x00")

    # -- transaction dispatch ----------------------------------------------------

    def run_transaction(self, target: TransactionTarget) -> None:
        choice = self.rng.random()
        if choice < MIX_NEW_ORDER:
            self._new_order(target)
        elif choice < MIX_NEW_ORDER + MIX_PAYMENT:
            self._payment(target)
        else:
            self._delivery(target)

    # -- New-Order ------------------------------------------------------------------

    def _new_order(self, target: TransactionTarget) -> None:
        rng = self.rng
        district_id = rng.randrange(self.district.records)
        customer_id = rng.randrange(self.customer.records)
        n_lines = rng.randint(MIN_ORDER_LINES, MAX_ORDER_LINES)

        target.begin_transaction()

        # District: allocate the order id (whole next_o_id field range).
        target.set_range(self.district.field_offset(district_id, "next_o_id"), 4)
        next_oid = self.district.add_to_field(target, district_id, "next_o_id", 1)

        # Order record: declare a generous slice, fill the header fields.
        order_id = self._order_cursor % self.order.records
        self._order_cursor += 1
        target.set_range(self.order.record_offset(order_id), 40)
        self.order.write_field(target, order_id, "customer", customer_id)
        self.order.write_field(target, order_id, "ol_cnt", n_lines)
        self.order.write_field(target, order_id, "carrier", 0)
        self.order.write_field(target, order_id, "entry", self.transactions_run)

        # New-order entry.
        new_order_id = self._new_order_cursor % self.new_order.records
        self._new_order_cursor += 1
        target.set_range(self.new_order.record_offset(new_order_id), 8)
        self.new_order.write_field(target, new_order_id, "order", order_id)

        # Order lines + stock updates, scattered across the database.
        for _ in range(n_lines):
            item = rng.randrange(self.stock.records)
            line_id = self._order_line_cursor % self.order_line.records
            self._order_line_cursor += 1
            target.set_range(self.order_line.record_offset(line_id), _ORDER_LINE_REC)
            self.order_line.write_field(target, line_id, "item", item)
            self.order_line.write_field(target, line_id, "qty", 1 + rng.randrange(10))

            target.set_range(self.stock.record_offset(item), 16)
            self.stock.add_to_field(target, item, "quantity", -1)
            self.stock.add_to_field(target, item, "ytd", 1)
            self.shadow_stock_ytd[item] = self.shadow_stock_ytd.get(item, 0) + 1

        target.commit_transaction()
        self.shadow_district_next_oid[district_id] = next_oid
        self._count("new-order")

    # -- Payment ----------------------------------------------------------------------

    def _payment(self, target: TransactionTarget) -> None:
        rng = self.rng
        warehouse_id = rng.randrange(self.warehouse.records)
        district_id = rng.randrange(self.district.records)
        customer_id = rng.randrange(self.customer.records)
        amount = rng.randrange(1, 500_000)

        target.begin_transaction()

        target.set_range(self.warehouse.field_offset(warehouse_id, "ytd"), 12)
        self.warehouse.add_to_field(target, warehouse_id, "ytd", amount)

        target.set_range(self.district.field_offset(district_id, "ytd"), 12)
        self.district.add_to_field(target, district_id, "ytd", amount)

        # Customer: the range covers the balance/payment block.
        target.set_range(self.customer.record_offset(customer_id), 120)
        self.customer.add_to_field(target, customer_id, "balance", -amount)
        self.customer.add_to_field(target, customer_id, "ytd_payment", 1)
        self.customer.add_to_field(target, customer_id, "payment_cnt", 1)

        slot = self._history_cursor % self.history_slots
        self._history_cursor += 1
        slot_offset = self.history_base + slot * _HISTORY_SLOT
        target.set_range(slot_offset, _HISTORY_SLOT)
        target.write(slot_offset, amount.to_bytes(8, "little") * 2)  # 16 bytes

        target.commit_transaction()
        self.shadow_customer_balance[customer_id] = (
            self.shadow_customer_balance.get(customer_id, 0) - amount
        )
        self._count("payment")

    # -- Delivery ------------------------------------------------------------------------

    def _delivery(self, target: TransactionTarget) -> None:
        rng = self.rng
        delivered = min(
            DELIVERY_BATCH, self._order_cursor - self._delivery_cursor
        )
        target.begin_transaction()
        for _ in range(delivered):
            order_id = self._delivery_cursor % self.order.records
            self._delivery_cursor += 1

            target.set_range(self.order.field_offset(order_id, "carrier"), 8)
            self.order.write_field(target, order_id, "carrier", 1 + rng.randrange(10))

            customer_id = self.order.read_field(target, order_id, "customer")
            target.set_range(self.customer.field_offset(customer_id, "balance"), 12)
            self.customer.add_to_field(target, customer_id, "balance", 100)
            self.shadow_customer_balance[customer_id] = (
                self.shadow_customer_balance.get(customer_id, 0) + 100
            )
        target.commit_transaction()
        self._count("delivery")

    # -- verification --------------------------------------------------------------------

    def verify(self, target: TransactionTarget) -> None:
        for customer_id, expected in self.shadow_customer_balance.items():
            actual = self.customer.read_field(target, customer_id, "balance")
            if actual != expected:
                raise AssertionError(
                    f"customer[{customer_id}] balance is {actual}, "
                    f"shadow expects {expected}"
                )
        for district_id, expected in self.shadow_district_next_oid.items():
            actual = self.district.read_field(target, district_id, "next_o_id")
            if actual != expected:
                raise AssertionError(
                    f"district[{district_id}] next_o_id is {actual}, "
                    f"shadow expects {expected}"
                )
        for item, expected in self.shadow_stock_ytd.items():
            actual = self.stock.read_field(target, item, "ytd")
            if actual != expected:
                raise AssertionError(
                    f"stock[{item}] ytd is {actual}, shadow expects {expected}"
                )
