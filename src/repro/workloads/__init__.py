"""The paper's benchmarks as workload generators.

Debit-Credit and Order-Entry are the variants of TPC-B and TPC-C that
ship with Vista (Section 2.4): Debit-Credit keeps its audit trail in a
2 MB in-memory circular buffer; Order-Entry uses the three TPC-C
transaction types that update the database (New-Order, Payment,
Delivery). Transactions are issued sequentially, as fast as possible,
with no terminal I/O.
"""

from repro.workloads.base import TransactionTarget, Workload
from repro.workloads.layout import DatabaseLayout, Table
from repro.workloads.debit_credit import DebitCreditWorkload
from repro.workloads.order_entry import OrderEntryWorkload
from repro.workloads.driver import RunResult, run_workload

WORKLOADS = {
    "debit-credit": DebitCreditWorkload,
    "order-entry": OrderEntryWorkload,
}

__all__ = [
    "TransactionTarget",
    "Workload",
    "DatabaseLayout",
    "Table",
    "DebitCreditWorkload",
    "OrderEntryWorkload",
    "RunResult",
    "run_workload",
    "WORKLOADS",
]
