"""The workload driver.

Runs a workload's transaction stream against any target (standalone
engine, passive or active replicated system), optionally injecting
crashes, and collects everything the performance model needs: engine
operation counters, the access profile, the Memory Channel packet
trace and categorized traffic.

Transactions are issued sequentially and as fast as possible, with no
terminal I/O, exactly as the paper's benchmarks are driven.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.faults import FaultInjector
from repro.hardware.specs import MEMORY_CHANNEL_II
from repro.obs.observer import resolve_observer
from repro.obs.spans import (
    PHASE_ENGINE,
    CommitSpanRecorder,
    PhaseCostModel,
    counters_snapshot,
)
from repro.san.packets import PacketTrace
from repro.vista.api import TransactionEngine
from repro.vista.stats import AccessProfile, EngineCounters
from repro.workloads.base import TransactionTarget, Workload


@dataclass
class RunResult:
    """Everything measured over one driven run."""

    workload: str
    target_kind: str
    transactions: int
    counters: EngineCounters
    profile: AccessProfile
    traffic_bytes: Dict[str, int] = field(default_factory=dict)
    packet_trace: Optional[PacketTrace] = None
    io_stores: int = 0
    ack_bytes: int = 0
    redo_records: Optional[int] = None
    crashed: bool = False

    @property
    def total_traffic_bytes(self) -> int:
        return sum(self.traffic_bytes.values())

    def traffic_per_txn(self) -> Dict[str, float]:
        """Bytes per transaction by category, plus the total."""
        txns = max(1, self.transactions)
        per_txn = {
            category: count / txns for category, count in self.traffic_bytes.items()
        }
        per_txn["total"] = self.total_traffic_bytes / txns
        return per_txn

    def profile_per_txn(self) -> AccessProfile:
        return self.profile.scaled(1.0 / max(1, self.transactions))

    def packets_per_txn(self) -> Optional[PacketTrace]:
        if self.packet_trace is None:
            return None
        return self.packet_trace.scaled(1.0 / max(1, self.transactions))


def _engine_of(target: TransactionTarget) -> TransactionEngine:
    """The engine doing the transactional work inside ``target``."""
    if isinstance(target, TransactionEngine):
        return target
    engine = getattr(target, "engine", None)
    if isinstance(engine, TransactionEngine):
        return engine
    raise TypeError(f"cannot find a transaction engine inside {target!r}")


def _target_kind(target: TransactionTarget) -> str:
    if isinstance(target, TransactionEngine):
        return f"standalone-{target.VERSION}"
    return type(target).__name__


def run_workload(
    target: TransactionTarget,
    workload: Workload,
    transactions: int,
    warmup: int = 0,
    fault_injector: Optional[FaultInjector] = None,
    verify: bool = False,
    observer=None,
) -> RunResult:
    """Drive ``transactions`` through ``workload`` against ``target``.

    ``warmup`` transactions run first and are excluded from every
    statistic (counters, traffic, packets). When a fault injector is
    supplied, the run stops early if a crash fires.

    With an observer attached the driver emits ``run.start``/``run.end``
    markers and — for standalone engines, which have no replication
    pipeline of their own — an engine-only commit span per measured
    transaction, so phase attribution covers every target kind.
    """
    engine = _engine_of(target)
    interface = getattr(target, "interface", None) or getattr(
        target, "primary_interface", None
    )
    observer = resolve_observer(observer)
    # Replicated systems record their own commit spans; the driver only
    # fills the gap for bare engines.
    spans = None
    if observer.enabled and isinstance(target, TransactionEngine):
        spans = CommitSpanRecorder(observer, f"engine.{target.VERSION}")
        phase_model = PhaseCostModel(MEMORY_CHANNEL_II, workload=workload.name)

    for _ in range(warmup):
        workload.run_transaction(target)

    # Reset statistics after warmup so results are steady-state. The
    # reset is in place — never a fresh object — so an EngineCounters
    # registry bridge or observer holding the old reference keeps
    # seeing live counts.
    engine.counters.reset()
    engine.profile.reset()
    for name, size in _declared_sets(engine):
        engine.profile.declare(name, size)
    if interface is not None:
        interface.reset_stats()
    redo_baseline = getattr(target, "redo_records_shipped", 0)

    if observer.enabled:
        observer.event(
            "workload.driver", "run.start",
            workload=workload.name, target=_target_kind(target),
            transactions=transactions,
        )

    executed = 0
    crashed = False
    for _ in range(transactions):
        if spans is not None:
            before = counters_snapshot(engine.counters)
        workload.run_transaction(target)
        executed += 1
        if spans is not None:
            spans.phase(
                PHASE_ENGINE,
                phase_model.engine_us(
                    before, counters_snapshot(engine.counters)
                ),
            )
            spans.finish(workload=workload.name, safety="local")
        if fault_injector is not None and fault_injector.on_transaction_committed(
            executed
        ):
            crashed = True
            break

    if verify and not crashed:
        workload.verify(target)

    if observer.enabled:
        observer.count("workload.driver.transactions", executed)
        observer.event(
            "workload.driver", "run.end",
            workload=workload.name, target=_target_kind(target),
            transactions=executed, crashed=crashed,
        )

    result = RunResult(
        workload=workload.name,
        target_kind=_target_kind(target),
        transactions=executed,
        counters=engine.counters,
        profile=engine.profile,
        crashed=crashed,
    )
    if interface is not None:
        result.traffic_bytes = {
            category.value: count
            for category, count in interface.bytes_by_category.items()
        }
        result.packet_trace = interface.trace
        result.io_stores = interface.io_stores
        backup_interface = getattr(target, "backup_interface", None)
        if backup_interface is not None:
            result.ack_bytes = backup_interface.bytes_sent
        shipped = getattr(target, "redo_records_shipped", None)
        if shipped is not None:
            result.redo_records = shipped - redo_baseline
    return result


def _declared_sets(engine: TransactionEngine):
    """Re-declare the engine's working sets after a profile reset."""
    yield "db", engine.config.nominal
    if engine.VERSION == "v0":
        yield "heap", engine.regions["heap"].size
    elif engine.VERSION in ("v1", "v2"):
        yield "mirror", engine.config.nominal
    elif engine.VERSION == "v3":
        yield "ulog", engine.config.log_hot_bytes
