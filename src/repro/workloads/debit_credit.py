"""Debit-Credit: the Vista variant of TPC-B (Section 2.4).

TPC-B models banking transactions: the database holds branches,
tellers and accounts; each transaction updates the balance of a random
account and the balances of the corresponding branch and teller, and
appends a history record to an audit trail. The Vista variant keeps
the audit trail in a **2 MB circular buffer** so everything stays in
memory.

Per transaction the declared set_ranges cover three 4-byte balances
plus one ~50-byte history slot (~62 bytes of undo), while the bytes
actually modified are three balances and a 16-byte history record
(~28 bytes) — reproducing the paper's per-transaction traffic profile
(Table 5: 140.8 MB modified / 323.2 MB undo over the run ≈ 28 / 65
bytes per transaction).
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.errors import ConfigurationError
from repro.vista.api import HINT_SEQUENTIAL
from repro.workloads.base import TransactionTarget, Workload
from repro.workloads.layout import DatabaseLayout

MB = 1024 * 1024

RECORD_BYTES = 100  # TPC-B: 100-byte branch/teller/account records
AUDIT_BYTES = 2 * MB
AUDIT_SLOT_BYTES = 50  # the history set_range (TPC-B history row size)
AUDIT_RECORD_BYTES = 16  # bytes actually written: aid, tid, bid, delta
TELLERS_PER_BRANCH = 10
_HISTORY = struct.Struct("<iiii")


class DebitCreditWorkload(Workload):
    """The Debit-Credit benchmark over a database of ``db_bytes``.

    ``skew`` (0 = the paper's uniform account selection) concentrates
    account accesses on low account ids, a sensitivity knob for cache
    studies beyond the paper.
    """

    name = "debit-credit"

    def __init__(self, db_bytes: int, seed: int = 0, skew: float = 0.0):
        super().__init__(db_bytes, seed)
        self.skew = skew
        self._account_picker = None
        if db_bytes < AUDIT_BYTES + 30 * RECORD_BYTES:
            raise ConfigurationError(
                f"Debit-Credit needs more than {AUDIT_BYTES} bytes of "
                f"database; got {db_bytes}"
            )
        layout = DatabaseLayout(db_bytes)
        usable = db_bytes - AUDIT_BYTES
        # Keep TPC-B's 1 branch : 10 tellers : N accounts shape; nearly
        # all of the space goes to accounts.
        accounts = max(10, int(usable * 0.97) // RECORD_BYTES)
        branches = max(1, accounts // 100_000)
        tellers = branches * TELLERS_PER_BRANCH

        balance_field = {"balance": (0, 4), "filler": (4, 4)}
        self.branches = layout.add_table("branch", RECORD_BYTES, branches, balance_field)
        self.tellers = layout.add_table("teller", RECORD_BYTES, tellers, balance_field)
        self.accounts = layout.add_table(
            "account", RECORD_BYTES, accounts, balance_field
        )
        self.audit_base, self.audit_size = layout.add_area("audit", AUDIT_BYTES)
        self.audit_slots = self.audit_size // AUDIT_SLOT_BYTES
        self.layout = layout

        # Shadow model: expected balances, for verification.
        self.shadow: Dict[str, Dict[int, int]] = {
            "branch": {},
            "teller": {},
            "account": {},
        }

    # -- setup ---------------------------------------------------------------

    def setup(self, target: TransactionTarget) -> None:
        """Balances start at zero (regions are zero-filled), so setup
        only needs to exist for symmetry; kept explicit so replicated
        targets can hook their initial sync."""
        target.initialize_data(0, b"\x00")

    # -- one transaction --------------------------------------------------------

    def _pick_account(self) -> int:
        if self.skew <= 0:
            return self.rng.randrange(self.accounts.records)
        if self._account_picker is None:
            from repro.sim.rng import zipf_like

            self._account_picker = zipf_like(
                self.rng, self.accounts.records, self.skew
            )
        return next(self._account_picker)

    def run_transaction(self, target: TransactionTarget) -> None:
        rng = self.rng
        account_id = self._pick_account()
        branch_id = min(
            account_id * self.branches.records // self.accounts.records,
            self.branches.records - 1,
        )
        teller_id = branch_id * TELLERS_PER_BRANCH + rng.randrange(
            TELLERS_PER_BRANCH
        )
        delta = rng.randrange(-999_999, 1_000_000)

        target.begin_transaction()
        for table, index in (
            (self.accounts, account_id),
            (self.tellers, teller_id),
            (self.branches, branch_id),
        ):
            target.set_range(table.field_offset(index, "balance"), 4)
            table.add_to_field(target, index, "balance", delta)

        slot = self.transactions_run % self.audit_slots
        slot_offset = self.audit_base + slot * AUDIT_SLOT_BYTES
        target.set_range(slot_offset, AUDIT_SLOT_BYTES, hint=HINT_SEQUENTIAL)
        target.write(
            slot_offset,
            _HISTORY.pack(account_id, teller_id, branch_id, delta & 0x7FFFFFFF),
        )
        target.commit_transaction()

        for name, index in (
            ("account", account_id),
            ("teller", teller_id),
            ("branch", branch_id),
        ):
            self.shadow[name][index] = self.shadow[name].get(index, 0) + delta
        self._count("debit-credit")

    # -- verification ---------------------------------------------------------------

    def verify(self, target: TransactionTarget) -> None:
        tables = {
            "account": self.accounts,
            "teller": self.tellers,
            "branch": self.branches,
        }
        for name, balances in self.shadow.items():
            table = tables[name]
            for index, expected in balances.items():
                actual = table.read_field(target, index, "balance")
                if actual != expected:
                    raise AssertionError(
                        f"{name}[{index}] balance is {actual}, "
                        f"shadow model expects {expected}"
                    )

    def consistency_check(self, target: TransactionTarget) -> None:
        """TPC-B invariant: sum of account balances == sum of teller
        balances == sum of branch balances (computed from the actual
        database bytes; untouched records hold zero)."""
        sums = []
        for name, table in (
            ("account", self.accounts),
            ("teller", self.tellers),
            ("branch", self.branches),
        ):
            sums.append(
                sum(
                    table.read_field(target, index, "balance")
                    for index in self.shadow[name]
                )
            )
        if not sums[0] == sums[1] == sums[2]:
            raise AssertionError(f"balance sums diverged: {sums}")
