"""Sim-time multi-window burn-rate alerting over recorded traces.

The SRE playbook's paging rule, transplanted onto the simulator's
clock: an alert fires when the error-budget *burn rate* — downtime in
a trailing window divided by the budget that window is allowed to
spend — exceeds a threshold in **both** a short and a long trailing
window. The short window makes the alert fast, the long window keeps
one blip from paging, and evaluating on the recorded
``series.sample`` ticks keeps everything deterministic: the engine is
a pure function of the trace, so re-running it reproduces the same
``alert.fire`` / ``alert.resolve`` events byte for byte.

The engine runs *post-hoc*: experiments evaluate the recorded events
after the run and append the alert instants (whose timestamps lie in
the past, at the ticks where the rule tripped) to the trace before
writing it. Appending keeps the measured event stream untouched —
every consumer selects by name, none by position — while the auditor's
``alert-grounded`` rule replays the same evaluation from the trace's
own downtime windows and flags any fire the windows do not justify
(false fires) and any justified fire that is missing (missed windows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.trace import TraceEvent

#: Trace vocabulary: one instant when a rule starts/stops firing.
ALERT_FIRE = "alert.fire"
ALERT_RESOLVE = "alert.resolve"
#: Component the alert instants are recorded under.
ALERT_COMPONENT = "alerts"


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate SLO rule.

    Fires for a scope when the downtime share of both the short and the
    long trailing window exceeds ``burn_threshold`` times the error
    budget (``1 - objective``); resolves when the short window clears.
    """

    name: str
    objective: float
    short_window_us: float
    long_window_us: float
    burn_threshold: float

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")
        if self.short_window_us <= 0 or self.long_window_us <= 0:
            raise ValueError("alert windows must be positive")
        if self.long_window_us < self.short_window_us:
            raise ValueError("long window must be >= short window")
        if self.burn_threshold <= 0:
            raise ValueError("burn threshold must be positive")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    def burn(self, downtime_us: float, window_us: float) -> float:
        return downtime_us / (window_us * self.error_budget)

    def to_attrs(self) -> Dict[str, object]:
        return {
            "rule": self.name,
            "objective": self.objective,
            "short_window_us": self.short_window_us,
            "long_window_us": self.long_window_us,
            "burn_threshold": self.burn_threshold,
        }

    @classmethod
    def from_attrs(cls, attrs: Mapping[str, object]) -> "BurnRateRule":
        return cls(
            name=str(attrs["rule"]),
            objective=float(attrs["objective"]),
            short_window_us=float(attrs["short_window_us"]),
            long_window_us=float(attrs["long_window_us"]),
            burn_threshold=float(attrs["burn_threshold"]),
        )


#: The default rule set, sized to the experiments' millisecond-scale
#: outages: "page" is the fast-burn pair (an outage must eat 10x the
#: 99.9% budget of both windows), "ticket" the slow-burn pair.
DEFAULT_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule(
        name="page", objective=0.999,
        short_window_us=2_000.0, long_window_us=8_000.0,
        burn_threshold=10.0,
    ),
    BurnRateRule(
        name="ticket", objective=0.99,
        short_window_us=5_000.0, long_window_us=20_000.0,
        burn_threshold=2.0,
    ),
)

#: (start, end) with ``end=None`` while the outage is still open.
Window = Tuple[float, Optional[float]]


def downtime_windows(
    events: Iterable[TraceEvent],
) -> Dict[str, List[Window]]:
    """Per-scope downtime windows, the auditor's way: ``fault.crash``
    opens a window for its ``<scope>.cluster`` component, the matching
    ``takeover`` span's end closes it."""
    from repro.obs.recovery import scope_of_component

    windows: Dict[str, List[Window]] = {}
    for event in events:
        if event.name == "fault.crash":
            scope = scope_of_component(event.component)
            windows.setdefault(scope, []).append((event.ts_us, None))
        elif event.name == "takeover":
            scope = scope_of_component(event.component)
            scoped = windows.setdefault(scope, [])
            for index in range(len(scoped) - 1, -1, -1):
                start, end = scoped[index]
                if end is None:
                    scoped[index] = (start, event.end_us)
                    break
            else:
                scoped.append((event.ts_us, event.end_us))
    return windows


def sample_ticks(events: Iterable[TraceEvent]) -> List[float]:
    """The evaluation instants: the trace's ``series.sample`` ticks, or
    — for traces without a sampler — the downtime window edges."""
    from repro.obs.series import SAMPLE_EVENT

    ticks = sorted({
        event.ts_us for event in events if event.name == SAMPLE_EVENT
    })
    if ticks:
        return ticks
    edges = set()
    for event in events:
        if event.name == "fault.crash":
            edges.add(event.ts_us)
        elif event.name == "takeover":
            edges.add(event.ts_us)
            edges.add(event.end_us)
    return sorted(edges)


def _window_downtime(
    windows: Sequence[Window], start_us: float, end_us: float
) -> float:
    """Downtime overlapping ``(start_us, end_us]``; open windows count
    up to ``end_us`` (the outage is still burning at that instant)."""
    total = 0.0
    for window_start, window_end in windows:
        closed_end = end_us if window_end is None else min(window_end, end_us)
        total += max(0.0, closed_end - max(window_start, start_us))
    return total


def fire_schedule(
    windows_by_scope: Mapping[str, Sequence[Window]],
    ticks: Sequence[float],
    rules: Sequence[BurnRateRule] = DEFAULT_RULES,
) -> List[TraceEvent]:
    """Evaluate every rule over every scope at every tick.

    Pure and deterministic: the auditor replays exactly this function
    from its own downtime bookkeeping to cross-check recorded alerts.
    Returned events are ordered by tick, then rule order, then scope.
    """
    scopes = sorted(windows_by_scope)
    firing: Dict[Tuple[str, str], bool] = {}
    out: List[TraceEvent] = []
    for tick in ticks:
        for rule in rules:
            for scope in scopes:
                windows = windows_by_scope[scope]
                short_down = _window_downtime(
                    windows, tick - rule.short_window_us, tick
                )
                long_down = _window_downtime(
                    windows, tick - rule.long_window_us, tick
                )
                short_burn = rule.burn(short_down, rule.short_window_us)
                long_burn = rule.burn(long_down, rule.long_window_us)
                key = (rule.name, scope)
                active = firing.get(key, False)
                should_fire = (
                    short_burn > rule.burn_threshold
                    and long_burn > rule.burn_threshold
                )
                if should_fire and not active:
                    firing[key] = True
                    out.append(TraceEvent(
                        ts_us=tick, component=ALERT_COMPONENT,
                        name=ALERT_FIRE,
                        attrs={
                            **rule.to_attrs(),
                            "scope": scope or "cluster",
                            "short_burn": short_burn,
                            "long_burn": long_burn,
                            "downtime_short_us": short_down,
                            "downtime_long_us": long_down,
                        },
                    ))
                elif active and short_burn <= rule.burn_threshold:
                    firing[key] = False
                    out.append(TraceEvent(
                        ts_us=tick, component=ALERT_COMPONENT,
                        name=ALERT_RESOLVE,
                        attrs={
                            **rule.to_attrs(),
                            "scope": scope or "cluster",
                            "short_burn": short_burn,
                            "long_burn": long_burn,
                        },
                    ))
    return out


def evaluate_alerts(
    events: Sequence[TraceEvent],
    rules: Sequence[BurnRateRule] = DEFAULT_RULES,
) -> List[TraceEvent]:
    """The alert events a trace's downtime record justifies.

    Ignores any alert events already present, so evaluating an already
    annotated trace reproduces the same schedule (idempotence — the
    self-diff property leans on this).
    """
    base = [
        event for event in events
        if event.name not in (ALERT_FIRE, ALERT_RESOLVE)
    ]
    return fire_schedule(downtime_windows(base), sample_ticks(base), rules)


def rules_from_events(
    events: Iterable[TraceEvent],
) -> List[BurnRateRule]:
    """The rule set recorded alert events carry in their attrs (each
    fire/resolve restates its rule's parameters), in first-seen order."""
    rules: Dict[str, BurnRateRule] = {}
    for event in events:
        if event.name in (ALERT_FIRE, ALERT_RESOLVE):
            rule = BurnRateRule.from_attrs(event.attrs)
            rules.setdefault(rule.name, rule)
    return list(rules.values())


@dataclass
class AlertVerification:
    """Recorded alerts vs the schedule the downtime record justifies."""

    recorded: int
    expected: int
    false_fires: List[str] = field(default_factory=list)
    missed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.false_fires and not self.missed

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        title = (
            f"Alert verification: {verdict} — {self.recorded} recorded, "
            f"{self.expected} justified"
        )
        lines = [title, "=" * len(title)]
        for item in self.false_fires:
            lines.append(f"  false fire: {item}")
        for item in self.missed:
            lines.append(f"  missed: {item}")
        if self.ok:
            lines.append("  every alert grounded in real downtime, none missed")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "recorded": self.recorded,
            "expected": self.expected,
            "false_fires": list(self.false_fires),
            "missed": list(self.missed),
        }


def _alert_key(event: TraceEvent) -> Tuple[float, str, str, str]:
    return (
        event.ts_us, event.name,
        str(event.attrs.get("rule")), str(event.attrs.get("scope")),
    )


def verify_alerts(
    events: Sequence[TraceEvent],
    rules: Optional[Sequence[BurnRateRule]] = None,
) -> AlertVerification:
    """Cross-check a trace's recorded alerts against its own downtime.

    ``rules`` defaults to the set the recorded alerts restate in their
    attrs (falling back to :data:`DEFAULT_RULES` when the trace has no
    alerts at all, so an un-annotated trace with alert-worthy downtime
    correctly reports missed windows).
    """
    recorded = [
        event for event in events
        if event.name in (ALERT_FIRE, ALERT_RESOLVE)
    ]
    if rules is None:
        rules = rules_from_events(recorded) or list(DEFAULT_RULES)
    expected = evaluate_alerts(events, rules)
    recorded_keys = {_alert_key(event) for event in recorded}
    expected_keys = {_alert_key(event) for event in expected}
    false_fires = [
        f"{name} rule={rule!s} scope={scope!s} at {ts:.1f}us not justified "
        f"by any downtime window"
        for ts, name, rule, scope in sorted(recorded_keys - expected_keys)
    ]
    missed = [
        f"{name} rule={rule!s} scope={scope!s} due at {ts:.1f}us was never "
        f"recorded"
        for ts, name, rule, scope in sorted(expected_keys - recorded_keys)
    ]
    return AlertVerification(
        recorded=len(recorded),
        expected=len(expected),
        false_fires=false_fires,
        missed=missed,
    )
