"""Online trace auditing: machine-checked replication invariants.

The observability layer records what the systems *did*; this module
checks that what they did is *allowed*. A :class:`TraceAuditor`
consumes a trace event stream — live, event by event, or replayed from
JSONL — and emits a typed :class:`Violation` for every breach of the
invariants the paper's protocols promise:

* **ring-overrun** — the redo-ring producer may never lap the
  consumer: ``produced - consumed <= capacity`` on every
  ``ring.publish`` (Section 6.1's two-pointer discipline).
* **ring-monotone** — both ring pointers are monotonically increasing
  byte sequence numbers, and the consumer never passes the producer.
* **lag-bound** — the backup's apply lag stays within a configured
  bound (defaults to the ring capacity carried on the event).
* **commit-ordering** — a commit claiming 2-safe must show the backup
  durably caught up (``ring_lag_bytes == 0``): 2-safe with redo still
  in flight is exactly the lost-transaction window 2-safe exists to
  close (Section 2.1).
* **epoch-monotone** — membership view ids and service epochs only
  move forward, per scope.
* **downtime-completion** — no transaction completes for a shard
  inside its declared downtime window (``fault.crash`` until the
  ``takeover`` span's service restoration).
* **span-sum** — every ``commit.span`` parent's duration equals the
  sum of its ``commit.phase`` children within float tolerance (the
  tiling invariant of :mod:`repro.obs.spans`).
* **quorum-intersection** — every ``quorum.read`` / ``quorum.write``
  gathered at least its required quorum, and a strict-mode group's
  configuration actually guarantees read/write intersection
  (``R + W > N``) — acks below quorum mean the operation claimed
  success it was not entitled to.
* **vv-monotone** — version vectors only move forward: a write
  coordinator's own counter strictly increases per key, and
  successive strict reads of one key return vectors that descend
  from what was read before (the read-latest guarantee, re-checked
  offline).
* **recovery-span-tiles-downtime** — every closed downtime window is
  matched by exactly one ``recovery.span`` with the same bounds, and
  that span's ``recovery.phase`` children tile it exactly (contiguous,
  first at the crash, last at restoration, sum equal to the span
  within float tolerance). Checked only when the trace records
  recovery spans at all, so pre-recovery traces stay audit-clean.
* **alert-grounded** — the recorded ``alert.fire`` / ``alert.resolve``
  instants must equal the schedule the trace's own downtime windows
  justify: the auditor replays the burn-rate engine from its downtime
  bookkeeping and flags every false fire and every missed window.
  Checked only when the trace records alert events.

The auditor is deliberately stream-friendly: :meth:`TraceAuditor.feed`
does all per-event work online; only the span-sum reconciliation, the
recovery/downtime tiling, the alert replay (and any still-open
downtime windows) wait for :meth:`TraceAuditor.finish`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.spans import COMMIT_PHASE, COMMIT_SPAN
from repro.obs.trace import TraceEvent
from repro.quorum.versions import VersionVector

#: Imported by name to avoid a hard import cycle (alerts/recovery are
#: leaf modules, but keep the vocabulary strings local and cheap).
_RECOVERY_SPAN = "recovery.span"
_RECOVERY_PHASE = "recovery.phase"
_ALERT_NAMES = ("alert.fire", "alert.resolve")
_SAMPLE_EVENT = "series.sample"

#: Relative tolerance of the span-sum check. Phase durations are
#: accumulated floats, so exact equality is one rounding away from a
#: false alarm.
SPAN_SUM_RTOL = 1e-9
SPAN_SUM_ATOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to the event that revealed it."""

    rule: str
    ts_us: float
    component: str
    message: str
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "rule": self.rule,
            "ts_us": self.ts_us,
            "component": self.component,
            "message": self.message,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    def __str__(self) -> str:
        return (
            f"[{self.rule}] t={self.ts_us:.1f}us {self.component}: "
            f"{self.message}"
        )


@dataclass
class AuditReport:
    """The auditor's verdict over one trace."""

    events_seen: int
    commits_checked: int
    spans_checked: int
    violations: List[Violation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        verdict = "PASS" if self.ok else f"FAIL ({len(self.violations)} violations)"
        title = (
            f"Trace audit: {verdict} — {self.events_seen} events, "
            f"{self.commits_checked} commits, {self.spans_checked} commit spans"
        )
        lines = [title, "=" * len(title)]
        for violation in self.violations:
            lines.append(f"  {violation}")
        if self.ok:
            lines.append("  all invariants hold")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "events_seen": self.events_seen,
            "commits_checked": self.commits_checked,
            "spans_checked": self.spans_checked,
            "violations": [violation.to_dict() for violation in self.violations],
        }


def _scope_of(component: str) -> str:
    """The shard scope a cluster-level component belongs to.

    ``shard.2.cluster`` -> ``shard.2``; a bare ``cluster`` (unsharded
    pair) -> ``""``, which downtime matching treats as "everything".
    """
    scope = component.rsplit(".cluster", 1)[0]
    return "" if scope == component else scope


class TraceAuditor:
    """Feed trace events in stream order; collect violations.

    Args:
        max_lag_bytes: optional hard bound on the redo ring's apply
            lag. When None the bound is each event's own ring capacity
            (i.e. only overruns are flagged).
    """

    def __init__(self, max_lag_bytes: Optional[int] = None):
        self.max_lag_bytes = max_lag_bytes
        self.violations: List[Violation] = []
        self.events_seen = 0
        self.commits_checked = 0
        # Ring pointer state per producing/applying component.
        self._ring_produced: Dict[str, int] = {}
        self._ring_consumed: Dict[str, int] = {}
        # Monotone epoch state.
        self._view_ids: Dict[str, int] = {}
        self._epochs: Dict[str, int] = {}
        # Downtime windows per scope: closed (start, end) plus at most
        # one open window (start, None) while a takeover is pending.
        self._downtime: Dict[str, List[Tuple[float, Optional[float]]]] = {}
        # Span tiling: parent span_id -> (event, declared duration),
        # and accumulated child durations per parent.
        self._span_parents: Dict[int, TraceEvent] = {}
        self._span_child_sums: Dict[int, float] = {}
        self._orphan_children: List[TraceEvent] = []
        # Version-vector monotonicity state: a write coordinator's last
        # own-counter per (component, key, coordinator), and the last
        # strict read's merged vector per (component, key).
        self._write_counters: Dict[Tuple[str, int, int], int] = {}
        self._read_vvs: Dict[Tuple[str, int], VersionVector] = {}
        # Recovery-span tiling: root events by span id, their phase
        # children in stream order, and phases with unknown parents.
        self._recovery_roots: Dict[int, TraceEvent] = {}
        self._recovery_children: Dict[int, List[TraceEvent]] = {}
        self._recovery_orphans: List[TraceEvent] = []
        # Alert grounding: recorded alert instants plus the evaluation
        # ticks (sampler instants; crash/takeover edges as fallback).
        self._alert_events: List[TraceEvent] = []
        self._sample_ticks: set = set()
        self._edge_ticks: set = set()

    # -- violation plumbing ---------------------------------------------------

    def _flag(self, rule: str, event: TraceEvent, message: str,
              **attrs: object) -> None:
        self.violations.append(
            Violation(rule, event.ts_us, event.component, message, attrs)
        )

    # -- per-event checks -----------------------------------------------------

    def feed(self, event: TraceEvent) -> None:
        """Check one event, in stream order."""
        self.events_seen += 1
        name = event.name
        if name in ("ring.publish", "ring.apply"):
            self._check_ring(event)
        elif name == "commit":
            self._check_commit(event)
        elif name == "view.change":
            self._check_view(event)
        elif name == "service.restored":
            self._check_epoch(event)
        elif name == "fault.crash":
            self._open_downtime(event)
        elif name == "takeover":
            self._close_downtime(event)
        elif name == "txn.complete":
            self._check_completion(event)
        elif name == "quorum.write":
            self._check_quorum(event)
            self._check_write_vv(event)
        elif name == "quorum.read":
            self._check_quorum(event)
            self._check_read_vv(event)
        elif name == COMMIT_SPAN:
            span_id = int(event.attrs.get("span_id", 0))
            self._span_parents[span_id] = event
            self._span_child_sums.setdefault(span_id, 0.0)
        elif name == COMMIT_PHASE:
            parent_id = int(event.attrs.get("parent_id", 0))
            if parent_id in self._span_parents:
                self._span_child_sums[parent_id] += event.dur_us
            else:
                self._orphan_children.append(event)
        elif name == _RECOVERY_SPAN:
            span_id = int(event.attrs.get("span_id", 0))
            self._recovery_roots[span_id] = event
            self._recovery_children.setdefault(span_id, [])
        elif name == _RECOVERY_PHASE:
            parent_id = int(event.attrs.get("parent_id", 0))
            if parent_id in self._recovery_roots:
                self._recovery_children[parent_id].append(event)
            else:
                self._recovery_orphans.append(event)
        elif name in _ALERT_NAMES:
            self._alert_events.append(event)
        elif name == _SAMPLE_EVENT:
            self._sample_ticks.add(event.ts_us)

    def _check_ring(self, event: TraceEvent) -> None:
        attrs = event.attrs
        produced = int(attrs["produced"])
        consumed = int(attrs["consumed"])
        capacity = int(attrs["capacity"])
        key = event.component
        lag = produced - consumed
        if lag > capacity:
            self._flag(
                "ring-overrun", event,
                f"producer lapped consumer: lag {lag} > capacity {capacity}",
                produced=produced, consumed=consumed, capacity=capacity,
            )
        bound = self.max_lag_bytes
        if bound is not None and lag > bound:
            self._flag(
                "lag-bound", event,
                f"apply lag {lag} bytes exceeds bound {bound}",
                lag=lag, bound=bound,
            )
        if lag < 0:
            self._flag(
                "ring-monotone", event,
                f"consumer passed producer: consumed {consumed} > "
                f"produced {produced}",
                produced=produced, consumed=consumed,
            )
        last_produced = self._ring_produced.get(key)
        if last_produced is not None and produced < last_produced:
            self._flag(
                "ring-monotone", event,
                f"producer pointer went backwards: {produced} < {last_produced}",
                produced=produced, previous=last_produced,
            )
        last_consumed = self._ring_consumed.get(key)
        if last_consumed is not None and consumed < last_consumed:
            self._flag(
                "ring-monotone", event,
                f"consumer pointer went backwards: {consumed} < {last_consumed}",
                consumed=consumed, previous=last_consumed,
            )
        self._ring_produced[key] = produced
        self._ring_consumed[key] = consumed

    def _check_commit(self, event: TraceEvent) -> None:
        self.commits_checked += 1
        safety = event.attrs.get("safety")
        if safety == "2-safe":
            lag = int(event.attrs.get("ring_lag_bytes", 0))
            if lag != 0:
                self._flag(
                    "commit-ordering", event,
                    f"2-safe commit returned with {lag} redo bytes still "
                    f"unapplied on the backup",
                    ring_lag_bytes=lag,
                )

    def _check_view(self, event: TraceEvent) -> None:
        view_id = int(event.attrs.get("view_id", 0))
        key = event.component
        last = self._view_ids.get(key)
        if last is not None and view_id <= last:
            self._flag(
                "epoch-monotone", event,
                f"view id did not advance: {view_id} after {last}",
                view_id=view_id, previous=last,
            )
        self._view_ids[key] = view_id

    def _check_epoch(self, event: TraceEvent) -> None:
        if "epoch" not in event.attrs:
            return
        epoch = int(event.attrs["epoch"])
        key = event.component
        last = self._epochs.get(key)
        if last is not None and epoch <= last:
            self._flag(
                "epoch-monotone", event,
                f"service epoch did not advance: {epoch} after {last}",
                epoch=epoch, previous=last,
            )
        self._epochs[key] = epoch

    # -- quorum invariants ----------------------------------------------------

    def _check_quorum(self, event: TraceEvent) -> None:
        attrs = event.attrs
        acks = int(attrs.get("acks", 0))
        required = int(attrs.get("required", 0))
        if acks < required:
            self._flag(
                "quorum-intersection", event,
                f"{event.name} gathered {acks} acks, quorum requires "
                f"{required}",
                acks=acks, required=required,
            )
        if attrs.get("mode") == "strict":
            n = int(attrs.get("n", 0))
            r = int(attrs.get("r", 0))
            w = int(attrs.get("w", 0))
            if r + w <= n:
                self._flag(
                    "quorum-intersection", event,
                    f"strict group configured with R+W <= N "
                    f"({r}+{w} <= {n}): read and write quorums need not "
                    f"intersect",
                    n=n, r=r, w=w,
                )

    def _check_write_vv(self, event: TraceEvent) -> None:
        attrs = event.attrs
        if "vv" not in attrs or "coordinator" not in attrs:
            return
        vv = VersionVector.decode(str(attrs["vv"]))
        coordinator = int(attrs["coordinator"])
        key = (event.component, int(attrs.get("key", -1)), coordinator)
        counter = vv.counter(coordinator)
        last = self._write_counters.get(key)
        if last is not None and counter <= last:
            self._flag(
                "vv-monotone", event,
                f"write coordinator {coordinator}'s counter did not "
                f"advance: {counter} after {last}",
                coordinator=coordinator, counter=counter, previous=last,
            )
        self._write_counters[key] = max(counter, last or 0)

    def _check_read_vv(self, event: TraceEvent) -> None:
        attrs = event.attrs
        # Only strict reads promise monotone vectors; a sloppy read on
        # the small side of a partition may legitimately regress.
        if attrs.get("mode") != "strict" or "vv" not in attrs:
            return
        vv = VersionVector.decode(str(attrs["vv"]))
        key = (event.component, int(attrs.get("key", -1)))
        last = self._read_vvs.get(key)
        if last is not None and not vv.descends(last):
            self._flag(
                "vv-monotone", event,
                f"strict read returned {vv.encode() or 'empty'!r}, which "
                f"does not descend from the previously read "
                f"{last.encode()!r}",
                vv=vv.encode(), previous=last.encode(),
            )
        self._read_vvs[key] = vv.merge(last) if last is not None else vv

    # -- downtime windows -----------------------------------------------------

    def _open_downtime(self, event: TraceEvent) -> None:
        scope = _scope_of(event.component)
        self._downtime.setdefault(scope, []).append((event.ts_us, None))
        self._edge_ticks.add(event.ts_us)

    def _close_downtime(self, event: TraceEvent) -> None:
        scope = _scope_of(event.component)
        self._edge_ticks.add(event.ts_us)
        self._edge_ticks.add(event.end_us)
        windows = self._downtime.setdefault(scope, [])
        for index in range(len(windows) - 1, -1, -1):
            start, end = windows[index]
            if end is None:
                windows[index] = (start, event.end_us)
                return
        # A takeover with no recorded crash still declares downtime
        # over the span itself (detection to restoration).
        windows.append((event.ts_us, event.end_us))

    def _completion_scope(self, event: TraceEvent) -> Optional[str]:
        # Clusters whose serving scopes are not shards (quorum groups)
        # stamp completions with an explicit scope; shard completions
        # keep the derived "shard.N" name.
        if "scope" in event.attrs:
            return str(event.attrs["scope"])
        if "shard" in event.attrs:
            return f"shard.{int(event.attrs['shard'])}"
        return None

    def _check_completion(self, event: TraceEvent) -> None:
        scope = self._completion_scope(event)
        for window_scope, windows in self._downtime.items():
            if window_scope and scope is not None and window_scope != scope:
                continue
            for start, end in windows:
                closed_end = end if end is not None else float("inf")
                if start <= event.ts_us < closed_end:
                    self._flag(
                        "downtime-completion", event,
                        f"transaction completed at {event.ts_us:.1f}us inside "
                        f"{window_scope or 'cluster'} downtime "
                        f"[{start:.1f}, "
                        f"{'open' if end is None else format(end, '.1f')})",
                        scope=window_scope, window_start_us=start,
                        window_end_us=end,
                    )
                    return

    # -- finalization ---------------------------------------------------------

    def _check_recovery_tiling(self) -> None:
        """The recovery-span-tiles-downtime rule.

        Gated on the trace recording any recovery spans at all: traces
        from before the recovery engine (and synthetic fixtures that
        only exercise other rules) stay clean.
        """
        if not self._recovery_roots:
            return
        rule = "recovery-span-tiles-downtime"
        from repro.obs.recovery import RECOVERY_PHASES

        by_scope: Dict[str, List[TraceEvent]] = {}
        for span_id, root in sorted(self._recovery_roots.items()):
            by_scope.setdefault(_scope_of(root.component), []).append(root)
            children = sorted(
                self._recovery_children.get(span_id, []),
                key=lambda child: child.ts_us,
            )
            tolerance = SPAN_SUM_ATOL + SPAN_SUM_RTOL * abs(root.dur_us)
            child_sum = sum(child.dur_us for child in children)
            if abs(child_sum - root.dur_us) > tolerance:
                self._flag(
                    rule, root,
                    f"recovery span duration {root.dur_us:.6f}us != phase "
                    f"sum {child_sum:.6f}us",
                    dur_us=root.dur_us, phase_sum_us=child_sum,
                )
            cursor = root.ts_us
            contiguous = True
            for child in children:
                phase = str(child.attrs.get("phase"))
                if phase not in RECOVERY_PHASES:
                    self._flag(
                        rule, child,
                        f"unknown recovery phase {phase!r}",
                        phase=phase,
                    )
                if abs(child.ts_us - cursor) > SPAN_SUM_ATOL:
                    self._flag(
                        rule, child,
                        f"recovery phase {phase!r} starts at "
                        f"{child.ts_us:.6f}us, expected {cursor:.6f}us "
                        f"(children must tile the downtime)",
                        expected_start_us=cursor,
                    )
                    contiguous = False
                    break
                cursor = child.end_us
            if children and contiguous and (
                abs(cursor - root.end_us) > tolerance
            ):
                self._flag(
                    rule, root,
                    f"last recovery phase ends at {cursor:.6f}us, recovery "
                    f"span ends at {root.end_us:.6f}us",
                    last_phase_end_us=cursor,
                )
        for child in self._recovery_orphans:
            self._flag(
                rule, child,
                f"recovery.phase child references unknown parent span "
                f"{child.attrs.get('parent_id')}",
            )
        # One root per closed downtime window, with matching bounds.
        for scope in sorted(set(self._downtime) | set(by_scope)):
            roots = by_scope.get(scope, [])
            windows = self._downtime.get(scope, [])
            unmatched = list(roots)
            for start, end in windows:
                if end is None:
                    continue  # still open: restoration never happened
                tolerance = SPAN_SUM_ATOL + SPAN_SUM_RTOL * abs(end - start)
                match = next(
                    (
                        root for root in unmatched
                        if abs(root.ts_us - start) <= tolerance
                        and abs(root.end_us - end) <= tolerance
                    ),
                    None,
                )
                if match is None:
                    self.violations.append(Violation(
                        rule, start, scope or "cluster",
                        f"downtime window [{start:.1f}, {end:.1f})us has no "
                        f"matching recovery span",
                        {"window_start_us": start, "window_end_us": end},
                    ))
                else:
                    unmatched.remove(match)
            for root in unmatched:
                self._flag(
                    rule, root,
                    f"recovery span [{root.ts_us:.1f}, {root.end_us:.1f})us "
                    f"matches no downtime window of scope "
                    f"{scope or 'cluster'}",
                    scope=scope,
                )

    def _check_alert_grounding(self) -> None:
        """The alert-grounded rule: recorded alerts must equal the
        schedule the trace's own downtime record justifies. Gated on
        the trace carrying alert events at all."""
        if not self._alert_events:
            return
        from repro.obs.alerts import _alert_key, fire_schedule, rules_from_events

        rules = rules_from_events(self._alert_events)
        ticks = sorted(self._sample_ticks or self._edge_ticks)
        expected = fire_schedule(self._downtime, ticks, rules)
        recorded_by_key = {
            _alert_key(event): event for event in self._alert_events
        }
        expected_by_key = {_alert_key(event): event for event in expected}
        for key in sorted(set(recorded_by_key) - set(expected_by_key)):
            event = recorded_by_key[key]
            self._flag(
                "alert-grounded", event,
                f"{event.name} for rule {event.attrs.get('rule')!r} scope "
                f"{event.attrs.get('scope')!r} at {event.ts_us:.1f}us is not "
                f"justified by any downtime window",
                rule_name=event.attrs.get("rule"),
                scope=event.attrs.get("scope"),
            )
        for key in sorted(set(expected_by_key) - set(recorded_by_key)):
            event = expected_by_key[key]
            self._flag(
                "alert-grounded", event,
                f"justified {event.name} for rule "
                f"{event.attrs.get('rule')!r} scope "
                f"{event.attrs.get('scope')!r} due at {event.ts_us:.1f}us "
                f"was never recorded (missed window)",
                rule_name=event.attrs.get("rule"),
                scope=event.attrs.get("scope"),
            )

    def finish(self) -> AuditReport:
        """Run the deferred whole-trace checks and return the report."""
        for span_id, parent in sorted(self._span_parents.items()):
            child_sum = self._span_child_sums.get(span_id, 0.0)
            tolerance = SPAN_SUM_ATOL + SPAN_SUM_RTOL * abs(parent.dur_us)
            if abs(child_sum - parent.dur_us) > tolerance:
                self._flag(
                    "span-sum", parent,
                    f"commit span duration {parent.dur_us:.6f}us != phase "
                    f"sum {child_sum:.6f}us",
                    dur_us=parent.dur_us, phase_sum_us=child_sum,
                )
        for child in self._orphan_children:
            self._flag(
                "span-sum", child,
                f"commit.phase child references unknown parent span "
                f"{child.attrs.get('parent_id')}",
            )
        self._check_recovery_tiling()
        self._check_alert_grounding()
        return AuditReport(
            events_seen=self.events_seen,
            commits_checked=self.commits_checked,
            spans_checked=len(self._span_parents),
            violations=list(self.violations),
        )


def audit_events(
    events: Iterable[TraceEvent], max_lag_bytes: Optional[int] = None
) -> AuditReport:
    """Audit an in-memory event stream."""
    auditor = TraceAuditor(max_lag_bytes=max_lag_bytes)
    for event in events:
        auditor.feed(event)
    return auditor.finish()


def audit_trace_file(
    path: str, max_lag_bytes: Optional[int] = None
) -> AuditReport:
    """Audit a JSONL trace file written by ``write_jsonl``."""
    from repro.obs.export import read_jsonl

    events, _metrics = read_jsonl(path)
    return audit_events(events, max_lag_bytes=max_lag_bytes)
