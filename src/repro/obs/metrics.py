"""A simulated-time-aware metrics registry.

Every metric lives in one flat namespace of hierarchical dot-joined
names (``shard.0.router.retries``), so a report can select families
with a simple prefix match instead of knowing which component owns
which Python object. Three metric kinds cover the stack:

* :class:`Counter` — monotone totals (packets, retries, heartbeats).
* :class:`Gauge` — last-written level (queue depth, pointer lag).
* :class:`Histogram` — bucketed distributions (commit latency); the
  bucket bounds are fixed at creation so two snapshots of the same
  histogram are always comparable.

The registry records *numbers only* — it never touches model state —
which is what lets an attached observer be provably zero-impact on
the simulation (the default-off contract of :mod:`repro.obs`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bounds: ~log2-spaced microsecond latency buckets
#: spanning one write-buffer drain to a whole mirror restore.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
)


@dataclass
class Counter:
    """A monotone total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def set(self, value: float) -> None:
        """Overwrite with an externally accumulated total (used by the
        :meth:`~repro.vista.stats.EngineCounters.snapshot_into` bridge,
        which folds an engine's own tallies in idempotently)."""
        self.value = value


@dataclass
class Gauge:
    """A last-write-wins level."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Bucketed distribution with count/sum/min/max sidecars.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge.
    """

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} bounds must be strictly increasing")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding
        the q-th observation (the overflow bucket reports the max)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = max(1, int(q * self.count + 0.5))
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max if self.max is not None else 0.0
        return self.max if self.max is not None else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Requires identical bucket bounds — merging differently-shaped
        histograms would silently misbucket, so it raises instead.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"bucket bounds differ"
            )
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)


class MetricsRegistry:
    """One namespace of counters, gauges and histograms.

    Metrics are created on first use and looked up by exact name; a
    name may hold only one kind (asking for ``counter`` where a gauge
    lives raises).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- creation / lookup ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        self._check_kind(name, "counter", self._counters)
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        self._check_kind(name, "gauge", self._gauges)
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        self._check_kind(name, "histogram", self._histograms)
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, bounds)
        return self._histograms[name]

    def _check_kind(self, name: str, kind: str, own: Dict) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not own and name in table:
                raise ValueError(
                    f"metric {name!r} already exists as a {other_kind}, "
                    f"requested as a {kind}"
                )

    # -- reading -------------------------------------------------------------

    def value(self, name: str, default: float = 0.0) -> float:
        """The scalar value of a counter or gauge (histograms have no
        single value; use :meth:`histogram`)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return default

    def names(self, prefix: str = "") -> List[str]:
        """All metric names under ``prefix`` (dot-aware), sorted."""
        every = (
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )
        if prefix:
            every = [
                name for name in every
                if name == prefix or name.startswith(prefix + ".")
            ]
        return sorted(every)

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-serializable dump of every metric, stable-ordered."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(hist.bounds),
                    "bucket_counts": list(hist.bucket_counts),
                    **hist.summary(),
                }
                for name, hist in sorted(self._histograms.items())
            },
        }

    # -- merging -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one, in place.

        Counters and histogram observations add; gauges take the
        other's value (last write wins, matching their semantics when
        the merged registries are fed in a defined order). This is how
        ``repro-experiments --jobs N`` folds its worker processes'
        per-cell registries back into one process-wide view.
        """
        for name in sorted(other._counters):
            self.counter(name).inc(other._counters[name].value)
        for name in sorted(other._gauges):
            self.gauge(name).set(other._gauges[name].value)
        for name in sorted(other._histograms):
            theirs = other._histograms[name]
            self.histogram(name, theirs.bounds).merge(theirs)

    def merge_snapshot(self, snapshot: Dict[str, Dict]) -> None:
        """Fold a :meth:`snapshot` dump into this registry — the
        picklable path for cross-process merging (snapshots travel
        through the pool; live registries never do)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, dump in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, tuple(dump["bounds"]))
            for index, bucket_count in enumerate(dump["bucket_counts"]):
                histogram.bucket_counts[index] += int(bucket_count)
            count = int(dump["count"])
            histogram.count += count
            histogram.sum += dump["sum"]
            if count:
                low, high = dump["min"], dump["max"]
                histogram.min = (
                    low if histogram.min is None else min(histogram.min, low)
                )
                histogram.max = (
                    high if histogram.max is None else max(histogram.max, high)
                )

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )
