"""Structural cross-run diffing of recorded traces and series.

Byte-diffing two runs' JSONL answers *whether* they diverged;
this module answers *where* and *by how much*. Two runs of the same
experiment allocate causal ids in the same global order, but a code
change that adds one span shifts every later id — so events are first
**canonicalized**: every causal id attr is renumbered by order of
first appearance, making the comparison purely structural. Then:

* **first-divergence localization** — the earliest event index where
  the runs disagree, with a field-level account of the disagreement
  (timestamp drift, attr change, added/removed event);
* **per-phase cost deltas** — commit-pipeline and recovery-phase
  totals side by side, the numbers a CI regression gate actually
  wants (a refactor that moved 200us from ``ship`` to ``apply`` shows
  up here even when every event still matches structurally);
* **series support** — ``repro-series-v1`` files diff row by row,
  column by column.

A run diffed against itself reports zero divergences — the property
suite holds that across seeds, job counts and fastpath settings, which
is what makes a non-empty diff in CI evidence of a real change.

Usage::

    python -m repro.obs.diff baseline.jsonl current.jsonl
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import TraceEvent

#: Attrs carrying causal ids, renumbered during canonicalization (the
#: same vocabulary the parallel merge renumbers in global order).
CANONICAL_ID_ATTRS: Tuple[str, ...] = (
    "trace_id", "span_id", "parent_id", "commit_trace_id",
)


def canonicalize_events(
    events: Sequence[TraceEvent],
) -> List[TraceEvent]:
    """Renumber every causal id by order of first appearance.

    Two traces with identical structure but shifted id allocation
    canonicalize to identical event lists; a trace whose ids are
    already dense and in allocation order (every run of this repo)
    is a fixed point.
    """
    id_map: Dict[int, int] = {}
    out: List[TraceEvent] = []
    for event in events:
        attrs = event.attrs
        if attrs and any(key in attrs for key in CANONICAL_ID_ATTRS):
            new_attrs = dict(attrs)
            for key in CANONICAL_ID_ATTRS:
                if key in new_attrs:
                    local = int(new_attrs[key])
                    if local not in id_map:
                        id_map[local] = len(id_map) + 1
                    new_attrs[key] = id_map[local]
            event = TraceEvent(
                ts_us=event.ts_us, component=event.component,
                name=event.name, kind=event.kind, dur_us=event.dur_us,
                attrs=new_attrs,
            )
        out.append(event)
    return out


def _event_fields(event: TraceEvent) -> Dict[str, object]:
    return {
        "ts_us": event.ts_us,
        "component": event.component,
        "name": event.name,
        "kind": event.kind,
        "dur_us": event.dur_us,
        "attrs": dict(event.attrs),
    }


@dataclass(frozen=True)
class Divergence:
    """One localized disagreement between baseline and current."""

    index: int
    field: str
    baseline: object
    current: object

    def __str__(self) -> str:
        return (
            f"#{self.index} {self.field}: "
            f"{self.baseline!r} -> {self.current!r}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "field": self.field,
            "baseline": self.baseline,
            "current": self.current,
        }


@dataclass
class TraceDiff:
    """The structural diff of two runs."""

    kind: str  # "trace" or "series"
    baseline_count: int
    current_count: int
    divergences: List[Divergence] = field(default_factory=list)
    truncated: bool = False
    #: phase -> (baseline_us, current_us) for commit and recovery phases.
    phase_deltas: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return (
            not self.divergences
            and self.baseline_count == self.current_count
        )

    @property
    def first_divergence(self) -> Optional[int]:
        if self.divergences:
            return self.divergences[0].index
        if self.baseline_count != self.current_count:
            return min(self.baseline_count, self.current_count)
        return None

    def render(self) -> str:
        unit = "events" if self.kind == "trace" else "samples"
        if self.identical:
            title = (
                f"Trace diff: IDENTICAL — {self.baseline_count} {unit}, "
                f"zero divergences"
            )
            return "\n".join([title, "=" * len(title)])
        title = (
            f"Trace diff: DIVERGED — baseline {self.baseline_count} "
            f"{unit}, current {self.current_count} {unit}, first "
            f"divergence at #{self.first_divergence}"
        )
        lines = [title, "=" * len(title)]
        for divergence in self.divergences:
            lines.append(f"  {divergence}")
        if self.truncated:
            lines.append("  ... (further divergences truncated)")
        changed = {
            phase: (old, new)
            for phase, (old, new) in self.phase_deltas.items()
            if old != new
        }
        if changed:
            lines.append("  per-phase cost deltas:")
            for phase in sorted(changed):
                old, new = changed[phase]
                lines.append(
                    f"    {phase:>12}: {old:.2f}us -> {new:.2f}us "
                    f"({new - old:+.2f}us)"
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "identical": self.identical,
            "baseline_count": self.baseline_count,
            "current_count": self.current_count,
            "first_divergence": self.first_divergence,
            "divergences": [d.to_dict() for d in self.divergences],
            "truncated": self.truncated,
            "phase_deltas_us": {
                phase: {"baseline": old, "current": new, "delta": new - old}
                for phase, (old, new) in sorted(self.phase_deltas.items())
            },
        }


def _phase_totals(events: Sequence[TraceEvent]) -> Dict[str, float]:
    """Commit-pipeline and recovery-phase totals, namespaced so the
    two vocabularies cannot collide in one delta table."""
    from repro.obs.critpath import decompose_recoveries
    from repro.obs.spans import attribute_commits

    totals: Dict[str, float] = {}
    commits = attribute_commits(events)
    for phase, value in commits.phase_totals.items():
        totals[f"commit.{phase}"] = value
    recovery = decompose_recoveries(events)
    for scope in recovery.scopes:
        for phase, value in scope.phase_totals.items():
            key = f"recovery.{phase}"
            totals[key] = totals.get(key, 0.0) + value
    return totals


def diff_events(
    baseline: Sequence[TraceEvent],
    current: Sequence[TraceEvent],
    max_divergences: int = 20,
) -> TraceDiff:
    """Structurally diff two event lists (canonical id alignment)."""
    a = canonicalize_events(baseline)
    b = canonicalize_events(current)
    diff = TraceDiff(
        kind="trace", baseline_count=len(a), current_count=len(b)
    )
    for index in range(min(len(a), len(b))):
        fields_a = _event_fields(a[index])
        fields_b = _event_fields(b[index])
        if fields_a == fields_b:
            continue
        for name in fields_a:
            if fields_a[name] != fields_b[name]:
                diff.divergences.append(Divergence(
                    index=index, field=name,
                    baseline=fields_a[name], current=fields_b[name],
                ))
        if len(diff.divergences) >= max_divergences:
            diff.truncated = True
            break
    if not diff.truncated and len(a) != len(b):
        longer, label = (a, "baseline") if len(a) > len(b) else (b, "current")
        index = min(len(a), len(b))
        extra = longer[index]
        diff.divergences.append(Divergence(
            index=index, field="presence",
            baseline=(
                f"{extra.component}/{extra.name}" if label == "baseline"
                else "(absent)"
            ),
            current=(
                f"{extra.component}/{extra.name}" if label == "current"
                else "(absent)"
            ),
        ))
    totals_a = _phase_totals(baseline)
    totals_b = _phase_totals(current)
    for phase in sorted(set(totals_a) | set(totals_b)):
        diff.phase_deltas[phase] = (
            totals_a.get(phase, 0.0), totals_b.get(phase, 0.0)
        )
    return diff


def diff_series(
    baseline, current, max_divergences: int = 20
) -> TraceDiff:
    """Diff two :class:`~repro.obs.series.SeriesFrame`s row by row."""
    diff = TraceDiff(
        kind="series", baseline_count=len(baseline),
        current_count=len(current),
    )
    names_a, names_b = sorted(baseline.names), sorted(current.names)
    if names_a != names_b:
        diff.divergences.append(Divergence(
            index=0, field="columns", baseline=names_a, current=names_b,
        ))
        return diff
    times_a, times_b = baseline.times_us, current.times_us
    columns = {name: (baseline.values(name), current.values(name))
               for name in names_a}
    for index in range(min(len(times_a), len(times_b))):
        if times_a[index] != times_b[index]:
            diff.divergences.append(Divergence(
                index=index, field="ts_us",
                baseline=times_a[index], current=times_b[index],
            ))
        for name in names_a:
            col_a, col_b = columns[name]
            if col_a[index] != col_b[index]:
                diff.divergences.append(Divergence(
                    index=index, field=name,
                    baseline=col_a[index], current=col_b[index],
                ))
        if len(diff.divergences) >= max_divergences:
            diff.truncated = True
            break
    if not diff.truncated and len(times_a) != len(times_b):
        diff.divergences.append(Divergence(
            index=min(len(times_a), len(times_b)), field="presence",
            baseline=f"{len(times_a)} samples",
            current=f"{len(times_b)} samples",
        ))
    return diff


def _is_series_file(path: str) -> bool:
    from repro.obs.series import SERIES_FORMAT

    with open(path, "r", encoding="utf-8") as fh:
        return f'"{SERIES_FORMAT}"' in fh.readline()


def diff_files(
    baseline_path: str, current_path: str, max_divergences: int = 20
) -> TraceDiff:
    """Diff two recorded files, sniffing ``repro-trace-v1`` vs
    ``repro-series-v1`` from the meta line (both must agree)."""
    from repro.obs.export import read_jsonl
    from repro.obs.series import SeriesFrame

    series_a = _is_series_file(baseline_path)
    series_b = _is_series_file(current_path)
    if series_a != series_b:
        raise ValueError(
            f"cannot diff a series file against a trace file "
            f"({baseline_path} vs {current_path})"
        )
    if series_a:
        return diff_series(
            SeriesFrame.read_jsonl(baseline_path),
            SeriesFrame.read_jsonl(current_path),
            max_divergences=max_divergences,
        )
    events_a, _ = read_jsonl(baseline_path)
    events_b, _ = read_jsonl(current_path)
    return diff_events(events_a, events_b, max_divergences=max_divergences)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description=(
            "Structurally diff two recorded runs (repro-trace-v1 or "
            "repro-series-v1 JSONL): canonical causal-id alignment, "
            "first-divergence localization, per-phase cost deltas. "
            "Exit status 1 when the runs diverge."
        ),
    )
    parser.add_argument("baseline", help="baseline JSONL file")
    parser.add_argument("current", help="current JSONL file")
    parser.add_argument(
        "--max-divergences", type=int, default=20,
        help="stop after this many localized divergences (default 20)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
    )
    args = parser.parse_args(argv)
    diff = diff_files(
        args.baseline, args.current, max_divergences=args.max_divergences
    )
    if args.format == "json":
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.render())
    return 0 if diff.identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
