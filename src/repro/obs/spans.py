"""Causal per-commit spans and critical-path attribution.

The paper's argument is about *where a commit's time goes*: engine
work on the primary, write doubling onto the SAN, the commit barrier,
redo shipping through the ring, and the backup's apply (Tables 2/5/7).
This module turns those phases into a causal span tree per committed
transaction:

* one parent span named :data:`COMMIT_SPAN` per commit, carrying a
  fresh ``trace_id``, and
* one child span named :data:`COMMIT_PHASE` per non-empty phase,
  linked to the parent via ``parent_id`` and tiled end to end so the
  phase durations sum exactly to the parent's duration (the invariant
  :mod:`repro.obs.audit` machine-checks).

Phase durations are *modeled from measured quantities* of that exact
commit — operation-count deltas folded through the perf calibration
constants for CPU phases, packet-trace link-occupancy deltas for wire
phases — never wall-clock, so the spans are deterministic under a
seed and identical whether or not anything else is observed.

The emitting side is :class:`CommitSpanRecorder` (used by
:mod:`repro.replication.passive`, :mod:`repro.replication.active` and
the workload driver); the consuming side is
:func:`collect_commit_spans` / :func:`attribute_commits`, which
rebuild the trees from any event stream (live recorder or reloaded
JSONL) and summarize them per phase with p50/p95/p99.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hardware.specs import SanSpec

#: Event name of a commit's parent span.
COMMIT_SPAN = "commit.span"
#: Event name of one phase child span.
COMMIT_PHASE = "commit.phase"

#: The commit pipeline's phases, in causal order. Passive replication
#: uses engine -> doubling -> barrier; active uses engine -> ship ->
#: apply (-> barrier only under 2-safe); standalone engines emit just
#: the engine phase; quorum writes emit quorum_wait (time to the W-th
#: acknowledgement) -> transfer (wire occupancy of the replica copies).
PHASE_ENGINE = "engine"
PHASE_DOUBLING = "doubling"
PHASE_BARRIER = "barrier"
PHASE_SHIP = "ship"
PHASE_APPLY = "apply"
PHASE_QUORUM_WAIT = "quorum_wait"
PHASE_TRANSFER = "transfer"
COMMIT_PHASES: Tuple[str, ...] = (
    PHASE_ENGINE, PHASE_DOUBLING, PHASE_BARRIER, PHASE_SHIP, PHASE_APPLY,
    PHASE_QUORUM_WAIT, PHASE_TRANSFER,
)

#: Engine-counter fields whose per-commit deltas the engine-phase cost
#: folds through the calibration (mirrors CostModel.engine_cpu_us).
_ENGINE_DELTA_FIELDS = (
    "set_ranges", "db_writes", "db_bytes_written", "undo_bytes_copied",
    "bytes_compared", "mallocs", "frees", "list_ops", "walk_steps",
    "bump_allocs", "array_pushes",
)


def counters_snapshot(counters) -> Tuple[int, ...]:
    """The engine-counter fields the phase model charges, as a cheap
    immutable snapshot taken at ``begin_transaction``."""
    return tuple(getattr(counters, name) for name in _ENGINE_DELTA_FIELDS)


class PhaseCostModel:
    """Converts one commit's measured deltas into modeled durations.

    Uses the same calibration constants as :class:`~repro.perf.
    costmodel.CostModel`, applied per commit instead of per run, so a
    run's phase attribution and its table-level cost breakdown tell
    one story.
    """

    def __init__(
        self,
        san: SanSpec,
        calibration=None,
        workload: Optional[str] = None,
    ):
        if calibration is None:
            # Imported late: repro.perf pulls in the cost model, which
            # pulls in the workload driver, which imports this module.
            from repro.perf.calibration import DEFAULT_CALIBRATION
            calibration = DEFAULT_CALIBRATION
        self.san = san
        self.calibration = calibration
        self.workload = workload

    def base_us(self) -> float:
        return self.calibration.txn_base_us.get(self.workload, 2.0)

    def engine_us(self, before: Tuple[int, ...], after: Tuple[int, ...]) -> float:
        """Engine CPU time of one commit from its counter deltas."""
        c = self.calibration
        delta = dict(zip(_ENGINE_DELTA_FIELDS,
                         (b - a for b, a in zip(after, before))))
        return (
            self.base_us()
            + delta["set_ranges"] * c.set_range_us
            + delta["db_writes"] * c.db_write_us
            + delta["db_bytes_written"] * c.write_byte_us
            + delta["undo_bytes_copied"] * c.copy_byte_us
            + delta["bytes_compared"] * c.compare_byte_us
            + delta["mallocs"] * c.malloc_us
            + delta["frees"] * c.free_us
            + delta["list_ops"] * c.list_op_us
            + delta["walk_steps"] * c.walk_step_us
            + delta["bump_allocs"] * c.bump_alloc_us
            + delta["array_pushes"] * c.array_push_us
        )

    def apply_us(self, records: int, payload_bytes: int) -> float:
        """Backup CPU to apply one commit's redo records."""
        c = self.calibration
        return records * c.apply_record_us + payload_bytes * c.apply_byte_us


class CommitSpanRecorder:
    """Emits one commit's causal span tree through an observer.

    Usage: accumulate ``(phase, dur_us)`` pairs in pipeline order via
    :meth:`phase`, then :meth:`finish` emits the parent span and the
    tiled children and resets for the next commit. Zero-duration
    phases are skipped (a 1-safe commit has no barrier wait), so every
    emitted child is a real contributor to the critical path.
    """

    def __init__(self, observer, component: str):
        self.observer = observer
        self.component = component
        self._phases: List[Tuple[str, float]] = []

    def phase(self, name: str, dur_us: float) -> None:
        if name not in COMMIT_PHASES:
            raise ValueError(f"unknown commit phase {name!r}")
        if dur_us < 0:
            raise ValueError(f"negative phase duration {dur_us}")
        if dur_us:
            self._phases.append((name, dur_us))

    def finish(self, **attrs: object) -> int:
        """Emit the tree ending at the observer's current time; returns
        the commit's trace id."""
        phases, self._phases = self._phases, []
        total = sum(dur for _, dur in phases)
        end_us = self.observer.now
        start_us = end_us - total
        trace_id = self.observer.new_trace_id()
        parent_id = self.observer.linked_span(
            self.component, COMMIT_SPAN, start_us, end_us, trace_id, **attrs
        )
        cursor = start_us
        for name, dur in phases:
            self.observer.linked_span(
                self.component, COMMIT_PHASE, cursor, cursor + dur,
                trace_id, parent_id=parent_id, phase=name,
            )
            cursor += dur
        return trace_id


# -- analysis ----------------------------------------------------------------


@dataclass(frozen=True)
class CommitSpanTree:
    """One commit's reconstructed span tree."""

    trace_id: int
    component: str
    start_us: float
    dur_us: float
    phases: Dict[str, float]
    attrs: Dict[str, object]

    @property
    def phase_sum_us(self) -> float:
        return sum(self.phases.values())


def collect_commit_spans(events: Iterable) -> List[CommitSpanTree]:
    """Rebuild every commit's span tree from an event stream.

    Joins :data:`COMMIT_SPAN` parents to their :data:`COMMIT_PHASE`
    children through the ``trace_id``/``parent_id`` attrs; works on
    the live recorder's list or on events reloaded from JSONL.
    """
    parents: Dict[int, object] = {}
    phases: Dict[int, Dict[str, float]] = {}
    order: List[int] = []
    for event in events:
        if event.name == COMMIT_SPAN:
            span_id = int(event.attrs["span_id"])
            parents[span_id] = event
            phases.setdefault(span_id, {})
            order.append(span_id)
        elif event.name == COMMIT_PHASE:
            parent_id = int(event.attrs["parent_id"])
            by_phase = phases.setdefault(parent_id, {})
            phase = str(event.attrs["phase"])
            by_phase[phase] = by_phase.get(phase, 0.0) + event.dur_us
    trees = []
    for span_id in order:
        event = parents[span_id]
        attrs = {
            key: value for key, value in event.attrs.items()
            if key not in ("trace_id", "span_id")
        }
        trees.append(
            CommitSpanTree(
                trace_id=int(event.attrs["trace_id"]),
                component=event.component,
                start_us=event.ts_us,
                dur_us=event.dur_us,
                phases=phases[span_id],
                attrs=attrs,
            )
        )
    return trees


@dataclass
class PhaseAttribution:
    """Where the commits' time went, phase by phase.

    ``latency`` maps each phase (plus the ``"commit"`` end-to-end
    total) to a :class:`~repro.obs.report.LatencySummary` with
    p50/p95/p99 over the per-commit durations.
    """

    commits: int
    total_us: float
    phase_totals: Dict[str, float]
    latency: Dict[str, object] = field(default_factory=dict)

    def share(self, phase: str) -> float:
        if not self.total_us:
            return 0.0
        return self.phase_totals.get(phase, 0.0) / self.total_us

    def render(self) -> str:
        lines = []
        title = (
            f"Commit critical path ({self.commits} commits, "
            f"{self.total_us / 1000:.2f} ms total)"
        )
        lines.append(title)
        lines.append("=" * len(title))
        commit = self.latency.get("commit")
        if commit is not None and commit.count:
            lines.append(
                f"  end-to-end: mean {commit.mean_us:.2f} us, "
                f"p50 {commit.p50_us:.2f} us, p95 {commit.p95_us:.2f} us, "
                f"p99 {commit.p99_us:.2f} us"
            )
        for phase in COMMIT_PHASES:
            total = self.phase_totals.get(phase, 0.0)
            if not total:
                continue
            summary = self.latency[phase]
            lines.append(
                f"  {phase:>8}: {self.share(phase) * 100:5.1f}%  "
                f"(mean {summary.mean_us:.2f} us, p50 {summary.p50_us:.2f}, "
                f"p95 {summary.p95_us:.2f}, p99 {summary.p99_us:.2f}, "
                f"{summary.count} commits)"
            )
        if self.commits == 0:
            lines.append("  no commit spans in this trace")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "commits": self.commits,
            "total_us": self.total_us,
            "phase_totals_us": dict(self.phase_totals),
            "phase_shares": {
                phase: self.share(phase) for phase in self.phase_totals
            },
            "latency_us": {
                name: {
                    "count": summary.count,
                    "mean": summary.mean_us,
                    "p50": summary.p50_us,
                    "p95": summary.p95_us,
                    "p99": summary.p99_us,
                    "max": summary.max_us,
                }
                for name, summary in self.latency.items()
            },
        }


def attribute_commits(
    events: Iterable,
    component_prefix: Optional[str] = None,
    scopes: Optional[List[str]] = None,
) -> PhaseAttribution:
    """Summarize the commit span trees in ``events`` per phase.

    ``component_prefix`` restricts the attribution to one scope (e.g.
    ``"shard.2"``) the way :func:`~repro.obs.trace.select_events` does;
    ``scopes`` accepts a list of such selectors and keeps a tree when
    any of them matches.
    """
    from repro.obs.report import LatencySummary

    trees = collect_commit_spans(events)

    def _selected(component: str, prefix: str) -> bool:
        return component == prefix or component.startswith(prefix + ".")

    if component_prefix is not None:
        trees = [
            tree for tree in trees
            if _selected(tree.component, component_prefix)
        ]
    if scopes:
        trees = [
            tree for tree in trees
            if any(_selected(tree.component, scope) for scope in scopes)
        ]
    phase_totals: Dict[str, float] = {}
    per_phase: Dict[str, List[float]] = {}
    totals: List[float] = []
    for tree in trees:
        totals.append(tree.dur_us)
        for phase, dur in tree.phases.items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + dur
            per_phase.setdefault(phase, []).append(dur)
    latency: Dict[str, object] = {"commit": LatencySummary.from_values(totals)}
    for phase, values in per_phase.items():
        latency[phase] = LatencySummary.from_values(values)
    return PhaseAttribution(
        commits=len(trees),
        total_us=sum(totals),
        phase_totals=phase_totals,
        latency=latency,
    )
