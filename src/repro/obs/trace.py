"""Structured event tracing with simulated timestamps.

A :class:`TraceEvent` is a typed record of one thing that happened at
one simulated instant (``kind="instant"``) or over a span of simulated
time (``kind="span"``, with ``dur_us``). Events carry the emitting
*component* (a hierarchical dot name such as ``shard.2.cluster``) and
free-form ``attrs``; the :mod:`repro.obs.report` reconstructions and
the Chrome ``trace_event`` exporter both key off these fields, so the
naming scheme in DESIGN.md is part of the contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

KIND_INSTANT = "instant"
KIND_SPAN = "span"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence, in simulated microseconds."""

    ts_us: float
    component: str
    name: str
    kind: str = KIND_INSTANT
    dur_us: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in (KIND_INSTANT, KIND_SPAN):
            raise ValueError(f"unknown trace event kind {self.kind!r}")
        if self.kind == KIND_INSTANT and self.dur_us:
            raise ValueError("instant events carry no duration")
        if self.dur_us < 0:
            raise ValueError(f"negative span duration {self.dur_us}")

    @property
    def end_us(self) -> float:
        return self.ts_us + self.dur_us

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "ts_us": self.ts_us,
            "component": self.component,
            "name": self.name,
            "kind": self.kind,
        }
        if self.kind == KIND_SPAN:
            record["dur_us"] = self.dur_us
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "TraceEvent":
        return cls(
            ts_us=float(record["ts_us"]),
            component=str(record["component"]),
            name=str(record["name"]),
            kind=str(record.get("kind", KIND_INSTANT)),
            dur_us=float(record.get("dur_us", 0.0)),
            attrs=dict(record.get("attrs", {})),  # type: ignore[arg-type]
        )


class TraceRecorder:
    """Append-only in-memory event log shared by every scoped observer.

    Events are recorded in emission order, which for a discrete-event
    simulation is timestamp order per component and globally
    deterministic under a fixed seed — the exporter round-trip tests
    rely on exactly this.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def instant(
        self, ts_us: float, component: str, name: str, **attrs: object
    ) -> TraceEvent:
        event = TraceEvent(ts_us, component, name, KIND_INSTANT, 0.0, attrs)
        self.events.append(event)
        return event

    def span(
        self,
        ts_us: float,
        dur_us: float,
        component: str,
        name: str,
        **attrs: object,
    ) -> TraceEvent:
        event = TraceEvent(ts_us, component, name, KIND_SPAN, dur_us, attrs)
        self.events.append(event)
        return event

    # -- selection -----------------------------------------------------------

    def select(
        self,
        name: Optional[str] = None,
        component_prefix: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Events matching a name and/or a component prefix (dot-aware)."""
        return select_events(self.events, name, component_prefix)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"TraceRecorder({len(self.events)} events)"


def select_events(
    events: Iterable[TraceEvent],
    name: Optional[str] = None,
    component_prefix: Optional[str] = None,
) -> List[TraceEvent]:
    """Filter ``events`` by exact name and/or component prefix."""
    selected = []
    for event in events:
        if name is not None and event.name != name:
            continue
        if component_prefix is not None and not (
            event.component == component_prefix
            or event.component.startswith(component_prefix + ".")
        ):
            continue
        selected.append(event)
    return selected
