"""Perf-trajectory tracking: one canonical ``BENCH*.json`` format.

Before this module the repo's perf history lived in three
inconsistently-shaped, inconsistently-located JSON files, each with its
own copy of the machine stanza and its own ad-hoc CI ratio check. This
module defines the single ``repro-bench-v1`` trajectory format and the
one regression gate every benchmark goes through::

    {
      "format": "repro-bench-v1",
      "suite": "kernels",
      "machine": {"cpus": 1, "python": "3.12.1", "platform": "..."},
      "metrics": {
        "grid.speedup_vs_pr4": {"value": 1.44, "unit": "x",
                                 "gate": true, "direction": "higher"},
        "grid.kernels_s": {"value": 33.4, "unit": "s"}
      },
      "history": [{"label": "pr5", "metrics": {...}}]
    }

Metrics are a flat dotted-name map. A metric with ``"gate": true``
participates in regression checks; ``direction`` says which way is
better (``higher``, the default, for speedups and rates; ``lower`` for
wall-clocks and latencies). ``history`` is an append-only list of past
``{label, metrics}`` snapshots — the cross-PR trajectory.

CLI::

    python -m repro.obs.bench compare OLD NEW --gate 0.8   # exit 1 on regression
    python -m repro.obs.bench show FILE
    python -m repro.obs.bench append BASELINE MEASURED --label pr7
    python -m repro.obs.bench migrate LEGACY --suite kernels -o NEW.json

``compare`` replaces the three inline CI ratio checks: for every gated
metric in OLD, the measured NEW value must reach ``gate`` (default
0.8) times the baseline — ratio-based, so absolute machine speed
cancels out of speedup-style metrics.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

BENCH_FORMAT = "repro-bench-v1"

HIGHER = "higher"
LOWER = "lower"


def machine_stanza(note: Optional[str] = None) -> Dict[str, Any]:
    """The shared machine fingerprint every suite embeds."""
    stanza: Dict[str, Any] = {
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if note:
        stanza["note"] = note
    return stanza


def metric(
    value: float,
    unit: str = "",
    gate: bool = False,
    direction: str = HIGHER,
) -> Dict[str, Any]:
    """One metric entry; only non-default fields are serialized."""
    if direction not in (HIGHER, LOWER):
        raise ValueError(f"direction must be higher|lower, got {direction!r}")
    entry: Dict[str, Any] = {"value": value}
    if unit:
        entry["unit"] = unit
    if gate:
        entry["gate"] = True
    if direction != HIGHER:
        entry["direction"] = direction
    return entry


def make_report(
    suite: str,
    metrics: Mapping[str, Mapping[str, Any]],
    machine: Optional[Mapping[str, Any]] = None,
    history: Optional[Sequence[Mapping[str, Any]]] = None,
) -> Dict[str, Any]:
    return {
        "format": BENCH_FORMAT,
        "suite": suite,
        "machine": dict(machine) if machine is not None else machine_stanza(),
        "metrics": {name: dict(entry) for name, entry in metrics.items()},
        "history": [dict(h) for h in history] if history else [],
    }


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"{path}: not a {BENCH_FORMAT} file "
            f"(format={payload.get('format')!r}); "
            f"run `python -m repro.obs.bench migrate` on legacy files"
        )
    return payload


#: Package-level alias — ``repro.obs.load_bench_report``.
load_bench_report = load_report


def save_report(report: Mapping[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def append_history(
    baseline: Dict[str, Any], measured: Mapping[str, Any], label: str
) -> Dict[str, Any]:
    """Append MEASURED's metric values to BASELINE's trajectory."""
    baseline.setdefault("history", []).append({
        "label": label,
        "machine": measured.get("machine", {}),
        "metrics": {
            name: entry["value"]
            for name, entry in measured.get("metrics", {}).items()
        },
    })
    return baseline


# -- regression gate ------------------------------------------------


def compare_reports(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    gate: float = 0.8,
    out=None,
) -> List[str]:
    """Gate NEW against OLD; returns the names of regressed metrics.

    Every baseline metric with ``gate: true`` must be present in NEW
    and reach ``gate`` times the baseline value (for ``higher``
    metrics; the reciprocal discipline for ``lower`` ones — NEW may
    grow to at most baseline/gate). Ungated metrics are informational.
    """
    out = out if out is not None else sys.stdout
    old_metrics = old.get("metrics", {})
    new_metrics = new.get("metrics", {})
    failures: List[str] = []
    gated = [name for name, entry in sorted(old_metrics.items())
             if entry.get("gate")]
    if not gated:
        print("[bench] baseline has no gated metrics; nothing to check",
              file=out)
        return []
    for name in gated:
        baseline_entry = old_metrics[name]
        reference = baseline_entry["value"]
        direction = baseline_entry.get("direction", HIGHER)
        measured_entry = new_metrics.get(name)
        if measured_entry is None:
            print(f"[{name}] MISSING from measured report", file=out)
            failures.append(name)
            continue
        measured = measured_entry["value"]
        unit = baseline_entry.get("unit", "")
        if direction == LOWER:
            # Lower is better: regression when measured grows past
            # reference / gate (e.g. gate 0.8 allows +25% wall-clock).
            floor = reference / gate if gate else float("inf")
            ok = measured <= floor
            bound = f"ceiling {floor:.3g}{unit}"
        else:
            floor = reference * gate
            ok = measured >= floor
            bound = f"floor {floor:.3g}{unit}"
        status = "ok" if ok else "REGRESSED"
        print(
            f"[{name}] measured {measured:.4g}{unit} vs baseline "
            f"{reference:.4g}{unit} ({bound}): {status}",
            file=out,
        )
        if not ok:
            failures.append(name)
    if failures:
        print(
            f"FAIL: {len(failures)} gated metric(s) regressed past "
            f"{gate:.0%} of baseline: {', '.join(failures)}",
            file=out,
        )
    else:
        print(f"[bench] all {len(gated)} gated metrics within "
              f"{gate:.0%} of baseline", file=out)
    return failures


# -- legacy migration -----------------------------------------------


def _flatten(node: Any, prefix: str, into: Dict[str, float]) -> None:
    if isinstance(node, dict):
        for key, value in node.items():
            _flatten(value, f"{prefix}.{key}" if prefix else key, into)
    elif isinstance(node, bool):
        into[prefix] = 1.0 if node else 0.0
    elif isinstance(node, (int, float)):
        into[prefix] = node


def migrate_legacy(
    payload: Mapping[str, Any],
    suite: str,
    gates: Mapping[str, str] = (),
    units: Mapping[str, str] = (),
) -> Dict[str, Any]:
    """Flatten a pre-``repro-bench-v1`` nested report.

    Numeric leaves become dotted metric names; the ``machine`` stanza
    is carried over. ``gates`` maps metric name -> direction for the
    metrics that should participate in regression checks; ``units``
    annotates display units.
    """
    if payload.get("format") == BENCH_FORMAT:
        return dict(payload)
    flat: Dict[str, float] = {}
    machine = payload.get("machine", {})
    for key, value in payload.items():
        if key == "machine":
            continue
        _flatten(value, key, flat)
    gates = dict(gates)
    units = dict(units)
    metrics = {
        name: metric(
            value,
            unit=units.get(name, ""),
            gate=name in gates,
            direction=gates.get(name, HIGHER),
        )
        for name, value in flat.items()
    }
    return make_report(suite, metrics, machine=machine)


# -- CLI ------------------------------------------------------------


def _render(report: Mapping[str, Any], out) -> None:
    machine = report.get("machine", {})
    print(
        f"suite {report.get('suite', '?')} on {machine.get('cpus', '?')} "
        f"cpu(s), python {machine.get('python', '?')}",
        file=out,
    )
    metrics = report.get("metrics", {})
    width = max((len(name) for name in metrics), default=0)
    for name, entry in sorted(metrics.items()):
        flags = []
        if entry.get("gate"):
            flags.append("gate")
        if entry.get("direction", HIGHER) != HIGHER:
            flags.append(entry["direction"])
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(
            f"  {name:<{width}}  {entry['value']:>12.4g}"
            f"{entry.get('unit', '')}{suffix}",
            file=out,
        )
    history = report.get("history", [])
    if history:
        labels = ", ".join(str(h.get("label", "?")) for h in history)
        print(f"  history: {len(history)} snapshot(s): {labels}", file=out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="perf-trajectory tracker for repro-bench-v1 files",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare_p = sub.add_parser(
        "compare", help="gate a measured report against a baseline")
    compare_p.add_argument("old", help="committed baseline JSON")
    compare_p.add_argument("new", help="freshly measured JSON")
    compare_p.add_argument("--gate", type=float, default=0.8,
                           help="fraction of baseline a gated metric "
                           "must reach (default 0.8)")

    show_p = sub.add_parser("show", help="render a report")
    show_p.add_argument("file")

    append_p = sub.add_parser(
        "append", help="append a measured run to a baseline's history")
    append_p.add_argument("baseline")
    append_p.add_argument("measured")
    append_p.add_argument("--label", required=True)

    migrate_p = sub.add_parser(
        "migrate", help="convert a legacy nested report to repro-bench-v1")
    migrate_p.add_argument("legacy")
    migrate_p.add_argument("--suite", required=True)
    migrate_p.add_argument("-o", "--output", required=True)
    migrate_p.add_argument(
        "--gate-metric", action="append", default=[],
        metavar="NAME[:DIRECTION]",
        help="mark a migrated metric as gated (repeatable)")

    args = parser.parse_args(argv)

    if args.command == "compare":
        failures = compare_reports(
            load_report(args.old), load_report(args.new), gate=args.gate)
        return 1 if failures else 0
    if args.command == "show":
        _render(load_report(args.file), sys.stdout)
        return 0
    if args.command == "append":
        baseline = load_report(args.baseline)
        measured = load_report(args.measured)
        append_history(baseline, measured, args.label)
        save_report(baseline, args.baseline)
        print(f"[bench] appended {args.label!r} to {args.baseline} "
              f"({len(baseline['history'])} snapshot(s))")
        return 0
    if args.command == "migrate":
        with open(args.legacy, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        gates = {}
        for spec in args.gate_metric:
            name, _, direction = spec.partition(":")
            gates[name] = direction or HIGHER
        report = migrate_legacy(payload, args.suite, gates=gates)
        save_report(report, args.output)
        print(f"[bench] migrated {args.legacy} -> {args.output} "
              f"({len(report['metrics'])} metrics, {len(gates)} gated)")
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
