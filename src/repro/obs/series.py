"""Sim-time time-series sampling.

The paper's headline claims are curves over time — the availability dip
during failover, traffic under degraded modes — but counters and
histogram summaries only show end-of-run totals. This module adds the
instrument that draws the curves:

* :class:`TimeSeriesSampler` registers named probe callbacks (event
  queue depth, redo-ring lag, per-shard in-flight, link busy time, ...)
  and samples them on a fixed sim-time tick. Ticks are **pre-scheduled
  at attach time**, before the model schedules any work, so at any
  shared timestamp the sampler's events carry the smallest sequence
  numbers and fire *first*. A sample at tick ``t`` therefore observes
  exactly the state produced by events strictly before ``t`` — the
  half-open ``[0, t)`` prefix — which is what makes the windowed
  derivations below agree *exactly* with trace-derived window counts.
* :class:`SeriesFrame` holds the columnar result (one time axis, one
  float column per probe) with JSONL/CSV export, reconstruction from
  ``series.sample`` trace events, and an ASCII sparkline renderer.
* :func:`windowed_goodput` / :func:`derive_dip` turn a cumulative
  counter column into per-window rates and a dip-and-recovery summary
  (depth, duration, time to recover).

The zero-cost discipline holds: the sampler only *reads* model state,
never mutates it, and its tick events advance the clock to instants the
run would reach anyway (multiples of the tick inside the horizon), so
measured outputs are byte-identical with the sampler attached at any
tick — a property CI checks by re-running tier 1 under
``REPRO_SERIES``.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.observer import resolve_observer
from repro.obs.trace import TraceEvent

SERIES_FORMAT = "repro-series-v1"

#: Environment override for the experiment sampling tick (microseconds).
#: Setting it proves sampling-frequency invariance: measured outputs
#: must stay byte-identical at any tick that divides the slot width.
SERIES_ENV_VAR = "REPRO_SERIES"

#: Trace vocabulary: one instant event per tick, all probe values in attrs.
SAMPLE_EVENT = "series.sample"

_SPARK_RAMP = " .:-=+*#%@"


def _stable_json(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class SeriesFrame:
    """Columnar time series: one shared time axis, one column per probe.

    Append-only and column-stable: the first :meth:`append` fixes the
    column set, later appends must supply exactly the same names.
    """

    def __init__(self, columns: Optional[Sequence[str]] = None) -> None:
        self._times: List[float] = []
        self._columns: Dict[str, List[float]] = (
            {name: [] for name in columns} if columns else {}
        )

    def __len__(self) -> int:
        return len(self._times)

    def __bool__(self) -> bool:
        return bool(self._times)

    @property
    def names(self) -> List[str]:
        """Column names in registration order."""
        return list(self._columns)

    @property
    def times_us(self) -> List[float]:
        return list(self._times)

    def values(self, name: str) -> List[float]:
        """The value column for ``name``."""
        return list(self._columns[name])

    def series(self, name: str) -> Tuple[List[float], List[float]]:
        """``(times_us, values)`` arrays for one probe."""
        return self.times_us, self.values(name)

    def last(self, name: str) -> float:
        return self._columns[name][-1]

    def append(self, ts_us: float, sample: Mapping[str, float]) -> None:
        """Add one sample row; the column set must match prior rows."""
        if not self._columns:
            self._columns = {name: [] for name in sample}
        elif set(sample) != set(self._columns):
            raise ValueError(
                f"sample columns {sorted(sample)} != frame columns "
                f"{sorted(self._columns)}"
            )
        self._times.append(float(ts_us))
        for name, column in self._columns.items():
            column.append(float(sample[name]))

    # -- export ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        # Columns are serialized in sorted order so the encoding is
        # canonical: a frame rebuilt from trace events (whose attrs are
        # sort_keys-serialized) produces the same bytes as the sampler's
        # own frame.
        return {
            "format": SERIES_FORMAT,
            "columns": sorted(self._columns),
            "times_us": self.times_us,
            "values": {name: list(self._columns[name])
                       for name in sorted(self._columns)},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SeriesFrame":
        if payload.get("format") != SERIES_FORMAT:
            raise ValueError(f"not a {SERIES_FORMAT} payload")
        columns = list(payload["columns"])  # type: ignore[arg-type]
        frame = cls(columns)
        times = payload["times_us"]
        values = payload["values"]
        for i, ts in enumerate(times):  # type: ignore[arg-type]
            frame.append(ts, {name: values[name][i] for name in columns})  # type: ignore[index]
        return frame

    def to_jsonl(self) -> str:
        """Serialize as ``repro-series-v1`` JSONL (meta line + one line
        per sample, values in column order)."""
        out = io.StringIO()
        names = sorted(self._columns)
        out.write(_stable_json({
            "type": "meta",
            "format": SERIES_FORMAT,
            "columns": names,
            "samples": len(self),
        }) + "\n")
        columns = [self._columns[name] for name in names]
        for i, ts in enumerate(self._times):
            out.write(_stable_json({
                "type": "sample",
                "ts_us": ts,
                "values": [col[i] for col in columns],
            }) + "\n")
        return out.getvalue()

    def to_bytes(self) -> bytes:
        """Canonical byte encoding — the byte-identity test currency."""
        return self.to_jsonl().encode("utf-8")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    @classmethod
    def read_jsonl(cls, path: str) -> "SeriesFrame":
        with open(path, "r", encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        if not lines or lines[0].get("type") != "meta":
            raise ValueError(f"{path}: missing {SERIES_FORMAT} meta line")
        meta = lines[0]
        if meta.get("format") != SERIES_FORMAT:
            raise ValueError(f"{path}: not a {SERIES_FORMAT} file")
        columns = list(meta["columns"])
        frame = cls(columns)
        for line in lines[1:]:
            if line.get("type") != "sample":
                continue
            frame.append(line["ts_us"],
                         dict(zip(columns, line["values"])))
        return frame

    def write_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            names = sorted(self._columns)
            fh.write(",".join(["time_us"] + names) + "\n")
            columns = [self._columns[name] for name in names]
            for i, ts in enumerate(self._times):
                row = [repr(ts)] + [repr(col[i]) for col in columns]
                fh.write(",".join(row) + "\n")

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "SeriesFrame":
        """Rebuild a frame from ``series.sample`` trace events, e.g.
        after a JSONL round trip. Column order follows the first
        event's attribute order (insertion-ordered dicts survive JSON)."""
        frame = cls()
        for event in events:
            if event.name != SAMPLE_EVENT:
                continue
            frame.append(event.ts_us,
                         {k: float(v) for k, v in event.attrs.items()})
        return frame

    # -- rendering ---------------------------------------------------

    def render(self, width: int = 64) -> str:
        """ASCII sparkline table: one row per column, bucketed to at
        most ``width`` characters, with min/max/last annotations."""
        if not self._times:
            return "(empty series)\n"
        lines = [
            f"series: {len(self)} samples, "
            f"{self._times[0]:.0f}..{self._times[-1]:.0f} us"
        ]
        label_width = max(len(name) for name in self._columns)
        for name in sorted(self._columns):
            column = self._columns[name]
            lo, hi = min(column), max(column)
            spark = _sparkline(column, width, lo, hi)
            lines.append(
                f"  {name:<{label_width}} |{spark}| "
                f"min {_fmt(lo)}  max {_fmt(hi)}  last {_fmt(column[-1])}"
            )
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def _sparkline(column: Sequence[float], width: int, lo: float, hi: float) -> str:
    # Bucket by mean so short frames render one char per sample and
    # long frames compress; the ramp is pure ASCII for CI logs.
    buckets: List[float] = []
    n = len(column)
    if n <= width:
        buckets = list(column)
    else:
        for b in range(width):
            start = b * n // width
            stop = max(start + 1, (b + 1) * n // width)
            chunk = column[start:stop]
            buckets.append(sum(chunk) / len(chunk))
    span = hi - lo
    top = len(_SPARK_RAMP) - 1
    chars = []
    for value in buckets:
        frac = 0.0 if span == 0 else (value - lo) / span
        chars.append(_SPARK_RAMP[int(round(frac * top))])
    return "".join(chars)


# -- windowed derivations -------------------------------------------


def windowed_goodput(
    frame: SeriesFrame, name: str, window_us: float
) -> List[float]:
    """Per-window increments of a cumulative counter column.

    The delta observed between consecutive ticks ``t[i-1] -> t[i]``
    counts occurrences in ``[t[i-1], t[i])`` (samples fire before model
    events at the same instant), so when the tick divides ``window_us``
    every delta lands entirely inside window ``floor(t[i-1] /
    window_us)`` — the attribution is exact, not approximate, and the
    result matches a trace's half-open ``[m*w, (m+1)*w)`` counts
    window for window.
    """
    times = frame._times
    values = frame._columns[name]
    if len(times) < 2:
        return []
    horizon = times[-1]
    windows = [0.0] * max(1, int(-(-horizon // window_us)))
    for i in range(1, len(times)):
        delta = values[i] - values[i - 1]
        if delta == 0:
            continue
        index = int(times[i - 1] // window_us)
        if index >= len(windows):  # a trailing partial tick
            windows.extend([0.0] * (index + 1 - len(windows)))
        windows[index] += delta
    return windows


@dataclass(frozen=True)
class DipSummary:
    """Dip-and-recovery shape of a per-window goodput curve."""

    normal: float            # steady-state per-window rate
    dip_start_window: int    # first window strictly below normal
    dip_depth: float         # normal minus the worst window
    dip_floor: float         # the worst window's rate
    recover_window: int      # first window at/after the dip back at normal
    time_to_recover_us: float  # (recover - dip_start) * window width

    @property
    def outage_windows(self) -> int:
        return self.recover_window - self.dip_start_window


def derive_dip(
    windows: Sequence[float], window_us: float, normal: float
) -> Optional[DipSummary]:
    """Locate the first dip below ``normal`` and its recovery.

    Returns None when no window drops below ``normal``. Trailing
    ramp-down windows (an experiment horizon cutting the last window
    short) do not count as a dip unless a recovery follows them.
    """
    dip_start = None
    for i, rate in enumerate(windows):
        if dip_start is None:
            if rate < normal:
                dip_start = i
        elif rate >= normal:
            floor = min(windows[dip_start:i])
            return DipSummary(
                normal=normal,
                dip_start_window=dip_start,
                dip_depth=normal - floor,
                dip_floor=floor,
                recover_window=i,
                time_to_recover_us=(i - dip_start) * window_us,
            )
    return None


# -- tick selection -------------------------------------------------


def snap_tick(requested_us: float, window_us: float) -> float:
    """Largest tick <= ``requested_us`` that divides ``window_us`` into
    an integer number of *exactly representable* steps.

    Exactness matters: tick multiples must land on window boundaries in
    float arithmetic or the half-open attribution in
    :func:`windowed_goodput` stops matching the trace. A step is
    accepted when ``step * 8`` is an integer (multiples of 1/8 are
    exact binary floats, and so are all their small-integer multiples).
    """
    if requested_us <= 0:
        raise ValueError(f"tick must be positive, got {requested_us}")
    if requested_us >= window_us:
        return window_us
    parts = int(window_us // requested_us)
    limit = max(int(window_us * 8), parts + 1)
    while parts <= limit:
        step = window_us / parts
        if step <= requested_us and step * parts == window_us \
                and float(step * 8).is_integer():
            return step
        parts += 1
    raise ValueError(
        f"no exact tick <= {requested_us} dividing window {window_us}"
    )


def series_interval_us(default_us: float, window_us: float) -> float:
    """The sampling tick an experiment should use.

    ``REPRO_SERIES=<microseconds>`` overrides the default (snapped to
    an exact divisor of the window); measured outputs must not change
    — that invariance is what the CI leg running tier 1 under
    ``REPRO_SERIES`` proves. ``REPRO_SERIES=1`` (or any value that is
    not a number) selects a 5x finer tick than the default.
    """
    raw = os.environ.get(SERIES_ENV_VAR)
    if raw is None or raw == "" or raw == "0":
        return snap_tick(default_us, window_us)
    try:
        requested = float(raw)
    except ValueError:
        requested = default_us / 5.0
    if requested <= 1.0:  # "1" is the boolean spelling of "on, finer"
        requested = default_us / 5.0
    return snap_tick(requested, window_us)


# -- the sampler ----------------------------------------------------


class TimeSeriesSampler:
    """Samples registered probes on a fixed sim-time tick.

    Probes are zero-argument callables returning a number; they must
    only *read* model state. :meth:`attach` pre-schedules every tick up
    front — ``0, tick, 2*tick, ... <= until_us`` — which both keeps
    ``sim.run()`` convergent (no self-rescheduling tail) and guarantees
    the sampler's events out-rank any same-timestamp model event
    scheduled afterwards, i.e. samples see the strict ``[0, t)``
    prefix.
    """

    def __init__(self, observer=None, component: str = "series") -> None:
        self.observer = resolve_observer(observer)
        self.component = component
        self.frame = SeriesFrame()
        self._probes: Dict[str, Callable[[], float]] = {}
        self._attached = False

    def add_probe(self, name: str, probe: Callable[[], float]) -> None:
        if self._attached:
            raise ValueError("cannot add probes after attach()")
        if name in self._probes:
            raise ValueError(f"duplicate probe {name!r}")
        self._probes[name] = probe

    def add_probes(self, probes: Mapping[str, Callable[[], float]]) -> None:
        for name, probe in probes.items():
            self.add_probe(name, probe)

    def attach(self, sim, interval_us: float, until_us: float) -> "TimeSeriesSampler":
        """Schedule every tick in ``[sim.now, until_us]`` on ``sim``."""
        if self._attached:
            raise ValueError("sampler is already attached")
        if interval_us <= 0:
            raise ValueError(f"tick must be positive, got {interval_us}")
        self._attached = True
        self.interval_us = interval_us
        k = 0
        start = sim.now
        while True:
            when = start + k * interval_us
            if when > until_us:
                break
            sim.schedule_at(when, self._tick, name="series-tick")
            k += 1
        self._sim = sim
        return self

    def _tick(self) -> None:
        now = self._sim.now
        sample = {name: float(probe()) for name, probe in self._probes.items()}
        self.frame.append(now, sample)
        observer = self.observer
        if observer.enabled:
            observer.event_at(now, self.component, SAMPLE_EVENT, **sample)


# -- probe catalogs -------------------------------------------------
#
# Helpers binding the standard probes onto live components. Each
# returns an insertion-ordered mapping suitable for ``add_probes``.


def sim_probes(sim, prefix: str = "sim") -> Dict[str, Callable[[], float]]:
    """Event-queue depth and timer-wheel occupancy (distinct pending
    firing times — identical across heap and wheel implementations)."""
    queue = sim.queue
    return {
        f"{prefix}.queue_depth": lambda: float(len(queue)),
        f"{prefix}.wheel_occupancy": lambda: float(queue.distinct_times()),
    }


def router_probes(
    router, scopes: Optional[Mapping[str, int]] = None
) -> Dict[str, Callable[[], float]]:
    """In-flight gauge plus cumulative completions, total and (when
    ``scopes`` maps ``scope name -> shard id``) per scope."""
    probes: Dict[str, Callable[[], float]] = {
        "router.in_flight": lambda: float(router.in_flight),
        "router.completed": lambda: float(router.completed),
    }
    if scopes:
        for scope, shard_id in scopes.items():
            probes[f"{scope}.completed"] = _scope_completed(router, shard_id)
    return probes


def _scope_completed(router, shard_id: int) -> Callable[[], float]:
    def probe() -> float:
        return float(sum(
            1 for t in router.transactions
            if t.shard_id == shard_id and t.completed_at_us is not None
        ))
    return probe


def redo_ring_probes(applier, prefix: str = "ring") -> Dict[str, Callable[[], float]]:
    """Redo-ring lag: bytes published but not yet applied."""
    return {
        f"{prefix}.lag_bytes": lambda: float(applier.produced - applier.consumed),
    }


def link_probes(link, prefix: str = "link") -> Dict[str, Callable[[], float]]:
    """Cumulative busy time on a shared link; per-window utilization is
    the windowed delta divided by the window width."""
    return {
        f"{prefix}.busy_us": lambda: float(link.total_link_time_us()),
    }


def quorum_probes(groups) -> Dict[str, Callable[[], float]]:
    """Sloppy-hint backlog and cumulative anti-entropy repair keys,
    summed across ``groups``."""
    groups = list(groups)
    return {
        "quorum.hints_pending": lambda: float(
            sum(g.hints_pending for g in groups)),
        "quorum.repair_keys": lambda: float(
            sum(g.stats.repair_keys for g in groups)),
    }
