"""Failover-timeline and latency reporting from a recorded trace.

Everything here is computed from :class:`~repro.obs.trace.TraceEvent`
lists alone — never from live experiment objects — so the same numbers
come out whether the events arrive in memory (the experiments call
:func:`analyze_timeline` directly) or from a JSONL file on disk (the
``python -m repro.obs.report`` CLI). That equivalence is what lets the
sharding experiment's hard checks (downtime bound, (N-1)/N floor) run
against trace-derived numbers and what the round-trip tests assert.

Event vocabulary consumed (see DESIGN.md "Observability"):

* ``fault.crash`` instants from ``<scope>.cluster`` — a primary died.
* ``takeover`` spans from ``<scope>.cluster`` — detection to service
  restoration, with ``bytes_restored`` in the attrs.
* ``txn.complete`` instants from the router — one served transaction,
  with ``shard`` and ``latency_us`` attrs.
* ``txn.submit`` / ``txn.retry`` / ``txn.redirect`` / ``txn.drop``
  instants — the router's routing lifecycle totals.

Usage::

    python -m repro.obs.report trace.jsonl --window-us 1000
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.export import read_jsonl, write_chrome_trace
from repro.obs.trace import TraceEvent, select_events


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of an already-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(1, int(q * len(ordered) + 0.5))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class FailoverSpan:
    """One shard's measured crash-to-recovery arc."""

    scope: str  # component prefix, e.g. "shard.2" ("" for an unsharded pair)
    crashed_node: str
    crash_at_us: float
    detected_at_us: float
    restored_at_us: float
    bytes_restored: int

    @property
    def shard_id(self) -> Optional[int]:
        if self.scope.startswith("shard."):
            tail = self.scope.split(".", 2)[1]
            if tail.isdigit():
                return int(tail)
        return None

    @property
    def detection_us(self) -> float:
        return self.detected_at_us - self.crash_at_us

    @property
    def takeover_us(self) -> float:
        return self.restored_at_us - self.detected_at_us

    @property
    def downtime_us(self) -> float:
        return self.restored_at_us - self.crash_at_us


@dataclass
class LatencySummary:
    """Exact distribution summary of the router's transaction latencies."""

    count: int = 0
    mean_us: float = 0.0
    p50_us: float = 0.0
    p95_us: float = 0.0
    p99_us: float = 0.0
    max_us: float = 0.0

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencySummary":
        if not values:
            return cls()
        ordered = sorted(values)
        return cls(
            count=len(ordered),
            mean_us=sum(ordered) / len(ordered),
            p50_us=_percentile(ordered, 0.50),
            p95_us=_percentile(ordered, 0.95),
            p99_us=_percentile(ordered, 0.99),
            max_us=ordered[-1],
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "max_us": self.max_us,
        }


@dataclass
class TimelineReport:
    """A per-window failover timeline reconstructed from a trace."""

    window_us: float
    completions: List[float]  # completion timestamps, trace order
    failovers: List[FailoverSpan]
    routing: Dict[str, int]
    latency: LatencySummary
    per_shard_completions: Dict[int, int] = field(default_factory=dict)
    #: Completions keyed by serving scope ("shard.N", or the explicit
    #: scope a completion carries — "group.N" for quorum clusters).
    per_scope_completions: Dict[str, int] = field(default_factory=dict)

    # -- throughput ----------------------------------------------------------

    def completions_between(self, start_us: float, stop_us: float) -> int:
        return sum(1 for ts in self.completions if start_us <= ts < stop_us)

    def window_counts(self, windows: int) -> List[int]:
        return [
            self.completions_between(i * self.window_us, (i + 1) * self.window_us)
            for i in range(windows)
        ]

    def horizon_windows(self) -> int:
        """Windows needed to cover the last completion."""
        if not self.completions:
            return 0
        return int(max(self.completions) // self.window_us) + 1

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        lines: List[str] = []
        title = (
            f"Failover timeline ({len(self.completions)} completions, "
            f"{self.window_us:.0f} us windows)"
        )
        lines.append(title)
        lines.append("=" * len(title))
        for span in self.failovers:
            label = (
                f"shard {span.shard_id}" if span.shard_id is not None
                else (span.scope or "pair")
            )
            lines.append(
                f"  {label}: crash of {span.crashed_node!r} at "
                f"{span.crash_at_us / 1000:.2f} ms, detected "
                f"+{span.detection_us:.0f} us, takeover "
                f"{span.takeover_us / 1000:.2f} ms "
                f"({span.bytes_restored:,} bytes restored), downtime "
                f"{span.downtime_us / 1000:.2f} ms"
            )
        if not self.failovers:
            lines.append("  no failover events in this trace")
        lines.append("")
        windows = self.horizon_windows()
        marks: Dict[int, List[str]] = {}
        for span in self.failovers:
            marks.setdefault(int(span.crash_at_us // self.window_us), []).append(
                "<- crash"
            )
            marks.setdefault(int(span.restored_at_us // self.window_us), []).append(
                "<- restored"
            )
        for index, completed in enumerate(self.window_counts(windows)):
            suffix = " ".join(marks.get(index, []))
            lines.append(
                f"  {index * self.window_us / 1000:>6.1f} ms  "
                f"{completed:>4}  {'#' * completed} {suffix}".rstrip()
            )
        lines.append("")
        lines.append(
            f"  routing: {self.routing.get('routed', 0)} routed, "
            f"{self.routing.get('completed', 0)} completed, "
            f"{self.routing.get('retries', 0)} retries, "
            f"{self.routing.get('redirects', 0)} redirects, "
            f"{self.routing.get('dropped', 0)} dropped"
        )
        if self.latency.count:
            lines.append(
                f"  latency: mean {self.latency.mean_us:.0f} us, "
                f"p50 {self.latency.p50_us:.0f} us, "
                f"p95 {self.latency.p95_us:.0f} us, "
                f"max {self.latency.max_us:.0f} us "
                f"({self.latency.count} samples)"
            )
        if self.per_shard_completions:
            shares = ", ".join(
                f"shard {shard}: {count}"
                for shard, count in sorted(self.per_shard_completions.items())
            )
            lines.append(f"  completions by shard: {shares}")
        explicit_scopes = {
            scope: count
            for scope, count in self.per_scope_completions.items()
            if not scope.startswith("shard.")
        }
        if explicit_scopes:
            shares = ", ".join(
                f"{scope}: {count}"
                for scope, count in sorted(explicit_scopes.items())
            )
            lines.append(f"  completions by scope: {shares}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "window_us": self.window_us,
            "completions": len(self.completions),
            "window_counts": self.window_counts(self.horizon_windows()),
            "failovers": [
                {
                    "scope": span.scope or "cluster",
                    "shard": span.shard_id,
                    "crashed_node": span.crashed_node,
                    "crash_at_us": span.crash_at_us,
                    "detected_at_us": span.detected_at_us,
                    "restored_at_us": span.restored_at_us,
                    "detection_us": span.detection_us,
                    "takeover_us": span.takeover_us,
                    "downtime_us": span.downtime_us,
                    "bytes_restored": span.bytes_restored,
                }
                for span in self.failovers
            ],
            "routing": dict(self.routing),
            "latency_us": self.latency.to_dict(),
            "per_shard_completions": {
                str(shard): count
                for shard, count in sorted(self.per_shard_completions.items())
            },
            "per_scope_completions": {
                scope: count
                for scope, count in sorted(self.per_scope_completions.items())
            },
        }


def analyze_timeline(
    events: Sequence[TraceEvent], window_us: float = 1_000.0
) -> TimelineReport:
    """Reconstruct the timeline report from raw trace events."""
    crashes = select_events(events, name="fault.crash")
    takeovers = select_events(events, name="takeover")
    failovers: List[FailoverSpan] = []
    for takeover in takeovers:
        scope = takeover.component.rsplit(".cluster", 1)[0]
        if scope == takeover.component:  # component was plain "cluster"
            scope = ""
        crash = next(
            (c for c in crashes if c.component == takeover.component), None
        )
        crash_at = crash.ts_us if crash is not None else takeover.ts_us
        node = str(crash.attrs.get("node", "?")) if crash is not None else "?"
        failovers.append(
            FailoverSpan(
                scope=scope,
                crashed_node=node,
                crash_at_us=crash_at,
                detected_at_us=takeover.ts_us,
                restored_at_us=takeover.end_us,
                bytes_restored=int(takeover.attrs.get("bytes_restored", 0)),
            )
        )
    failovers.sort(key=lambda span: span.crash_at_us)

    completes = select_events(events, name="txn.complete")
    latencies = [
        float(event.attrs["latency_us"])
        for event in completes
        if "latency_us" in event.attrs
    ]
    per_shard: Dict[int, int] = {}
    per_scope: Dict[str, int] = {}
    for event in completes:
        if "shard" in event.attrs:
            shard = int(event.attrs["shard"])
            per_shard[shard] = per_shard.get(shard, 0) + 1
        if "scope" in event.attrs:
            scope = str(event.attrs["scope"])
        elif "shard" in event.attrs:
            scope = f"shard.{int(event.attrs['shard'])}"
        else:
            continue
        per_scope[scope] = per_scope.get(scope, 0) + 1
    routing = {
        "routed": len(select_events(events, name="txn.submit")),
        "completed": len(completes),
        "retries": len(select_events(events, name="txn.retry")),
        "redirects": len(select_events(events, name="txn.redirect")),
        "dropped": len(select_events(events, name="txn.drop")),
    }
    return TimelineReport(
        window_us=window_us,
        completions=[event.ts_us for event in completes],
        failovers=failovers,
        routing=routing,
        latency=LatencySummary.from_values(latencies),
        per_shard_completions=per_shard,
        per_scope_completions=per_scope,
    )


def analyze_trace_file(
    path: str, window_us: float = 1_000.0
) -> TimelineReport:
    """Load a JSONL trace and reconstruct its timeline report."""
    events, _metrics = read_jsonl(path)
    return analyze_timeline(events, window_us=window_us)


def main(argv: Optional[List[str]] = None) -> int:
    # Imported here: slo imports this module for analyze_timeline.
    import json as _json

    from repro.obs.audit import audit_events
    from repro.obs.slo import compute_slo
    from repro.obs.spans import attribute_commits

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description=(
            "Render a failover timeline (throughput per window, "
            "detection/takeover/downtime spans) and latency summary "
            "from a recorded JSONL trace; optionally audit the trace "
            "against the replication invariants, fold its downtime "
            "into SLO availability nines, and attribute commit time "
            "to pipeline phases."
        ),
    )
    parser.add_argument(
        "trace",
        help="path to a JSONL trace file (or, with --series, a "
             "repro-series-v1 series file)",
    )
    parser.add_argument(
        "--window-us", type=float, default=1_000.0,
        help="throughput window width in simulated us (default 1000)",
    )
    parser.add_argument(
        "--chrome-trace", metavar="PATH", default=None,
        help="additionally convert the trace to Chrome trace_event "
             "JSON at PATH (open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--audit", action="store_true",
        help="run the online trace auditor; a non-empty violation list "
             "makes the exit status 1",
    )
    parser.add_argument(
        "--max-lag-bytes", type=int, default=None,
        help="with --audit, also bound the redo ring's apply lag",
    )
    parser.add_argument(
        "--slo", action="store_true",
        help="fold failover downtime into per-shard and cluster-wide "
             "availability (audit-confirmed when --audit is also given)",
    )
    parser.add_argument(
        "--scope", action="append", metavar="SCOPE", default=None,
        help="with --slo, --spans or --recovery, restrict the report to "
             "matching scopes (exact label or prefix, e.g. 'shard.2', "
             "'group'); repeatable — shard and quorum-group scopes from "
             "one trace can be reported separately without "
             "post-processing",
    )
    parser.add_argument(
        "--spans", action="store_true",
        help="summarize commit.span trees into per-phase critical-path "
             "attribution",
    )
    parser.add_argument(
        "--recovery", action="store_true",
        help="decompose each failover's recovery.span tree into its "
             "critical-path phases (where did the downtime go?)",
    )
    parser.add_argument(
        "--alerts", action="store_true",
        help="cross-check the trace's alert.fire/alert.resolve events "
             "against a burn-rate replay; an unjustified or missing "
             "alert makes the exit status 1",
    )
    parser.add_argument(
        "--diff", metavar="BASELINE", default=None,
        help="structurally diff the trace (or series) against BASELINE "
             "after canonical id renumbering; any divergence makes the "
             "exit status 1",
    )
    parser.add_argument(
        "--series", action="store_true",
        help="render the sampled time series (sparkline per probe): "
             "rebuilt from the trace's series.sample events, or read "
             "directly when the input file is itself repro-series-v1 "
             "JSONL",
    )
    parser.add_argument(
        "--series-out", metavar="PATH", default=None,
        help="with --series, additionally write the series as "
             "canonical repro-series-v1 JSONL to PATH",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json emits one object with a section per "
             "requested report)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report to FILE instead of stdout (parent "
             "directories are created; exit status is unchanged)",
    )
    args = parser.parse_args(argv)
    if args.series_out and not args.series:
        parser.error("--series-out requires --series")

    emitted: List[str] = []

    def _emit(text: str) -> None:
        emitted.append(text)

    frame = None
    series_only = False
    if args.series:
        from repro.obs.series import SERIES_FORMAT, SeriesFrame

        try:
            head = open(args.trace, "r", encoding="utf-8").readline()
        except OSError as error:
            parser.error(f"cannot read trace file: {error}")
        if f'"{SERIES_FORMAT}"' in head:
            frame = SeriesFrame.read_jsonl(args.trace)
            series_only = True

    if series_only:
        events: List[TraceEvent] = []
        report = analyze_timeline(events, window_us=args.window_us)
    else:
        try:
            events, _metrics = read_jsonl(args.trace)
        except OSError as error:
            parser.error(f"cannot read trace file: {error}")
        report = analyze_timeline(events, window_us=args.window_us)
        if args.series:
            from repro.obs.series import SeriesFrame

            frame = SeriesFrame.from_events(events)

    audit_report = None
    if args.audit:
        audit_report = audit_events(events, max_lag_bytes=args.max_lag_bytes)
    slo_report = None
    if args.slo:
        audit_ok = audit_report.ok if audit_report is not None else None
        slo_report = compute_slo(
            events, audit_ok=audit_ok, failovers=report.failovers,
            scopes=args.scope,
        )
    elif args.scope and not (args.spans or args.recovery):
        parser.error("--scope requires --slo, --spans or --recovery")
    attribution = (
        attribute_commits(events, scopes=args.scope) if args.spans else None
    )
    recovery = None
    if args.recovery:
        from repro.obs.critpath import decompose_recoveries

        recovery = decompose_recoveries(events, scopes=args.scope)
    alert_verification = None
    if args.alerts:
        from repro.obs.alerts import verify_alerts

        alert_verification = verify_alerts(events)
    trace_diff = None
    if args.diff:
        from repro.obs.diff import diff_files

        try:
            trace_diff = diff_files(args.diff, args.trace)
        except OSError as error:
            parser.error(f"cannot read baseline file: {error}")

    if args.format == "json":
        payload: Dict[str, object] = {}
        if not series_only:
            payload["timeline"] = report.to_dict()
        if frame is not None:
            payload["series"] = frame.to_dict()
        if audit_report is not None:
            payload["audit"] = audit_report.to_dict()
        if slo_report is not None:
            payload["slo"] = slo_report.to_dict()
        if attribution is not None:
            payload["attribution"] = attribution.to_dict()
        if recovery is not None:
            payload["recovery"] = recovery.to_dict()
        if alert_verification is not None:
            payload["alerts"] = alert_verification.to_dict()
        if trace_diff is not None:
            payload["diff"] = trace_diff.to_dict()
        _emit(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        sections = [] if series_only else [report.render()]
        if frame is not None:
            sections.append(frame.render())
        if audit_report is not None:
            sections.append(audit_report.render())
        if slo_report is not None:
            sections.append(slo_report.render())
        if attribution is not None:
            sections.append(attribution.render())
        if recovery is not None:
            sections.append(recovery.render())
        if alert_verification is not None:
            sections.append(alert_verification.render())
        if trace_diff is not None:
            sections.append(trace_diff.render())
        _emit("\n\n".join(sections))
    if args.chrome_trace:
        write_chrome_trace(args.chrome_trace, events)
        if args.format != "json":
            _emit(f"\n  chrome trace written to {args.chrome_trace}")
    if frame is not None and args.series_out:
        frame.write_jsonl(args.series_out)
        if args.format != "json":
            _emit(f"\n  series written to {args.series_out}")

    text = "\n".join(emitted)
    if args.output:
        from pathlib import Path as _Path

        target = _Path(args.output)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    if audit_report is not None and not audit_report.ok:
        return 1
    if alert_verification is not None and not alert_verification.ok:
        return 1
    if trace_diff is not None and not trace_diff.identical:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
