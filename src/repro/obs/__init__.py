"""repro.obs — sim-time metrics, structured tracing, and reporting.

One optional :class:`~repro.obs.observer.Observer` threads through the
whole stack (simulator, SAN, replication, cluster, shards); every
layer emits counters/gauges/histograms into a shared
:class:`~repro.obs.metrics.MetricsRegistry` and typed
:class:`~repro.obs.trace.TraceEvent` records into a shared
:class:`~repro.obs.trace.TraceRecorder`. Traces export to JSONL and
Chrome ``trace_event`` format (:mod:`repro.obs.export`), and
``python -m repro.obs.report`` reconstructs a failover timeline from a
trace file (:mod:`repro.obs.report`).

Default-off: components fall back to :data:`NULL_OBSERVER`, which
records nothing, so the perf-model calibration and seed determinism
are untouched unless an observer is attached (or ``REPRO_OBS=1``).
"""

from repro.obs.export import (
    chrome_trace_dict,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_BOUNDS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObserver,
    OBS_ENV_VAR,
    Observer,
    get_default_observer,
    resolve_observer,
)
from repro.obs.trace import (
    KIND_INSTANT,
    KIND_SPAN,
    TraceEvent,
    TraceRecorder,
    select_events,
)

# The report symbols are re-exported lazily (PEP 562) so that running
# the CLI as ``python -m repro.obs.report`` does not pre-import the
# module through the package and trip runpy's double-import warning.
_REPORT_EXPORTS = (
    "FailoverSpan",
    "LatencySummary",
    "TimelineReport",
    "analyze_timeline",
    "analyze_trace_file",
)


def __getattr__(name):
    if name in _REPORT_EXPORTS:
        from repro.obs import report

        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Counter",
    "DEFAULT_BOUNDS",
    "FailoverSpan",
    "Gauge",
    "Histogram",
    "KIND_INSTANT",
    "KIND_SPAN",
    "LatencySummary",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "OBS_ENV_VAR",
    "Observer",
    "TimelineReport",
    "TraceEvent",
    "TraceRecorder",
    "analyze_timeline",
    "analyze_trace_file",
    "chrome_trace_dict",
    "get_default_observer",
    "read_jsonl",
    "resolve_observer",
    "select_events",
    "write_chrome_trace",
    "write_jsonl",
]
