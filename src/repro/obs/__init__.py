"""repro.obs — sim-time metrics, structured tracing, and reporting.

One optional :class:`~repro.obs.observer.Observer` threads through the
whole stack (simulator, SAN, replication, cluster, shards); every
layer emits counters/gauges/histograms into a shared
:class:`~repro.obs.metrics.MetricsRegistry` and typed
:class:`~repro.obs.trace.TraceEvent` records into a shared
:class:`~repro.obs.trace.TraceRecorder`. Traces export to JSONL and
Chrome ``trace_event`` format (:mod:`repro.obs.export`), and
``python -m repro.obs.report`` reconstructs a failover timeline from a
trace file (:mod:`repro.obs.report`).

Default-off: components fall back to :data:`NULL_OBSERVER`, which
records nothing, so the perf-model calibration and seed determinism
are untouched unless an observer is attached (or ``REPRO_OBS=1``).
"""

from repro.obs.export import (
    chrome_trace_dict,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_BOUNDS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObserver,
    OBS_ENV_VAR,
    Observer,
    get_default_observer,
    reset_default_observer,
    resolve_observer,
)
from repro.obs.trace import (
    KIND_INSTANT,
    KIND_SPAN,
    TraceEvent,
    TraceRecorder,
    select_events,
)

# Symbols re-exported lazily (PEP 562): the report/audit/slo modules
# are runnable or import each other, so pre-importing them through the
# package would trip runpy's double-import warning (report) or force
# the whole analysis layer on every ``import repro`` (audit/slo/spans).
_LAZY_EXPORTS = {
    "FailoverSpan": "repro.obs.report",
    "LatencySummary": "repro.obs.report",
    "TimelineReport": "repro.obs.report",
    "analyze_timeline": "repro.obs.report",
    "analyze_trace_file": "repro.obs.report",
    "AuditReport": "repro.obs.audit",
    "TraceAuditor": "repro.obs.audit",
    "Violation": "repro.obs.audit",
    "audit_events": "repro.obs.audit",
    "audit_trace_file": "repro.obs.audit",
    "ScopeAvailability": "repro.obs.slo",
    "SloReport": "repro.obs.slo",
    "compute_slo": "repro.obs.slo",
    "slo_from_trace_file": "repro.obs.slo",
    "COMMIT_PHASES": "repro.obs.spans",
    "CommitSpanRecorder": "repro.obs.spans",
    "CommitSpanTree": "repro.obs.spans",
    "PhaseAttribution": "repro.obs.spans",
    "attribute_commits": "repro.obs.spans",
    "collect_commit_spans": "repro.obs.spans",
    "DipSummary": "repro.obs.series",
    "SERIES_ENV_VAR": "repro.obs.series",
    "SeriesFrame": "repro.obs.series",
    "TimeSeriesSampler": "repro.obs.series",
    "derive_dip": "repro.obs.series",
    "series_interval_us": "repro.obs.series",
    "snap_tick": "repro.obs.series",
    "windowed_goodput": "repro.obs.series",
    "ProfileReport": "repro.obs.prof",
    "StackSampler": "repro.obs.prof",
    "SubsystemTimers": "repro.obs.prof",
    "parse_collapsed": "repro.obs.prof",
    "profile": "repro.obs.prof",
    "compare_reports": "repro.obs.bench",
    "load_bench_report": "repro.obs.bench",
    "RECOVERY_PHASES": "repro.obs.recovery",
    "RecoveryLink": "repro.obs.recovery",
    "RecoverySpanRecorder": "repro.obs.recovery",
    "RecoveryTree": "repro.obs.recovery",
    "collect_recoveries": "repro.obs.recovery",
    "RecoveryDecomposition": "repro.obs.critpath",
    "ScopeDecomposition": "repro.obs.critpath",
    "SpanNode": "repro.obs.critpath",
    "collect_span_forest": "repro.obs.critpath",
    "critical_path": "repro.obs.critpath",
    "critical_path_us": "repro.obs.critpath",
    "crosscheck_recovery_slo": "repro.obs.critpath",
    "decompose_recoveries": "repro.obs.critpath",
    "recovery_forest": "repro.obs.critpath",
    "TraceDiff": "repro.obs.diff",
    "canonicalize_events": "repro.obs.diff",
    "diff_events": "repro.obs.diff",
    "diff_files": "repro.obs.diff",
    "diff_series": "repro.obs.diff",
    "AlertVerification": "repro.obs.alerts",
    "BurnRateRule": "repro.obs.alerts",
    "DEFAULT_RULES": "repro.obs.alerts",
    "evaluate_alerts": "repro.obs.alerts",
    "verify_alerts": "repro.obs.alerts",
}


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AlertVerification",
    "AuditReport",
    "BurnRateRule",
    "COMMIT_PHASES",
    "CommitSpanRecorder",
    "CommitSpanTree",
    "Counter",
    "DEFAULT_BOUNDS",
    "DEFAULT_RULES",
    "DipSummary",
    "FailoverSpan",
    "Gauge",
    "Histogram",
    "KIND_INSTANT",
    "KIND_SPAN",
    "LatencySummary",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "OBS_ENV_VAR",
    "Observer",
    "PhaseAttribution",
    "ProfileReport",
    "RECOVERY_PHASES",
    "RecoveryDecomposition",
    "RecoveryLink",
    "RecoverySpanRecorder",
    "RecoveryTree",
    "SERIES_ENV_VAR",
    "ScopeAvailability",
    "ScopeDecomposition",
    "SeriesFrame",
    "SloReport",
    "SpanNode",
    "StackSampler",
    "SubsystemTimers",
    "TimeSeriesSampler",
    "TimelineReport",
    "TraceAuditor",
    "TraceDiff",
    "TraceEvent",
    "TraceRecorder",
    "Violation",
    "analyze_timeline",
    "analyze_trace_file",
    "attribute_commits",
    "audit_events",
    "audit_trace_file",
    "canonicalize_events",
    "chrome_trace_dict",
    "collect_commit_spans",
    "collect_recoveries",
    "collect_span_forest",
    "compare_reports",
    "compute_slo",
    "critical_path",
    "critical_path_us",
    "crosscheck_recovery_slo",
    "decompose_recoveries",
    "derive_dip",
    "diff_events",
    "diff_files",
    "diff_series",
    "evaluate_alerts",
    "get_default_observer",
    "load_bench_report",
    "parse_collapsed",
    "profile",
    "read_jsonl",
    "recovery_forest",
    "reset_default_observer",
    "resolve_observer",
    "select_events",
    "series_interval_us",
    "slo_from_trace_file",
    "snap_tick",
    "verify_alerts",
    "windowed_goodput",
    "write_chrome_trace",
    "write_jsonl",
]
