"""Causal recovery spans: where a failover's downtime goes.

:mod:`repro.obs.slo` prices each crash — this module decomposes it.
Every ``fault.crash`` opens one :data:`RECOVERY_SPAN` whose children
tile the downtime window *exactly* (the auditor's
``recovery-span-tiles-downtime`` rule machine-checks the tiling against
the SLO windows):

* ``detect`` — crash to failure detection (the missed-heartbeat
  window, or zero-width for a quorum group whose loss is observed the
  instant a member drops).
* ``view`` — membership reconfiguration. Zero-width for a pair (the
  view change fires at the detection instant); the *whole* quorum-loss
  window for a leaderless group, whose outage is by construction a
  membership problem (no reachable quorum) rather than a data problem.
* ``promote`` — takeover/seniority promotion. Zero-width in the
  current model (promotion is a pointer swing), kept in the vocabulary
  for engines with real promotion work.
* ``catchup`` — redo-ring replay or mirror/undo restore, priced from
  the same measured quantities the takeover model charges
  (``bytes_restored / restore_bytes_per_us``); active pairs replay the
  ring *during* detection, so their catchup is zero-width and the
  drain cost rides on the root attrs (modeled through
  :class:`~repro.obs.spans.PhaseCostModel` counter deltas).

``resume`` — the gap from restoration to the first *served* commit —
is deliberately **not** a child: the root span must equal the SLO
downtime window to the microsecond, and the first served commit lands
at or after restoration. Instead the router emits one
:data:`RECOVERY_RESUME` instant per failover, causally linked to the
recovery root via ``trace_id``/``parent_id`` and to the first
post-failover commit tree via ``commit_trace_id``; the decomposition
in :mod:`repro.obs.critpath` reports the gap as its own column.

Zero-duration phases are skipped on emission (the commit-span
convention): every emitted child is a real contributor, and the tiling
invariant — contiguous children, first at the root's start, last at
the root's end — holds either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Event name of one failover's parent recovery span.
RECOVERY_SPAN = "recovery.span"
#: Event name of one recovery phase child span.
RECOVERY_PHASE = "recovery.phase"
#: Event name of the first-served-commit instant after a failover.
RECOVERY_RESUME = "recovery.resume"

PHASE_DETECT = "detect"
PHASE_VIEW = "view"
PHASE_PROMOTE = "promote"
PHASE_CATCHUP = "catchup"
#: The recovery phases, in causal order (resume is an instant, not a
#: tiling child — see the module docstring).
RECOVERY_PHASES: Tuple[str, ...] = (
    PHASE_DETECT, PHASE_VIEW, PHASE_PROMOTE, PHASE_CATCHUP,
)

#: The resume column's name in decomposition tables.
RESUME_COLUMN = "resume"


@dataclass(frozen=True)
class RecoveryLink:
    """The causal handle one emitted recovery span leaves behind, so a
    later event (the router's first served completion) can link back."""

    trace_id: int
    span_id: int


def scope_of_component(component: str) -> str:
    """The serving scope a ``<scope>.cluster`` component belongs to:
    ``shard.2.cluster`` -> ``shard.2``; a bare ``cluster`` -> ``""``."""
    scope = component.rsplit(".cluster", 1)[0]
    return "" if scope == component else scope


class RecoverySpanRecorder:
    """Emits one failover's causal recovery tree through an observer.

    Unlike the commit recorder (which only knows durations and tiles
    backward from "now"), failover code knows every phase's absolute
    boundaries, so phases are recorded as explicit ``[start, end]``
    checkpoints in causal order; :meth:`finish` validates contiguity
    and emits the root plus the tiled, non-empty children. Recording
    is a pure observation — no model state is read back.
    """

    def __init__(self, observer, component: str = "cluster"):
        self.observer = observer
        self.component = component
        self._phases: List[Tuple[str, float, float, Dict[str, object]]] = []

    def phase(
        self, name: str, start_us: float, end_us: float, **attrs: object
    ) -> None:
        if name not in RECOVERY_PHASES:
            raise ValueError(f"unknown recovery phase {name!r}")
        if end_us < start_us:
            raise ValueError(
                f"recovery phase {name!r} ends before it starts "
                f"({end_us} < {start_us})"
            )
        if self._phases and start_us != self._phases[-1][2]:
            raise ValueError(
                f"recovery phase {name!r} starts at {start_us}, previous "
                f"phase ended at {self._phases[-1][2]} (children must tile)"
            )
        self._phases.append((name, start_us, end_us, dict(attrs)))

    def finish(self, **attrs: object) -> RecoveryLink:
        """Emit the tree; returns the link a resume event points at."""
        phases, self._phases = self._phases, []
        if not phases:
            raise ValueError("recovery span with no recorded phases")
        start_us = phases[0][1]
        end_us = phases[-1][2]
        trace_id = self.observer.new_trace_id()
        parent_id = self.observer.linked_span(
            self.component, RECOVERY_SPAN, start_us, end_us, trace_id,
            **attrs,
        )
        for name, phase_start, phase_end, phase_attrs in phases:
            if phase_end == phase_start:
                continue
            self.observer.linked_span(
                self.component, RECOVERY_PHASE, phase_start, phase_end,
                trace_id, parent_id=parent_id, phase=name, **phase_attrs,
            )
        return RecoveryLink(trace_id=trace_id, span_id=parent_id)


# -- analysis ----------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryTree:
    """One failover's reconstructed recovery decomposition."""

    trace_id: int
    span_id: int
    component: str
    scope: str
    start_us: float
    dur_us: float
    phases: Dict[str, float]
    attrs: Dict[str, object]
    #: Restoration -> first served commit, when a router recorded one.
    resume_gap_us: Optional[float] = None
    #: The first post-failover commit's trace id, when linked.
    resume_commit_trace_id: Optional[int] = None

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us

    @property
    def phase_sum_us(self) -> float:
        return sum(self.phases.values())

    @property
    def dominant_phase(self) -> Optional[str]:
        if not self.phases:
            return None
        return max(self.phases.items(), key=lambda item: item[1])[0]


def collect_recoveries(
    events: Iterable, component_prefix: Optional[str] = None
) -> List[RecoveryTree]:
    """Rebuild every failover's recovery tree from an event stream.

    Joins :data:`RECOVERY_SPAN` parents to their :data:`RECOVERY_PHASE`
    children and :data:`RECOVERY_RESUME` instants through the
    ``trace_id``/``parent_id`` attrs; works on the live recorder's list
    or on events reloaded from JSONL.
    """
    parents: Dict[int, object] = {}
    phases: Dict[int, Dict[str, float]] = {}
    resumes: Dict[int, object] = {}
    order: List[int] = []
    for event in events:
        if event.name == RECOVERY_SPAN:
            span_id = int(event.attrs["span_id"])
            parents[span_id] = event
            phases.setdefault(span_id, {})
            order.append(span_id)
        elif event.name == RECOVERY_PHASE:
            parent_id = int(event.attrs["parent_id"])
            by_phase = phases.setdefault(parent_id, {})
            phase = str(event.attrs["phase"])
            by_phase[phase] = by_phase.get(phase, 0.0) + event.dur_us
        elif event.name == RECOVERY_RESUME:
            parent_id = int(event.attrs["parent_id"])
            resumes.setdefault(parent_id, event)
    trees = []
    for span_id in order:
        event = parents[span_id]
        attrs = {
            key: value for key, value in event.attrs.items()
            if key not in ("trace_id", "span_id")
        }
        resume = resumes.get(span_id)
        gap = commit_trace_id = None
        if resume is not None:
            gap = resume.ts_us - (event.ts_us + event.dur_us)
            if "commit_trace_id" in resume.attrs:
                commit_trace_id = int(resume.attrs["commit_trace_id"])
        tree = RecoveryTree(
            trace_id=int(event.attrs["trace_id"]),
            span_id=span_id,
            component=event.component,
            scope=scope_of_component(event.component),
            start_us=event.ts_us,
            dur_us=event.dur_us,
            phases=phases[span_id],
            attrs=attrs,
            resume_gap_us=gap,
            resume_commit_trace_id=commit_trace_id,
        )
        if component_prefix is None or (
            tree.component == component_prefix
            or tree.component.startswith(component_prefix + ".")
        ):
            trees.append(tree)
    return trees
