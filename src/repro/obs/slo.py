"""SLO availability accounting from recorded traces.

The paper's availability story (Section 7) is qualitative: failover
takes tens of milliseconds, so a pair is "highly available". This
module makes it quantitative the way an operator would: fold every
measured :class:`~repro.obs.report.FailoverSpan`'s downtime window
against the trace horizon into served-time ratios, per shard and
cluster-wide, and express them as "nines".

The numbers are only as trustworthy as the trace, which is why
:func:`compute_slo` accepts the :class:`~repro.obs.audit.AuditReport`
for the same trace: a report built over a trace the auditor rejected
carries ``audit_ok=False`` and says so when rendered — availability
claims over an inconsistent trace are not claims.

Horizon convention: the serving window is ``[0, horizon_us)`` with the
horizon defaulting to the last event timestamp in the trace, so a
trace that ends mid-outage counts the open downtime to its end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.report import FailoverSpan, analyze_timeline
from repro.obs.trace import TraceEvent

#: Availability of a scope with zero observed downtime renders as this
#: many nines rather than infinity: no finite trace proves more.
MAX_NINES = 9.0


def nines(availability: float) -> float:
    """Availability expressed as "nines" (0.999 -> 3.0), capped at
    :data:`MAX_NINES` because a finite trace cannot witness infinity."""
    if availability >= 1.0:
        return MAX_NINES
    if availability <= 0.0:
        return 0.0
    return min(MAX_NINES, -math.log10(1.0 - availability))


@dataclass(frozen=True)
class ScopeAvailability:
    """One scope's (shard's, or the whole pair's) serving record."""

    scope: str  # "shard.2", or "" for an unsharded pair
    horizon_us: float
    downtime_us: float
    failovers: int
    windows: Tuple[Tuple[float, float], ...] = ()

    @property
    def label(self) -> str:
        return self.scope or "cluster"

    @property
    def served_us(self) -> float:
        return max(0.0, self.horizon_us - self.downtime_us)

    @property
    def availability(self) -> float:
        if self.horizon_us <= 0:
            return 1.0
        return self.served_us / self.horizon_us

    @property
    def nines(self) -> float:
        return nines(self.availability)

    def to_dict(self) -> Dict[str, object]:
        return {
            "scope": self.label,
            "horizon_us": self.horizon_us,
            "downtime_us": self.downtime_us,
            "failovers": self.failovers,
            "availability": self.availability,
            "nines": self.nines,
            "windows_us": [list(window) for window in self.windows],
        }


@dataclass
class SloReport:
    """Availability per scope plus the cluster-wide roll-up."""

    horizon_us: float
    scopes: List[ScopeAvailability]
    audit_ok: Optional[bool] = None  # None: trace was not audited

    @property
    def cluster_availability(self) -> float:
        """Capacity-weighted availability: each scope serves an equal
        share, so the cluster's served fraction is the scope mean.
        This is how an N-shard cluster keeps (N-1)/N of its capacity
        through a single-shard outage."""
        if not self.scopes:
            return 1.0
        return sum(scope.availability for scope in self.scopes) / len(self.scopes)

    @property
    def cluster_nines(self) -> float:
        return nines(self.cluster_availability)

    @property
    def total_downtime_us(self) -> float:
        return sum(scope.downtime_us for scope in self.scopes)

    def render(self) -> str:
        title = (
            f"Availability (horizon {self.horizon_us / 1000:.2f} ms, "
            f"{len(self.scopes)} scopes)"
        )
        lines = [title, "=" * len(title)]
        for scope in self.scopes:
            lines.append(
                f"  {scope.label:>10}: {scope.availability * 100:8.4f}% "
                f"({scope.nines:.2f} nines), downtime "
                f"{scope.downtime_us / 1000:.2f} ms over "
                f"{scope.failovers} failover(s)"
            )
        if not self.scopes:
            lines.append("  no serving scopes in this trace")
        lines.append(
            f"  cluster-wide: {self.cluster_availability * 100:.4f}% "
            f"({self.cluster_nines:.2f} nines)"
        )
        if self.audit_ok is True:
            lines.append("  trace audit: PASS — serving windows confirmed")
        elif self.audit_ok is False:
            lines.append(
                "  trace audit: FAIL — availability figures are NOT "
                "trustworthy (see the audit report)"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "horizon_us": self.horizon_us,
            "cluster_availability": self.cluster_availability,
            "cluster_nines": self.cluster_nines,
            "total_downtime_us": self.total_downtime_us,
            "audit_ok": self.audit_ok,
            "scopes": [scope.to_dict() for scope in self.scopes],
        }


def _trace_horizon_us(events: Sequence[TraceEvent]) -> float:
    return max((event.end_us for event in events), default=0.0)


def _scope_selected(scope: str, scopes: Optional[Sequence[str]]) -> bool:
    """Whether ``scope`` passes a ``--scope`` filter list (exact label
    or dotted prefix; None or empty selects everything)."""
    if not scopes:
        return True
    label = scope or "cluster"
    return any(
        label == wanted or label.startswith(wanted + ".")
        for wanted in scopes
    )


def compute_slo(
    events: Sequence[TraceEvent],
    horizon_us: Optional[float] = None,
    audit_ok: Optional[bool] = None,
    failovers: Optional[Sequence[FailoverSpan]] = None,
    scopes: Optional[Sequence[str]] = None,
) -> SloReport:
    """Fold a trace's failover spans into an availability report.

    ``failovers`` can be supplied (e.g. from an already-computed
    :class:`~repro.obs.report.TimelineReport`) to avoid re-scanning;
    otherwise they are reconstructed from ``events``. Scopes are the
    union of every serving scope that completed a transaction
    ("shard.N", or the explicit scope quorum completions carry) and
    every scope that failed over, so an always-up shard counts in the
    cluster roll-up with zero downtime. ``scopes`` restricts the
    report (and its cluster roll-up) to matching scopes — exact label
    or dotted prefix — so one trace holding both shard and
    quorum-group scopes can be reported per architecture.
    """
    if horizon_us is None:
        horizon_us = _trace_horizon_us(events)
    timeline = analyze_timeline(events)
    if failovers is None:
        failovers = timeline.failovers

    scope_state: Dict[str, Tuple[float, int, List[Tuple[float, float]]]] = {}
    for scope in timeline.per_scope_completions:
        scope_state.setdefault(scope, (0.0, 0, []))
    for span in failovers:
        downtime, count, windows = scope_state.get(span.scope, (0.0, 0, []))
        start = span.crash_at_us
        end = min(span.restored_at_us, horizon_us)
        charged = max(0.0, end - start)
        windows.append((start, end))
        scope_state[span.scope] = (downtime + charged, count + 1, windows)

    scope_reports = [
        ScopeAvailability(
            scope=scope,
            horizon_us=horizon_us,
            downtime_us=downtime,
            failovers=count,
            windows=tuple(windows),
        )
        for scope, (downtime, count, windows) in sorted(scope_state.items())
        if _scope_selected(scope, scopes)
    ]
    return SloReport(
        horizon_us=horizon_us, scopes=scope_reports, audit_ok=audit_ok
    )


def slo_from_trace_file(
    path: str,
    horizon_us: Optional[float] = None,
    audited: bool = False,
    scopes: Optional[Sequence[str]] = None,
) -> SloReport:
    """Load a JSONL trace, optionally audit it, and compute its SLO."""
    from repro.obs.audit import audit_events
    from repro.obs.export import read_jsonl

    events, _metrics = read_jsonl(path)
    audit_ok: Optional[bool] = None
    if audited:
        audit_ok = audit_events(events).ok
    return compute_slo(
        events, horizon_us=horizon_us, audit_ok=audit_ok, scopes=scopes
    )
