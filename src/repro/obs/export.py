"""Trace and metrics exporters.

Two formats, one source of truth:

* **JSONL** — one JSON object per line. Line types: ``meta`` (format
  version), ``event`` (a :class:`~repro.obs.trace.TraceEvent`), and an
  optional trailing ``metrics`` line holding a registry snapshot. The
  format round-trips losslessly: :func:`read_jsonl` rebuilds the exact
  event list, and :mod:`repro.obs.report` computes identical numbers
  from a reloaded file — asserted by the determinism tests.

* **Chrome ``trace_event``** — the JSON array format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev. Components map to
  thread lanes (named via metadata events), instants to phase ``i``,
  spans to complete events (phase ``X``), so a failover renders as a
  takeover bar next to the router's retry dots.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import KIND_SPAN, TraceEvent

JSONL_FORMAT = "repro-trace-v1"


def _stable_json(record: Dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_jsonl(
    path: Union[str, Path],
    events: Iterable[TraceEvent],
    metrics: Optional[MetricsRegistry] = None,
) -> Path:
    """Write a trace (and optional metrics snapshot) as JSONL."""
    path = Path(path)
    lines = [_stable_json({"type": "meta", "format": JSONL_FORMAT})]
    for event in events:
        record = {"type": "event"}
        record.update(event.to_dict())
        lines.append(_stable_json(record))
    if metrics is not None:
        lines.append(
            _stable_json({"type": "metrics", "snapshot": metrics.snapshot()})
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(
    path: Union[str, Path],
) -> Tuple[List[TraceEvent], Optional[Dict]]:
    """Reload a JSONL trace: ``(events, metrics_snapshot_or_None)``."""
    events: List[TraceEvent] = []
    snapshot: Optional[Dict] = None
    for line_number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        record = json.loads(line)
        record_type = record.get("type")
        if record_type == "meta":
            if record.get("format") != JSONL_FORMAT:
                raise ValueError(
                    f"{path}: unknown trace format {record.get('format')!r}"
                )
        elif record_type == "event":
            events.append(TraceEvent.from_dict(record))
        elif record_type == "metrics":
            snapshot = record["snapshot"]
        else:
            raise ValueError(
                f"{path}:{line_number}: unknown record type {record_type!r}"
            )
    return events, snapshot


def chrome_trace_dict(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """The Chrome ``trace_event`` JSON object for ``events``."""
    components = sorted({event.component for event in events})
    tids = {component: tid for tid, component in enumerate(components)}
    trace_events: List[Dict[str, object]] = []
    for component, tid in tids.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": component},
            }
        )
    for event in events:
        record: Dict[str, object] = {
            "name": event.name,
            "cat": event.component,
            "pid": 0,
            "tid": tids[event.component],
            "ts": event.ts_us,
            "args": dict(event.attrs),
        }
        if event.kind == KIND_SPAN:
            record["ph"] = "X"
            record["dur"] = event.dur_us
        else:
            record["ph"] = "i"
            record["s"] = "t"  # instant scoped to its thread lane
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], events: Sequence[TraceEvent]
) -> Path:
    """Write ``events`` in Chrome ``trace_event`` format (open the file
    in chrome://tracing or Perfetto)."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace_dict(events), sort_keys=True))
    return path
