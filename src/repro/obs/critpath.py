"""Critical-path extraction over any causal span DAG.

:mod:`repro.obs.spans` walks commit trees, :mod:`repro.obs.recovery`
walks recovery trees; this module generalizes both: any events linked
through ``trace_id``/``span_id``/``parent_id`` attrs form a span
forest, and the critical path of a root is the backward walk from its
end attributing every instant to the deepest descendant span active at
that instant — gaps no child covers are the parent's own time.

Two invariants the property suite pins down:

* ``critical_path_us(root) <= root.dur_us`` for *any* child geometry
  (children are clipped to the parent's interval, overlap is counted
  once), and
* equality exactly when the children tile the parent — which both the
  commit and recovery recorders guarantee by construction.

On top of the walker sits the downtime decomposition: per-scope tables
of where recovery time went (dominant phase, p50/p95/p99 per phase
across repeated crashes, the resume gap to the first served commit)
and the SLO cross-check used by the experiments' ``check()``s — the
per-scope recovery roots must reproduce ``obs.slo``'s downtime windows
to the microsecond.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.audit import SPAN_SUM_ATOL, SPAN_SUM_RTOL
from repro.obs.recovery import (
    RECOVERY_PHASES,
    RECOVERY_SPAN,
    RESUME_COLUMN,
    RecoveryTree,
    collect_recoveries,
)


@dataclass
class SpanNode:
    """One span in a reconstructed forest."""

    event: object
    span_id: int
    parent_id: Optional[int]
    trace_id: Optional[int]
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def start_us(self) -> float:
        return self.event.ts_us

    @property
    def end_us(self) -> float:
        return self.event.ts_us + self.event.dur_us

    @property
    def dur_us(self) -> float:
        return self.event.dur_us

    @property
    def label(self) -> str:
        phase = self.event.attrs.get("phase")
        return str(phase) if phase is not None else self.event.name


@dataclass(frozen=True)
class PathSegment:
    """One critical-path interval, attributed to the deepest span
    active over it (the root itself for gaps no child covers)."""

    node: SpanNode
    start_us: float
    end_us: float

    @property
    def dur_us(self) -> float:
        return self.end_us - self.start_us


def collect_span_forest(
    events: Iterable,
    names: Optional[Sequence[str]] = None,
    component_prefix: Optional[str] = None,
) -> List[SpanNode]:
    """Rebuild the span forest from any event stream.

    Every span event carrying a ``span_id`` becomes a node; nodes
    whose ``parent_id`` resolves become children (in event order),
    everything else is a root. ``names`` restricts which event names
    participate (e.g. ``("commit.span", "commit.phase")``);
    ``component_prefix`` filters scopes the usual exact-or-dotted way.
    """
    nodes: List[SpanNode] = []
    by_id: Dict[int, SpanNode] = {}
    for event in events:
        if names is not None and event.name not in names:
            continue
        if event.kind != "span":
            continue
        attrs = event.attrs
        if "span_id" not in attrs:
            continue
        if component_prefix is not None and not (
            event.component == component_prefix
            or event.component.startswith(component_prefix + ".")
        ):
            continue
        node = SpanNode(
            event=event,
            span_id=int(attrs["span_id"]),
            parent_id=(
                int(attrs["parent_id"]) if "parent_id" in attrs else None
            ),
            trace_id=(
                int(attrs["trace_id"]) if "trace_id" in attrs else None
            ),
        )
        nodes.append(node)
        by_id[node.span_id] = node
    roots: List[SpanNode] = []
    for node in nodes:
        parent = (
            by_id.get(node.parent_id) if node.parent_id is not None else None
        )
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def critical_path(root: SpanNode) -> List[PathSegment]:
    """The root's interval, tiled into segments attributed to the
    deepest active descendant (backward walk; overlap counted once,
    children clipped to the parent)."""
    segments: List[PathSegment] = []
    _walk(root, root.start_us, root.end_us, segments)
    segments.reverse()
    return segments


def _walk(
    node: SpanNode, lo: float, hi: float, out: List[PathSegment]
) -> None:
    """Tile ``[lo, hi]`` backward, attributing covered stretches to
    ``node``'s children (recursively) and gaps to ``node`` itself."""
    children = sorted(
        (c for c in node.children if c.start_us < hi and c.end_us > lo),
        key=lambda c: (c.end_us, c.start_us),
        reverse=True,
    )
    cursor = hi
    for child in children:
        end = min(child.end_us, cursor)
        if end <= lo:
            break
        if end < cursor:
            out.append(PathSegment(node, end, cursor))
        start = max(child.start_us, lo)
        if start < end:
            _walk(child, start, end, out)
        # A child clipped to nothing (zero-width, or starting past the
        # cursor) must never move the cursor *forward* — that would
        # re-attribute an already-covered stretch to the parent.
        cursor = min(cursor, start)
        if cursor <= lo:
            break
    if cursor > lo:
        out.append(PathSegment(node, lo, cursor))


def critical_path_us(root: SpanNode) -> float:
    """Total critical-path time attributed to descendants — at most the
    root's duration, exactly it when the children tile the root."""
    return sum(
        segment.dur_us
        for segment in critical_path(root)
        if segment.node is not root
    )


def self_time_us(root: SpanNode) -> float:
    """The stretches of the root no child covers."""
    return root.dur_us - critical_path_us(root)


# -- downtime decomposition --------------------------------------------------


@dataclass
class ScopeDecomposition:
    """Where one scope's recovery time went, across its failovers."""

    scope: str
    recoveries: int
    total_downtime_us: float
    phase_totals: Dict[str, float]
    #: p50/p95/p99 per phase (plus "recovery" end-to-end and "resume"),
    #: as :class:`~repro.obs.report.LatencySummary` values.
    latency: Dict[str, object]
    dominant_phase: Optional[str]
    resume_gaps: int

    @property
    def label(self) -> str:
        return self.scope or "cluster"

    def share(self, phase: str) -> float:
        if not self.total_downtime_us:
            return 0.0
        return self.phase_totals.get(phase, 0.0) / self.total_downtime_us

    def to_dict(self) -> Dict[str, object]:
        return {
            "scope": self.label,
            "recoveries": self.recoveries,
            "total_downtime_us": self.total_downtime_us,
            "dominant_phase": self.dominant_phase,
            "phase_totals_us": dict(self.phase_totals),
            "phase_shares": {
                phase: self.share(phase) for phase in self.phase_totals
            },
            "resume_gaps": self.resume_gaps,
            "latency_us": {
                name: summary.to_dict()
                for name, summary in self.latency.items()
            },
        }


@dataclass
class RecoveryDecomposition:
    """Per-scope downtime decomposition over one trace."""

    trees: List[RecoveryTree]
    scopes: List[ScopeDecomposition]

    @property
    def recoveries(self) -> int:
        return len(self.trees)

    def scope(self, label: str) -> ScopeDecomposition:
        for scope in self.scopes:
            if scope.label == (label or "cluster"):
                return scope
        raise KeyError(f"no recovery decomposition for scope {label!r}")

    def render(self) -> str:
        title = (
            f"Recovery decomposition ({self.recoveries} failover(s), "
            f"{len(self.scopes)} scope(s))"
        )
        lines = [title, "=" * len(title)]
        for scope in self.scopes:
            recovery = scope.latency.get("recovery")
            lines.append(
                f"  {scope.label}: {scope.recoveries} recovery(ies), "
                f"downtime {scope.total_downtime_us / 1000:.2f} ms, "
                f"dominant phase: {scope.dominant_phase or '(none)'}"
            )
            if recovery is not None and recovery.count:
                lines.append(
                    f"    end-to-end: mean {recovery.mean_us:.1f} us, "
                    f"p50 {recovery.p50_us:.1f}, p95 {recovery.p95_us:.1f}, "
                    f"p99 {recovery.p99_us:.1f}"
                )
            for phase in RECOVERY_PHASES:
                total = scope.phase_totals.get(phase, 0.0)
                if not total:
                    continue
                summary = scope.latency[phase]
                lines.append(
                    f"    {phase:>8}: {scope.share(phase) * 100:5.1f}%  "
                    f"(mean {summary.mean_us:.1f} us, "
                    f"p50 {summary.p50_us:.1f}, p95 {summary.p95_us:.1f}, "
                    f"p99 {summary.p99_us:.1f})"
                )
            resume = scope.latency.get(RESUME_COLUMN)
            if resume is not None and resume.count:
                lines.append(
                    f"    {RESUME_COLUMN:>8}: +{resume.mean_us:.1f} us mean "
                    f"to first served commit "
                    f"(p95 {resume.p95_us:.1f}, {resume.count} linked)"
                )
        if not self.scopes:
            lines.append("  no recovery spans in this trace")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "recoveries": self.recoveries,
            "scopes": [scope.to_dict() for scope in self.scopes],
        }


def decompose_recoveries(
    events: Iterable, scopes: Optional[Sequence[str]] = None
) -> RecoveryDecomposition:
    """Build the per-scope downtime-decomposition tables from a trace.

    ``scopes`` restricts the tables the way ``--scope`` filters SLO
    output (exact label or dotted prefix).
    """
    from repro.obs.report import LatencySummary
    from repro.obs.slo import _scope_selected

    trees = [
        tree for tree in collect_recoveries(events)
        if _scope_selected(tree.scope, scopes)
    ]
    by_scope: Dict[str, List[RecoveryTree]] = {}
    for tree in trees:
        by_scope.setdefault(tree.scope, []).append(tree)
    scope_tables: List[ScopeDecomposition] = []
    for scope in sorted(by_scope):
        scoped = by_scope[scope]
        phase_totals: Dict[str, float] = {}
        per_phase: Dict[str, List[float]] = {}
        gaps: List[float] = []
        for tree in scoped:
            for phase, dur in tree.phases.items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + dur
                per_phase.setdefault(phase, []).append(dur)
            if tree.resume_gap_us is not None:
                gaps.append(tree.resume_gap_us)
        latency: Dict[str, object] = {
            "recovery": LatencySummary.from_values(
                [tree.dur_us for tree in scoped]
            ),
            RESUME_COLUMN: LatencySummary.from_values(gaps),
        }
        for phase, values in per_phase.items():
            latency[phase] = LatencySummary.from_values(values)
        dominant = (
            max(phase_totals.items(), key=lambda item: item[1])[0]
            if phase_totals else None
        )
        scope_tables.append(
            ScopeDecomposition(
                scope=scope,
                recoveries=len(scoped),
                total_downtime_us=sum(tree.dur_us for tree in scoped),
                phase_totals=phase_totals,
                latency=latency,
                dominant_phase=dominant,
                resume_gaps=len(gaps),
            )
        )
    return RecoveryDecomposition(trees=trees, scopes=scope_tables)


def recovery_forest(events: Iterable) -> List[SpanNode]:
    """The recovery trees as generic span nodes (for the walker)."""
    return collect_span_forest(
        events, names=(RECOVERY_SPAN, "recovery.phase")
    )


def crosscheck_recovery_slo(
    events: Iterable, slo_report, scopes: Optional[Sequence[str]] = None
) -> RecoveryDecomposition:
    """Assert that recovery spans and SLO windows tell one story.

    For every SLO scope (after the optional ``scopes`` filter): the
    scope's recovery-root durations must sum to its SLO downtime within
    the span-sum tolerance, one root per counted failover, each root
    matching one downtime window's bounds. This replaces the ad-hoc
    downtime arithmetic the experiments used to duplicate; raises
    ``AssertionError`` with a precise message on any mismatch and
    returns the decomposition for further checks.
    """
    decomposition = decompose_recoveries(events, scopes=scopes)
    by_scope: Dict[str, List[RecoveryTree]] = {}
    for tree in decomposition.trees:
        by_scope.setdefault(tree.scope, []).append(tree)
    for scope in slo_report.scopes:
        roots = by_scope.pop(scope.scope, [])
        assert len(roots) == scope.failovers, (
            f"scope {scope.label}: {len(roots)} recovery span(s) for "
            f"{scope.failovers} SLO failover(s)"
        )
        root_sum = sum(root.dur_us for root in roots)
        tolerance = SPAN_SUM_ATOL + SPAN_SUM_RTOL * abs(scope.downtime_us)
        assert abs(root_sum - scope.downtime_us) <= tolerance, (
            f"scope {scope.label}: recovery roots sum to {root_sum}us, "
            f"SLO downtime is {scope.downtime_us}us"
        )
        unmatched = list(scope.windows)
        for root in sorted(roots, key=lambda r: r.start_us):
            match = next(
                (
                    window for window in unmatched
                    if abs(window[0] - root.start_us) <= tolerance
                    and abs(window[1] - root.end_us) <= tolerance
                ),
                None,
            )
            assert match is not None, (
                f"scope {scope.label}: recovery root "
                f"[{root.start_us}, {root.end_us}]us matches no SLO "
                f"downtime window in {list(scope.windows)}"
            )
            unmatched.remove(match)
    leftovers = {s: len(r) for s, r in by_scope.items() if r}
    assert not leftovers, (
        f"recovery spans recorded for scopes the SLO report does not "
        f"know: {leftovers}"
    )
    return decomposition
