"""The single instrumentation handle threaded through the stack.

Every instrumentable component takes an optional ``observer``; the
default resolves to :data:`NULL_OBSERVER`, whose every method is a
no-op and whose ``enabled`` flag is False so hot paths can skip even
building attribute dicts. A real :class:`Observer` bundles one shared
:class:`~repro.obs.metrics.MetricsRegistry` and one shared
:class:`~repro.obs.trace.TraceRecorder` behind a simulated-time clock.

Scoping gives the hierarchical namespace: ``observer.scoped("shard.0")``
returns a view onto the *same* registry and recorder that prefixes
every metric name and component with ``shard.0.`` — which is how one
trace file ends up telling apart four pairs' heartbeats.

The clock is bound late: a :class:`~repro.sim.engine.Simulator` (or
anything with a ``now``) attaches itself via :meth:`bind_clock` when
the observer reaches it, so construction order does not matter.
Components used outside any simulator stamp events at time 0.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence

from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry
from repro.obs.trace import TraceEvent, TraceRecorder


class NullObserver:
    """The default-off observer: records nothing, costs one attribute
    check per instrumentation site."""

    enabled = False

    def bind_clock(self, clock: Callable[[], float], force: bool = False) -> None:
        pass

    def scoped(self, prefix: str) -> "NullObserver":
        return self

    def metric_name(self, name: str) -> str:
        return name

    @property
    def now(self) -> float:
        return 0.0

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        pass

    def event(self, component: str, name: str, **attrs: object) -> None:
        pass

    def event_at(self, ts_us: float, component: str, name: str,
                 **attrs: object) -> None:
        pass

    def span(self, component: str, name: str, start_us: float,
             end_us: float, **attrs: object) -> None:
        pass

    def new_trace_id(self) -> int:
        return 0

    def new_span_id(self) -> int:
        return 0

    def linked_span(
        self, component: str, name: str, start_us: float, end_us: float,
        trace_id: int, parent_id: Optional[int] = None, **attrs: object,
    ) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullObserver()"


#: The process-wide no-op instance every un-observed component shares.
NULL_OBSERVER = NullObserver()


class Observer:
    """A live observer: metrics + trace + clock, optionally scoped."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
        recorder: Optional[TraceRecorder] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self._clock = clock
        self._prefix = ""
        self._parent: Optional[Observer] = None
        self._next_id = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        root = self._root()
        return root._clock() if root._clock is not None else 0.0

    def bind_clock(
        self, clock: Callable[[], float], force: bool = False
    ) -> None:
        """Attach a simulated-time source; first binding wins unless
        forced, so a shared observer keeps the shared simulator's clock
        even when several components offer theirs."""
        root = self._root()
        if root._clock is None or force:
            root._clock = clock

    def _root(self) -> "Observer":
        observer = self
        while observer._parent is not None:
            observer = observer._parent
        return observer

    # -- scoping -------------------------------------------------------------

    def scoped(self, prefix: str) -> "Observer":
        """A view prefixing metric names and components with ``prefix``."""
        if not prefix:
            return self
        child = Observer(registry=self.registry, recorder=self.recorder)
        child._prefix = self._join(prefix)
        child._parent = self
        return child

    @property
    def prefix(self) -> str:
        return self._prefix

    def metric_name(self, name: str) -> str:
        """``name`` as this scope records it (prefix applied) — for
        handing fully-qualified names to registry-level bridges."""
        return self._join(name)

    def _join(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    # -- metrics -------------------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        self.registry.counter(self._join(name)).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(self._join(name)).set(value)

    def observe(
        self, name: str, value: float,
        bounds: Sequence[float] = DEFAULT_BOUNDS,
    ) -> Histogram:
        histogram = self.registry.histogram(self._join(name), bounds)
        histogram.observe(value)
        return histogram

    # -- tracing -------------------------------------------------------------

    def event(self, component: str, name: str, **attrs: object) -> TraceEvent:
        """Record an instant event at the current simulated time."""
        return self.recorder.instant(self.now, self._join(component), name, **attrs)

    def event_at(
        self, ts_us: float, component: str, name: str, **attrs: object
    ) -> TraceEvent:
        """Record an instant event at an explicit simulated time (for
        occurrences scheduled at a known future instant)."""
        return self.recorder.instant(ts_us, self._join(component), name, **attrs)

    def span(
        self, component: str, name: str, start_us: float, end_us: float,
        **attrs: object,
    ) -> TraceEvent:
        """Record a completed span ``[start_us, end_us]``."""
        return self.recorder.span(
            start_us, end_us - start_us, self._join(component), name, **attrs
        )

    # -- causal spans --------------------------------------------------------

    def new_trace_id(self) -> int:
        """A fresh id for one causal trace (e.g. one commit); unique
        across every scope sharing this observer's recorder."""
        root = self._root()
        root._next_id += 1
        return root._next_id

    def new_span_id(self) -> int:
        """A fresh span id, drawn from the same sequence as trace ids
        so any id is unique across the whole trace."""
        return self.new_trace_id()

    def linked_span(
        self, component: str, name: str, start_us: float, end_us: float,
        trace_id: int, parent_id: Optional[int] = None, **attrs: object,
    ) -> int:
        """Record a span causally linked into trace ``trace_id``.

        The span gets its own ``span_id`` (returned, so children can
        point at it); ``parent_id`` names the enclosing span, or is
        omitted for a trace root. The links live in ``attrs``, which is
        what lets them survive the JSONL and Chrome exports unchanged.
        """
        span_id = self.new_span_id()
        if parent_id is not None:
            attrs["parent_id"] = parent_id
        self.recorder.span(
            start_us, end_us - start_us, self._join(component), name,
            trace_id=trace_id, span_id=span_id, **attrs,
        )
        return span_id

    def __repr__(self) -> str:
        scope = f", prefix={self._prefix!r}" if self._prefix else ""
        return (
            f"Observer({len(self.recorder)} events, "
            f"{len(self.registry)} metrics{scope})"
        )


#: Environment variable that flips the process default from the
#: NullObserver to a real in-memory Observer. CI runs the tier-1 suite
#: once with it set and once without, guarding the default-off contract.
OBS_ENV_VAR = "REPRO_OBS"

_default_observer: Optional[Observer] = None


def get_default_observer():
    """The observer components fall back to when given none.

    Returns :data:`NULL_OBSERVER` unless :data:`OBS_ENV_VAR` is set to
    a non-empty, non-"0" value, in which case one shared in-memory
    :class:`Observer` is created lazily for the whole process.
    """
    global _default_observer
    flag = os.environ.get(OBS_ENV_VAR, "")
    if not flag or flag == "0":
        return NULL_OBSERVER
    if _default_observer is None:
        _default_observer = Observer()
    return _default_observer


def reset_default_observer() -> None:
    """Drop the process-default observer so the next
    :func:`get_default_observer` call builds a fresh one.

    The parallel experiment runner's workers call this before each
    cell: a pool process computes many cells back to back, and without
    the reset each cell's metrics snapshot would also contain every
    earlier cell's counts, double-counting them at the merge."""
    global _default_observer
    _default_observer = None


def resolve_observer(observer):
    """``observer`` itself, or the process default when None."""
    return observer if observer is not None else get_default_observer()
