"""Wall-clock profiling without ``sys.setprofile``.

The ROADMAP's "next 10x" item needs to know *where* wall-clock goes
before vectorizing :class:`MemoryRegion` or parallelizing the shard
loop. ``cProfile`` answers that at 2-4x overhead and with call-count
noise; this module answers it two cheaper ways and cross-checks them:

* :class:`StackSampler` — a signal-less daemon thread that periodically
  grabs the profiled thread's stack via ``sys._current_frames()`` and
  folds it into collapsed-stack counts (the ``a;b;c N`` format standard
  flamegraph tooling consumes). Statistical, whole-program, ~0.1%
  overhead at the default 2 ms period.
* :class:`SubsystemTimers` — exact ``perf_counter`` timers at event
  dispatch boundaries, fed by the ``on_event`` hook on
  :meth:`Simulator.run`. Deterministic attribution keyed by the owning
  subsystem (the event action's module) and the event name with digits
  normalized (``shard-3-heartbeat`` -> ``shard-N-heartbeat``).

:func:`profile` wraps any callable with both, returning a
:class:`ProfileReport` that renders the per-subsystem attribution
table, writes the collapsed stacks, and exports a Chrome
``trace_event`` view mergeable with the simulator's own spans.

Nothing here touches simulated state: profiling changes wall-clock
only, never measured output — the detached golden grid stays
byte-identical, same discipline as the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import json
import re
import sys
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

#: Leaf-ward longest-prefix map from module path to subsystem label.
#: Order does not matter — the longest matching prefix wins.
SUBSYSTEM_PREFIXES: Dict[str, str] = {
    "repro.fastpath.kernels": "kernels",
    "repro.fastpath.replay": "replay-cache",
    "repro.fastpath.parallel": "parallel-runner",
    "repro.fastpath": "fastpath",
    "repro.memory.write_buffer": "write-buffer",
    "repro.memory": "memory-region",
    "repro.sim": "sim-core",
    "repro.cluster": "cluster",
    "repro.hardware": "hardware",
    "repro.replication": "replication",
    "repro.san": "san",
    "repro.shard": "shard",
    "repro.quorum.merkle": "merkle",
    "repro.quorum": "quorum",
    "repro.workloads": "workload",
    "repro.perf": "perf-model",
    "repro.experiments": "experiments",
    "repro.obs": "obs",
    "repro.vista": "engine",
}

_DIGITS = re.compile(r"\d+")


def classify_module(module: str) -> Optional[str]:
    """Subsystem label for a module path, or None when not ours."""
    best = None
    best_len = -1
    for prefix, label in SUBSYSTEM_PREFIXES.items():
        if len(prefix) > best_len and (
            module == prefix or module.startswith(prefix + ".")
        ):
            best, best_len = label, len(prefix)
    if best is None and (module == "repro" or module.startswith("repro.")):
        return "repro-misc"
    return best


def classify_stack(modules: List[str]) -> str:
    """Subsystem for one captured stack: the *nearest-to-leaf* frame
    living in a ``repro`` module decides (a kernel calling ``json`` is
    still kernel time); stacks with no repro frame are "other"."""
    for module in reversed(modules):
        label = classify_module(module)
        if label is not None:
            return label
    return "other"


def normalize_event_name(name: str) -> str:
    """Collapse per-instance digits so timer keys aggregate
    (``shard-3-heartbeat`` -> ``shard-N-heartbeat``)."""
    return _DIGITS.sub("N", name) if name else "(unnamed)"


# -- collapsed stacks -----------------------------------------------


def collapsed_text(samples: Mapping[Tuple[str, ...], int]) -> str:
    """Render folded samples as flamegraph collapsed-stack lines —
    ``root;child;leaf count`` — sorted for determinism."""
    lines = []
    for stack, count in sorted(samples.items()):
        lines.append(f"{';'.join(stack)} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> Dict[Tuple[str, ...], int]:
    """Inverse of :func:`collapsed_text` (the round-trip is tested)."""
    samples: Dict[Tuple[str, ...], int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_part, _, count_part = line.rpartition(" ")
        if not stack_part or not count_part.isdigit():
            raise ValueError(f"malformed collapsed-stack line: {line!r}")
        stack = tuple(stack_part.split(";"))
        samples[stack] = samples.get(stack, 0) + int(count_part)
    return samples


class StackSampler:
    """Periodic stack capture of one thread from a sampler thread.

    No signals, no ``sys.setprofile``: a daemon thread wakes every
    ``interval_s``, reads the target thread's current frame out of
    ``sys._current_frames()``, and folds it. The profiled code runs
    unmodified; overhead is the GIL time to walk one stack per tick.
    """

    def __init__(self, interval_s: float = 0.002,
                 target_thread_id: Optional[int] = None) -> None:
        self.interval_s = interval_s
        self.target_thread_id = (
            threading.get_ident() if target_thread_id is None
            else target_thread_id
        )
        self.samples: Counter = Counter()       # stack tuple -> hits
        self.module_stacks: Counter = Counter()  # module tuple -> hits
        self.total_samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _capture_once(self) -> None:
        frame = sys._current_frames().get(self.target_thread_id)
        if frame is None:
            return
        names: List[str] = []
        modules: List[str] = []
        while frame is not None:
            code = frame.f_code
            module = frame.f_globals.get("__name__", "?")
            names.append(f"{module}:{code.co_name}")
            modules.append(module)
            frame = frame.f_back
        names.reverse()
        modules.reverse()
        self.samples[tuple(names)] += 1
        self.module_stacks[tuple(modules)] += 1
        self.total_samples += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._capture_once()

    def start(self) -> "StackSampler":
        if self._thread is not None:
            raise ValueError("sampler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def subsystem_fractions(self) -> Dict[str, float]:
        """Fraction of samples attributed to each subsystem."""
        if not self.total_samples:
            return {}
        totals: Counter = Counter()
        for modules, hits in self.module_stacks.items():
            totals[classify_stack(list(modules))] += hits
        return {
            label: hits / self.total_samples
            for label, hits in sorted(
                totals.items(), key=lambda kv: (-kv[1], kv[0]))
        }

    def collapsed(self) -> str:
        return collapsed_text(self.samples)


# -- exact dispatch timers ------------------------------------------


class SubsystemTimers:
    """Exact per-subsystem wall-clock at event-dispatch boundaries.

    Pass :meth:`on_event` to ``Simulator.run(on_event=...)``: each
    dispatch is timed with ``perf_counter`` and charged to
    ``(subsystem, normalized event name)`` where the subsystem comes
    from the event action's defining module (a bound method's
    ``__module__`` is its class's module — the owning component).
    """

    def __init__(self) -> None:
        self.wall_s: Dict[Tuple[str, str], float] = {}
        self.counts: Dict[Tuple[str, str], int] = {}
        self.total_s = 0.0
        self.events = 0

    def on_event(self, event) -> None:
        action = event.action
        t0 = time.perf_counter()
        action()
        elapsed = time.perf_counter() - t0
        module = getattr(action, "__module__", None) or "?"
        key = (classify_module(module) or "other",
               normalize_event_name(event.name))
        self.wall_s[key] = self.wall_s.get(key, 0.0) + elapsed
        self.counts[key] = self.counts.get(key, 0) + 1
        self.total_s += elapsed
        self.events += 1

    def by_subsystem(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for (subsystem, _), secs in self.wall_s.items():
            totals[subsystem] = totals.get(subsystem, 0.0) + secs
        return dict(sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])))

    def rows(self) -> List[Tuple[str, str, float, int]]:
        """(subsystem, event name, seconds, dispatches), slowest first."""
        return sorted(
            ((sub, name, secs, self.counts[(sub, name)])
             for (sub, name), secs in self.wall_s.items()),
            key=lambda row: (-row[2], row[0], row[1]),
        )


# -- the report -----------------------------------------------------


@dataclass
class ProfileReport:
    """Joined output of one profiled run."""

    wall_s: float
    sample_interval_s: float
    total_samples: int
    fractions: Dict[str, float]                      # sampled attribution
    collapsed: str                                    # flamegraph input
    timers: Optional[SubsystemTimers] = None          # exact dispatch timers
    label: str = "profile"

    @property
    def attributed_fraction(self) -> float:
        """Fraction of samples landing in a named repro subsystem."""
        return sum(frac for label, frac in self.fractions.items()
                   if label != "other")

    def render(self) -> str:
        lines = [
            f"{self.label}: {self.wall_s:.2f}s wall, "
            f"{self.total_samples} samples @ "
            f"{self.sample_interval_s * 1000:.1f}ms",
            "",
            "subsystem wall-clock (sampled):",
        ]
        for label, frac in self.fractions.items():
            lines.append(f"  {label:<16} {frac * 100:6.1f}%  "
                         f"{frac * self.wall_s:8.2f}s")
        lines.append(f"  {'[attributed]':<16} "
                     f"{self.attributed_fraction * 100:6.1f}%")
        if self.timers is not None and self.timers.events:
            lines += ["", "event dispatch (exact timers):"]
            lines.append(f"  {'subsystem':<16} {'event':<28} "
                         f"{'seconds':>9} {'dispatches':>11}")
            for subsystem, name, secs, count in self.timers.rows()[:20]:
                lines.append(f"  {subsystem:<16} {name:<28} "
                             f"{secs:9.3f} {count:11d}")
            lines.append(
                f"  dispatch total {self.timers.total_s:.2f}s over "
                f"{self.timers.events} events"
            )
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "label": self.label,
            "wall_s": self.wall_s,
            "sample_interval_s": self.sample_interval_s,
            "total_samples": self.total_samples,
            "fractions": dict(self.fractions),
            "attributed_fraction": self.attributed_fraction,
        }
        if self.timers is not None:
            payload["dispatch"] = {
                "total_s": self.timers.total_s,
                "events": self.timers.events,
                "rows": [
                    {"subsystem": sub, "event": name,
                     "seconds": secs, "dispatches": count}
                    for sub, name, secs, count in self.timers.rows()
                ],
            }
        return payload

    def write_collapsed(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.collapsed)

    def chrome_trace_dict(
        self, base: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Chrome ``trace_event`` view of the profile; pass an existing
        export (e.g. :func:`repro.obs.export.chrome_trace_dict` output)
        as ``base`` to merge profiler lanes next to the simulator's own
        spans. Profiler slices live on their own pid so the two
        timelines stay visually separate."""
        merged: List[Dict[str, Any]] = []
        if base:
            merged.extend(base.get("traceEvents", []))
        pid = "repro-profiler"
        merged.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"wall-clock profile: {self.label}"},
        })
        cursor = 0.0
        for label, frac in self.fractions.items():
            dur = frac * self.wall_s * 1e6
            merged.append({
                "name": label, "ph": "X", "pid": pid,
                "tid": "sampled-subsystems",
                "ts": cursor, "dur": dur,
                "args": {"fraction": frac},
            })
            cursor += dur
        if self.timers is not None:
            cursor = 0.0
            for subsystem, name, secs, count in self.timers.rows():
                merged.append({
                    "name": f"{subsystem}: {name}", "ph": "X", "pid": pid,
                    "tid": "dispatch-timers",
                    "ts": cursor, "dur": secs * 1e6,
                    "args": {"dispatches": count},
                })
                cursor += secs * 1e6
        result = dict(base) if base else {"displayTimeUnit": "ms"}
        result["traceEvents"] = merged
        return result

    def write_chrome_trace(
        self, path: str, base: Optional[Dict[str, Any]] = None
    ) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace_dict(base), fh, indent=1)


def profile(
    fn: Callable[[], Any],
    interval_s: float = 0.002,
    label: str = "profile",
    timers: Optional[SubsystemTimers] = None,
) -> Tuple[Any, ProfileReport]:
    """Run ``fn`` under the stack sampler and return
    ``(fn's result, report)``. Pass a :class:`SubsystemTimers` whose
    ``on_event`` the profiled code fed to ``Simulator.run`` to include
    exact dispatch attribution in the report."""
    sampler = StackSampler(interval_s=interval_s)
    t0 = time.perf_counter()
    with sampler:
        result = fn()
    wall = time.perf_counter() - t0
    report = ProfileReport(
        wall_s=wall,
        sample_interval_s=interval_s,
        total_samples=sampler.total_samples,
        fractions=sampler.subsystem_fractions(),
        collapsed=sampler.collapsed(),
        timers=timers,
        label=label,
    )
    return result, report
