"""Instrumented byte-addressable memory regions.

A :class:`MemoryRegion` is the unit of data the paper's system deals
in: the database, the undo log, the mirror copy, the redo-log circular
buffer and the allocator heap are all regions. Regions support write
observers — callables invoked on every write — which is exactly the
hook "write doubling" needs: the replication layer registers an
observer that forwards each write into Memory Channel I/O space.

Every write carries a :class:`WriteCategory` so the traffic tables
(Tables 2, 5 and 7) can be measured rather than estimated.

Two backings exist behind the :func:`memory_region` factory:
:class:`MemoryRegion` stores a plain ``bytearray`` (the reference),
and :class:`NumpyMemoryRegion` stores a numpy ``uint8`` array so
``fill``/``copy_within``/``copy_from`` run as vectorized slice
operations — same bounds checks, same observer notifications, same
statistics, per the fastpath byte-identity discipline
(``REPRO_FASTPATH=0`` / ``--no-fastpath`` keeps the reference live).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import CrashedError, OutOfBoundsError, ProtectionError

try:  # numpy backs the fast-path region; the reference needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


class WriteCategory(enum.Enum):
    """Classification of a write for traffic accounting.

    Matches the paper's breakdown: *modified data* are in-place
    database writes made by the transaction; *undo data* are copies
    made to preserve pre-images (undo-log bodies, mirror updates);
    *meta-data* is everything else (allocator bookkeeping, list
    pointers, record headers, commit flags, log pointers).
    """

    MODIFIED = "modified"
    UNDO = "undo"
    META = "meta"

    # Identity hash (members are singletons, so equality already is
    # identity): Enum.__hash__ is a Python-level method, and traffic
    # accounting hashes a category four times per doubled store.
    __hash__ = object.__hash__


@dataclass(frozen=True)
class WriteEvent:
    """One observed write to a region."""

    region: "MemoryRegion"
    offset: int
    length: int
    category: WriteCategory

    @property
    def address(self) -> int:
        """Global address of the write (region base + offset)."""
        return self.region.base + self.offset


Observer = Callable[[WriteEvent], None]

#: Fast write observer: called as ``fn(offset, length, category)``
#: without building a WriteEvent — the per-store allocation matters on
#: the write-doubling hot path (millions of calls per experiment run).
FastObserver = Callable[[int, int, WriteCategory], None]


#: Shared fill source: one reused zero page instead of a
#: size-of-region temporary per :meth:`MemoryRegion.fill` call.
_FILL_PAGE_BYTES = 1 << 16
_ZERO_PAGE = bytes(_FILL_PAGE_BYTES)


class MemoryRegion:
    """A contiguous, bounds-checked byte array with write observers."""

    __slots__ = (
        "name",
        "size",
        "base",
        "data",
        "_observers",
        "_fast_observers",
        "_protected",
        "_crashed",
        "_window",
        "writes_observed",
        "bytes_written",
    )

    def __init__(self, name: str, size: int, base: int = 0):
        if size <= 0:
            raise ValueError(f"region {name!r} must have positive size")
        self.name = name
        self.size = size
        self.base = base
        self.data = self._allocate(size)
        self._observers: List[Observer] = []
        self._fast_observers: List[FastObserver] = []
        self._protected = False
        self._crashed = False
        self._window: Optional[tuple] = None
        self.writes_observed = 0
        self.bytes_written = 0

    def _allocate(self, size: int):
        """Allocate the backing store. Subclasses override to swap the
        buffer implementation; the returned object must support
        ``len``, slice reads, slice assignment from bytes-likes, and
        the buffer protocol (``memoryview``)."""
        return bytearray(size)

    # -- observation ----------------------------------------------------

    def add_observer(self, observer: Observer) -> None:
        """Register a callable invoked after every write."""
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        self._observers.remove(observer)

    def add_fast_observer(self, observer: FastObserver) -> None:
        """Register a callable invoked as ``fn(offset, length,
        category)`` after every write (no WriteEvent built)."""
        self._fast_observers.append(observer)

    def remove_fast_observer(self, observer: FastObserver) -> None:
        self._fast_observers.remove(observer)

    # -- protection (Rio semantics) --------------------------------------

    def protect(self) -> None:
        """Enable Rio-style VM protection: writes outside an open
        window raise :class:`ProtectionError`."""
        self._protected = True

    def unprotect(self) -> None:
        self._protected = False

    def open_window(self, offset: int, length: int) -> None:
        """Sanction writes to ``[offset, offset+length)`` while protected."""
        self._check_bounds(offset, length)
        self._window = (offset, offset + length)

    def close_window(self) -> None:
        self._window = None

    # -- access ----------------------------------------------------------

    def _check_bounds(self, offset: int, length: int) -> None:
        if self._crashed:
            raise CrashedError(
                f"region {self.name!r} is unavailable: its node crashed "
                f"(Rio preserves the contents until reboot)"
            )
        if offset < 0 or length < 0 or offset + length > self.size:
            raise OutOfBoundsError(self.name, offset, length, self.size)

    def _check_protection(self, offset: int, length: int) -> None:
        if not self._protected:
            return
        if self._window is None:
            raise ProtectionError(
                f"write to protected region {self.name!r} with no open window"
            )
        lo, hi = self._window
        if offset < lo or offset + length > hi:
            raise ProtectionError(
                f"write [{offset}, {offset + length}) outside open window "
                f"[{lo}, {hi}) of protected region {self.name!r}"
            )

    def write(
        self,
        offset: int,
        data: bytes,
        category: WriteCategory = WriteCategory.MODIFIED,
    ) -> None:
        """Write ``data`` at ``offset`` and notify observers."""
        length = len(data)
        if length == 0:
            return
        # Fused precondition: the common case (healthy, unprotected
        # region, in-bounds store) clears every check with one branch.
        # length >= 1 here, so the negative-length clause of
        # _check_bounds cannot fire and the fallthrough raises the
        # exact same exception the two-call reference sequence would.
        if (
            self._crashed
            or self._protected
            or offset < 0
            or offset + length > self.size
        ):
            self._check_bounds(offset, length)
            self._check_protection(offset, length)
        self.data[offset : offset + length] = data
        self.writes_observed += 1
        self.bytes_written += length
        if self._fast_observers:
            for fast_observer in self._fast_observers:
                fast_observer(offset, length, category)
        if self._observers:
            event = WriteEvent(self, offset, length, category)
            for observer in self._observers:
                observer(event)

    def read(self, offset: int, length: int) -> bytes:
        """Return ``length`` bytes starting at ``offset``."""
        self._check_bounds(offset, length)
        return bytes(self.data[offset : offset + length])

    def view(self, offset: int, length: int) -> memoryview:
        """A read-only zero-copy view of ``[offset, offset+length)``.

        Same bounds and crash checks as :meth:`read`; callers that only
        scan the bytes (the diff kernels) avoid the copy."""
        self._check_bounds(offset, length)
        return memoryview(self.data).toreadonly()[offset : offset + length]

    def copy_within(
        self,
        src_offset: int,
        dst_offset: int,
        length: int,
        category: WriteCategory = WriteCategory.UNDO,
    ) -> None:
        """bcopy inside the region (observers see the destination write).

        Moves the bytes through one ``memoryview`` slice assignment
        (bytearray slice assignment copies when source and destination
        share a buffer, so overlap is safe) instead of the seed's
        read-then-write pair, which materialized an intermediate
        ``bytes``. Observers and statistics see exactly what a
        ``write(dst_offset, ...)`` of the same bytes would have shown.
        """
        self._check_bounds(src_offset, length)
        if length == 0:
            return
        self._check_bounds(dst_offset, length)
        self._check_protection(dst_offset, length)
        data = self.data
        data[dst_offset : dst_offset + length] = memoryview(data)[
            src_offset : src_offset + length
        ]
        self.writes_observed += 1
        self.bytes_written += length
        if self._fast_observers:
            for fast_observer in self._fast_observers:
                fast_observer(dst_offset, length, category)
        if self._observers:
            event = WriteEvent(self, dst_offset, length, category)
            for observer in self._observers:
                observer(event)

    def copy_from(
        self,
        src: "MemoryRegion",
        src_offset: int,
        dst_offset: int,
        length: int,
        category: WriteCategory = WriteCategory.UNDO,
    ) -> None:
        """bcopy from another region (observers see the destination
        write).

        The reference implementation is the semantics-defining
        read-then-write pair the engines used before this method
        existed — same checks, same observer notifications, same
        statistics, one intermediate ``bytes``.
        :class:`NumpyMemoryRegion` overrides it with a vectorized
        zero-copy slice assignment (that removal of the intermediate
        copy on the mirror-update hot path is the point of the
        override). ``src is self`` is allowed and overlap-safe.
        """
        self.write(dst_offset, src.read(src_offset, length), category)

    def poke(self, offset: int, data: bytes) -> None:
        """Setup-phase write: stores ``data`` without notifying
        observers or counting statistics. Used to load initial database
        images, which the paper's traffic tables do not count (the
        initial image reaches the backup at mapping time, not through
        the transaction stream)."""
        self._check_bounds(offset, len(data))
        self.data[offset : offset + len(data)] = data

    def fill(self, value: int = 0) -> None:
        """Set every byte to ``value`` without notifying observers.

        Used for initialization, which the paper does not count as
        replication traffic. Copies from a fixed-size fill page instead
        of materializing a size-of-region temporary (the seed built
        ``bytes([value]) * size`` — a second full-region allocation —
        on every call).
        """
        if not 0 <= value <= 255:
            raise ValueError(f"fill value {value} is not a byte")
        size = self.size
        if value == 0:
            page = _ZERO_PAGE
        else:
            page = bytes((value,)) * min(size, _FILL_PAGE_BYTES)
        data = self.data
        step = len(page)
        whole = size - size % step
        for start in range(0, whole, step):
            data[start : start + step] = page
        if whole < size:
            data[whole:size] = page[: size - whole]

    def snapshot(self) -> bytes:
        """An immutable copy of the entire region's contents."""
        return bytes(self.data)

    def load_snapshot(self, snapshot: bytes) -> None:
        """Restore contents captured by :meth:`snapshot` (no observers)."""
        if len(snapshot) != self.size:
            raise ValueError(
                f"snapshot of {len(snapshot)} bytes does not match region "
                f"{self.name!r} of size {self.size}"
            )
        self.data[:] = snapshot

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}"
            f"({self.name!r}, size={self.size}, base={self.base:#x})"
        )


class NumpyMemoryRegion(MemoryRegion):
    """A region backed by a numpy ``uint8`` array.

    The inherited byte-at-a-time interface (``write``/``read``/
    ``view``/``poke``/``snapshot``) works unchanged through the buffer
    protocol: ``self.data`` is a writable ``memoryview`` of the array,
    so every inherited slice operation is already a straight memcpy.
    What the subclass overrides are the bulk operations where numpy's
    vectorized slice kernels beat the bytearray reference —
    :meth:`fill`, :meth:`copy_within` and :meth:`copy_from` — with
    check order, observer notifications and statistics identical to
    the reference byte for byte (the equivalence property suite and
    the engine-level fastpath tests both drive the two backings
    against each other).
    """

    __slots__ = ("_array",)

    def _allocate(self, size: int):
        self._array = _np.zeros(size, dtype=_np.uint8)
        return memoryview(self._array)

    def fill(self, value: int = 0) -> None:
        if not 0 <= value <= 255:
            raise ValueError(f"fill value {value} is not a byte")
        self._array[:] = value

    def copy_within(
        self,
        src_offset: int,
        dst_offset: int,
        length: int,
        category: WriteCategory = WriteCategory.UNDO,
    ) -> None:
        self._check_bounds(src_offset, length)
        if length == 0:
            return
        self._check_bounds(dst_offset, length)
        self._check_protection(dst_offset, length)
        array = self._array
        source = array[src_offset : src_offset + length]
        if abs(dst_offset - src_offset) < length:
            # numpy's overlap handling buffers element-wise and is
            # slower than the bytearray reference; one explicit
            # contiguous copy keeps the vectorized assignment.
            source = source.copy()
        array[dst_offset : dst_offset + length] = source
        self.writes_observed += 1
        self.bytes_written += length
        if self._fast_observers:
            for fast_observer in self._fast_observers:
                fast_observer(dst_offset, length, category)
        if self._observers:
            event = WriteEvent(self, dst_offset, length, category)
            for observer in self._observers:
                observer(event)

    def copy_from(
        self,
        src: MemoryRegion,
        src_offset: int,
        dst_offset: int,
        length: int,
        category: WriteCategory = WriteCategory.UNDO,
    ) -> None:
        src_array = getattr(src, "_array", None)
        if src_array is None:
            # Mixed backings (reference source): the base slice
            # assignment already moves the bytes without a temporary.
            super().copy_from(src, src_offset, dst_offset, length, category)
            return
        src._check_bounds(src_offset, length)
        if length == 0:
            return
        self._check_bounds(dst_offset, length)
        self._check_protection(dst_offset, length)
        source = src_array[src_offset : src_offset + length]
        if src is self and abs(dst_offset - src_offset) < length:
            source = source.copy()
        self._array[dst_offset : dst_offset + length] = source
        self.writes_observed += 1
        self.bytes_written += length
        if self._fast_observers:
            for fast_observer in self._fast_observers:
                fast_observer(dst_offset, length, category)
        if self._observers:
            event = WriteEvent(self, dst_offset, length, category)
            for observer in self._observers:
                observer(event)


def memory_region(name: str, size: int, base: int = 0) -> MemoryRegion:
    """A memory region for a new node or channel endpoint.

    Selects the numpy-backed :class:`NumpyMemoryRegion` under the fast
    path (when numpy is importable) and the reference bytearray
    :class:`MemoryRegion` under ``REPRO_FASTPATH=0`` /
    ``--no-fastpath`` — same contents, same observer event stream,
    same statistics either way, per the fastpath byte-identity
    discipline. Mirrors
    :func:`repro.hardware.writebuffer.writebuffer_model`.
    """
    import repro.fastpath

    if _np is not None and repro.fastpath.enabled():
        return NumpyMemoryRegion(name, size, base)
    return MemoryRegion(name, size, base)
