"""Allocators over memory regions.

Three allocators reflect the three structural regimes the paper
compares:

* :class:`HeapAllocator` — a boundary-tag, first-fit free-list heap,
  as used by Version 0 (Vista) for undo-log records and pre-image
  buffers. All bookkeeping (headers, footers, free-list links, the
  list head) is stored *in the region* via categorized META writes —
  in a write-through replica every one of those stores crosses the
  SAN, which is how the straightforward implementation ends up
  shipping 6.7 GB of metadata for Debit-Credit (Table 2).
* :class:`BumpAllocator` — a pointer that advances and retreats, as
  used by Version 3's inline log ("allocate such a log record by
  simply advancing a pointer in memory").
* :class:`ArrayAllocator` — fixed-size records allocated by
  incrementing an array index, as used by Versions 1 and 2 for their
  set_range coordinate arrays.

Integers are stored little-endian in 8-byte fields so the structures
are real bytes a recovery procedure can walk.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.errors import AllocationError
from repro.memory.region import MemoryRegion, WriteCategory

_U64 = struct.Struct("<Q")

HEADER_BYTES = 16  # size (8) | flags (8)
FOOTER_BYTES = 16
FIELD_BYTES = 8
MIN_BLOCK = 64  # room for header + footer + two list pointers
_FREE = 1
_USED = 0
NULL = 0  # no block; valid block offsets are always > 0


def _read_u64(region: MemoryRegion, offset: int) -> int:
    return _U64.unpack(region.read(offset, FIELD_BYTES))[0]


def _write_u64(region: MemoryRegion, offset: int, value: int) -> None:
    region.write(offset, _U64.pack(value), WriteCategory.META)


class HeapAllocator:
    """Boundary-tag first-fit heap with an in-region free list.

    Layout (offsets relative to ``base``):
        [0:8]    free-list head (block offset, NULL when empty)
        [8:32]   reserved
        [32:]    blocks

    Block layout:
        [0:8]    block size (total, including header/footer)
        [8:16]   flags (1 = free)
        [16:24]  next free block (only meaningful while free)
        [24:32]  prev free block (only meaningful while free)
        ...payload...
        [-16:-8] block size (footer copy, for coalescing)
        [-8:]    flags (footer copy)
    """

    _HEAD_OFFSET = 0
    _BLOCKS_START = 32

    def __init__(
        self,
        region: MemoryRegion,
        base: int = 0,
        size: Optional[int] = None,
        fresh: bool = True,
    ):
        self.region = region
        self.base = base
        self.size = size if size is not None else region.size - base
        if self.size < self._BLOCKS_START + MIN_BLOCK:
            raise AllocationError(
                f"heap of {self.size} bytes is too small (min "
                f"{self._BLOCKS_START + MIN_BLOCK})"
            )
        self.allocs = 0
        self.frees = 0
        self.splits = 0
        self.coalesces = 0
        self.walk_steps = 0
        if fresh:
            self._format()

    # -- low-level field access (block offsets are heap-relative) --------

    def _abs(self, offset: int) -> int:
        return self.base + offset

    def _block_size(self, block: int) -> int:
        return _read_u64(self.region, self._abs(block))

    def _block_flags(self, block: int) -> int:
        return _read_u64(self.region, self._abs(block) + 8)

    def _set_header(self, block: int, size: int, flags: int) -> None:
        _write_u64(self.region, self._abs(block), size)
        _write_u64(self.region, self._abs(block) + 8, flags)

    def _set_footer(self, block: int, size: int, flags: int) -> None:
        end = self._abs(block) + size
        _write_u64(self.region, end - 16, size)
        _write_u64(self.region, end - 8, flags)

    def _next_free(self, block: int) -> int:
        return _read_u64(self.region, self._abs(block) + 16)

    def _prev_free(self, block: int) -> int:
        return _read_u64(self.region, self._abs(block) + 24)

    def _set_next_free(self, block: int, value: int) -> None:
        _write_u64(self.region, self._abs(block) + 16, value)

    def _set_prev_free(self, block: int, value: int) -> None:
        _write_u64(self.region, self._abs(block) + 24, value)

    def _head(self) -> int:
        return _read_u64(self.region, self._abs(self._HEAD_OFFSET))

    def _set_head(self, value: int) -> None:
        _write_u64(self.region, self._abs(self._HEAD_OFFSET), value)

    # -- free-list manipulation -------------------------------------------

    def _list_insert(self, block: int) -> None:
        head = self._head()
        self._set_next_free(block, head)
        self._set_prev_free(block, NULL)
        if head != NULL:
            self._set_prev_free(head, block)
        self._set_head(block)

    def _list_remove(self, block: int) -> None:
        prev = self._prev_free(block)
        nxt = self._next_free(block)
        if prev != NULL:
            self._set_next_free(prev, nxt)
        else:
            self._set_head(nxt)
        if nxt != NULL:
            self._set_prev_free(nxt, prev)

    def _format(self) -> None:
        """Initialize the heap as one big free block."""
        first = self._BLOCKS_START
        block_size = self.size - self._BLOCKS_START
        self._set_head(NULL)
        self._set_header(first, block_size, _FREE)
        self._set_footer(first, block_size, _FREE)
        self._list_insert(first)

    # -- public API ---------------------------------------------------------

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` of payload; returns the payload offset
        relative to the region (not the heap base)."""
        if nbytes <= 0:
            raise AllocationError(f"cannot allocate {nbytes} bytes")
        need = max(MIN_BLOCK, _align16(nbytes + HEADER_BYTES + FOOTER_BYTES))
        block = self._head()
        while block != NULL:
            self.walk_steps += 1
            size = self._block_size(block)
            if size >= need:
                break
            block = self._next_free(block)
        if block == NULL:
            raise AllocationError(
                f"heap exhausted allocating {nbytes} bytes "
                f"(heap size {self.size})"
            )
        self._list_remove(block)
        size = self._block_size(block)
        remainder = size - need
        if remainder >= MIN_BLOCK:
            self.splits += 1
            self._set_header(block, need, _USED)
            self._set_footer(block, need, _USED)
            rest = block + need
            self._set_header(rest, remainder, _FREE)
            self._set_footer(rest, remainder, _FREE)
            self._list_insert(rest)
        else:
            self._set_header(block, size, _USED)
            self._set_footer(block, size, _USED)
        self.allocs += 1
        return self.base + block + HEADER_BYTES

    def free(self, payload_offset: int) -> None:
        """Free an allocation returned by :meth:`malloc`."""
        block = payload_offset - self.base - HEADER_BYTES
        if block < self._BLOCKS_START or block >= self.size:
            raise AllocationError(f"free of invalid offset {payload_offset}")
        if self._block_flags(block) != _USED:
            raise AllocationError(f"double free at offset {payload_offset}")
        size = self._block_size(block)

        # Coalesce with the following block if it is free.
        nxt = block + size
        if self._fits_block(nxt) and self._block_flags(nxt) == _FREE:
            self.coalesces += 1
            self._list_remove(nxt)
            size += self._block_size(nxt)

        # Coalesce with the preceding block if it is free.
        if block > self._BLOCKS_START:
            prev_flags = _read_u64(self.region, self._abs(block) - 8)
            if prev_flags == _FREE:
                prev_size = _read_u64(self.region, self._abs(block) - 16)
                prev = block - prev_size
                self.coalesces += 1
                self._list_remove(prev)
                block = prev
                size += prev_size

        self._set_header(block, size, _FREE)
        self._set_footer(block, size, _FREE)
        self._list_insert(block)
        self.frees += 1

    def _fits_block(self, block: int) -> bool:
        return block + MIN_BLOCK <= self.size

    def free_bytes(self) -> int:
        """Total payload capacity currently on the free list."""
        total = 0
        block = self._head()
        while block != NULL:
            total += self._block_size(block) - HEADER_BYTES - FOOTER_BYTES
            block = self._next_free(block)
        return total


def _align16(n: int) -> int:
    return (n + 15) & ~15


class BumpAllocator:
    """A log-style allocator: advance a pointer to allocate, move it
    back to free. The pointer itself lives in the region (META write on
    every change) because in a write-through replica it must reach the
    backup for recovery to find the end of the log.

    Layout: [0:8] current pointer (region-relative offset of next free
    byte), [8:] allocatable space.
    """

    _DATA_START = 8

    def __init__(
        self,
        region: MemoryRegion,
        base: int = 0,
        size: Optional[int] = None,
        fresh: bool = True,
    ):
        self.region = region
        self.base = base
        self.size = size if size is not None else region.size - base
        if self.size <= self._DATA_START:
            raise AllocationError("bump area too small")
        self.allocs = 0
        if fresh:
            self._set_pointer(self.base + self._DATA_START)

    def _set_pointer(self, value: int) -> None:
        _write_u64(self.region, self.base, value)

    @property
    def pointer(self) -> int:
        return _read_u64(self.region, self.base)

    @property
    def limit(self) -> int:
        return self.base + self.size

    def alloc(self, nbytes: int) -> int:
        """Advance the pointer; returns the region-relative offset."""
        if nbytes <= 0:
            raise AllocationError(f"cannot allocate {nbytes} bytes")
        current = self.pointer
        if current + nbytes > self.limit:
            raise AllocationError(
                f"bump allocator exhausted: need {nbytes}, "
                f"have {self.limit - current}"
            )
        self._set_pointer(current + nbytes)
        self.allocs += 1
        return current

    def mark(self) -> int:
        """Current pointer, for a later :meth:`release_to`."""
        return self.pointer

    def release_to(self, mark: int) -> None:
        """Move the pointer back (de-allocating everything after it)."""
        if mark < self.base + self._DATA_START or mark > self.pointer:
            raise AllocationError(f"invalid bump mark {mark}")
        self._set_pointer(mark)

    def reset(self) -> None:
        self._set_pointer(self.base + self._DATA_START)


class ArrayAllocator:
    """Fixed-size records allocated by incrementing an array index, as
    in Versions 1 and 2 ("the linked list structure of the undo log is
    replaced by an array from which consecutive records are allocated
    by simply incrementing the array index").

    Layout: [0:8] count, [8:] records.
    """

    _DATA_START = 8

    def __init__(
        self,
        region: MemoryRegion,
        record_bytes: int,
        base: int = 0,
        size: Optional[int] = None,
        fresh: bool = True,
    ):
        if record_bytes <= 0:
            raise AllocationError("record size must be positive")
        self.region = region
        self.record_bytes = record_bytes
        self.base = base
        self.size = size if size is not None else region.size - base
        self.capacity = (self.size - self._DATA_START) // record_bytes
        if self.capacity < 1:
            raise AllocationError("array area too small for one record")
        self.allocs = 0
        if fresh:
            self._set_count(0)

    def _set_count(self, value: int) -> None:
        _write_u64(self.region, self.base, value)

    @property
    def count(self) -> int:
        return _read_u64(self.region, self.base)

    def record_offset(self, index: int) -> int:
        """Region-relative offset of record ``index``."""
        if index < 0 or index >= self.capacity:
            raise AllocationError(f"record index {index} out of range")
        return self.base + self._DATA_START + index * self.record_bytes

    def push(self) -> int:
        """Allocate the next record; returns its region-relative offset."""
        count = self.count
        if count >= self.capacity:
            raise AllocationError(
                f"array allocator full ({self.capacity} records)"
            )
        self._set_count(count + 1)
        self.allocs += 1
        return self.record_offset(count)

    def truncate(self, count: int = 0) -> None:
        """Move the index back, de-allocating records beyond ``count``."""
        if count < 0 or count > self.count:
            raise AllocationError(f"invalid truncate count {count}")
        self._set_count(count)
