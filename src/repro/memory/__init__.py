"""Memory substrate: instrumented regions, Rio, allocators.

* :mod:`repro.memory.region` — byte-addressable memory regions with
  write observers and per-category accounting (modified / undo / meta),
  the hook the replication layer uses to implement write doubling.
* :mod:`repro.memory.rio` — the Rio reliable-memory model: regions
  that survive simulated operating-system crashes, with optional
  VM-protection semantics.
* :mod:`repro.memory.allocator` — a boundary-tag heap allocator whose
  metadata writes land in the region (this is where Version 0's
  dominant metadata traffic comes from), plus the bump and array
  allocators used by the restructured engines.
* :mod:`repro.memory.mapping` — a flat address space assigning global
  base addresses to regions so cache and packet models see realistic
  addresses.
"""

from repro.memory.region import (
    MemoryRegion,
    NumpyMemoryRegion,
    WriteCategory,
    WriteEvent,
    memory_region,
)
from repro.memory.rio import RioMemory
from repro.memory.allocator import ArrayAllocator, BumpAllocator, HeapAllocator
from repro.memory.mapping import AddressSpace

__all__ = [
    "MemoryRegion",
    "NumpyMemoryRegion",
    "memory_region",
    "WriteCategory",
    "WriteEvent",
    "RioMemory",
    "HeapAllocator",
    "BumpAllocator",
    "ArrayAllocator",
    "AddressSpace",
]
