"""The Rio reliable-memory model.

Rio (Chen et al., ASPLOS '96) makes main memory survive the two common
causes of memory loss: power failures (via a UPS) and operating-system
crashes (by write-protecting file-cache memory and restoring it during
warm reboot). Vista keeps its database, undo log and heap in Rio, so a
node crash loses no data — the data is merely *unavailable* until the
node reboots, which is the availability gap this paper's replication
closes.

The model here gives each node a :class:`RioMemory` holding named
persistent regions. A simulated crash (:meth:`crash`) preserves region
contents while the owning node discards all of its volatile state;
:meth:`reboot` makes the regions accessible again so recovery can run.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import CrashedError
from repro.memory.region import MemoryRegion, memory_region


class RioMemory:
    """A set of named memory regions that survive node crashes."""

    def __init__(self, node_name: str = "node", protect_regions: bool = False):
        self.node_name = node_name
        self.protect_regions = protect_regions
        self._regions: Dict[str, MemoryRegion] = {}
        self._crashed = False
        self.crash_count = 0

    # -- region management -----------------------------------------------

    def create_region(self, name: str, size: int, base: int = 0) -> MemoryRegion:
        """Create a persistent region; names must be unique per node."""
        self._check_alive()
        if name in self._regions:
            raise ValueError(
                f"region {name!r} already exists in Rio of {self.node_name!r}"
            )
        region = memory_region(f"{self.node_name}/{name}", size, base)
        if self.protect_regions:
            region.protect()
        self._regions[name] = region
        return region

    def get_region(self, name: str) -> MemoryRegion:
        """Look up a persistent region by name (e.g. after a reboot)."""
        self._check_alive()
        try:
            return self._regions[name]
        except KeyError:
            raise KeyError(
                f"no Rio region {name!r} on node {self.node_name!r}"
            ) from None

    def has_region(self, name: str) -> bool:
        return name in self._regions

    def drop_region(self, name: str) -> None:
        self._check_alive()
        del self._regions[name]

    def regions(self) -> Iterator[MemoryRegion]:
        return iter(self._regions.values())

    # -- crash semantics ---------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def _check_alive(self) -> None:
        if self._crashed:
            raise CrashedError(
                f"Rio memory of {self.node_name!r} is unavailable: node crashed"
            )

    def crash(self) -> None:
        """Simulate an OS crash: contents are preserved but unavailable.

        While crashed, every access raises :class:`CrashedError` — this
        is exactly Vista's availability gap. Observers attached to the
        regions are detached, matching the fact that a crashed node no
        longer drives its Memory Channel mappings.
        """
        if self._crashed:
            return
        self._crashed = True
        self.crash_count += 1
        for region in self._regions.values():
            region._observers.clear()
            region._fast_observers.clear()
            region._crashed = True

    def reboot(self) -> None:
        """Warm reboot: Rio restores the protected regions intact."""
        self._crashed = False
        for region in self._regions.values():
            region._crashed = False

    def __repr__(self) -> str:
        state = "crashed" if self._crashed else "up"
        return (
            f"RioMemory({self.node_name!r}, regions={sorted(self._regions)}, "
            f"{state})"
        )
