"""A flat address space assigning global base addresses to regions.

The cache and write-buffer models operate on *global* addresses, so
regions that are distinct in the program (database, undo log, mirror,
heap) must not overlap in address space. :class:`AddressSpace` hands
out aligned, non-overlapping base addresses and can resolve a global
address back to (region, offset) — which the write-through layer uses
to mirror an address into the backup's identical layout.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.memory.region import MemoryRegion


class AddressSpace:
    """Allocates global base addresses for memory regions."""

    def __init__(self, start: int = 0x1000_0000, alignment: int = 4096):
        if alignment < 1 or alignment & (alignment - 1):
            raise ConfigurationError("alignment must be a power of two")
        self.alignment = alignment
        self._next = _align(start, alignment)
        self._placed: List[MemoryRegion] = []
        self._by_name: Dict[str, MemoryRegion] = {}

    def place(self, region: MemoryRegion) -> MemoryRegion:
        """Assign the next free aligned base address to ``region``."""
        if region.name in self._by_name:
            raise ConfigurationError(
                f"region {region.name!r} already placed in this address space"
            )
        region.base = self._next
        self._next = _align(self._next + region.size, self.alignment)
        self._placed.append(region)
        self._by_name[region.name] = region
        return region

    def place_all(self, *regions: MemoryRegion) -> None:
        for region in regions:
            self.place(region)

    def resolve(self, address: int) -> Tuple[MemoryRegion, int]:
        """Map a global address back to (region, offset)."""
        for region in self._placed:
            if region.base <= address < region.base + region.size:
                return region, address - region.base
        raise ConfigurationError(f"address {address:#x} is not mapped")

    def region_at(self, address: int) -> Optional[MemoryRegion]:
        try:
            return self.resolve(address)[0]
        except ConfigurationError:
            return None

    def __contains__(self, address: int) -> bool:
        return self.region_at(address) is not None

    @property
    def regions(self) -> List[MemoryRegion]:
        return list(self._placed)


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)
