"""Per-replica record storage with version vectors and siblings.

Each replica of a quorum group holds a :class:`ReplicaStore`: a map of
integer keys to :class:`Stored` entries. A stored entry is the *set*
of sibling :class:`Record` versions whose version vectors are mutually
concurrent — one sibling in the common case, several after writes on
both sides of a partition — plus the merged vector summarizing all of
them. Merging is deterministic and order-independent: dominated
siblings are dropped, concurrent ones accumulate, and reads resolve
the survivors by last-writer-wins (simulated timestamp, then writer
index) while still reporting how many siblings the resolution hid.

The store also owns the byte-level identity the Merkle machinery
diffs: every key has a fixed-width 20-byte digest cell
(:meth:`ReplicaStore.key_digest`), and a leaf's cells concatenate into
a buffer whose word-aligned runs of difference —
:func:`repro.fastpath.kernels.diff_runs_fast` — map straight back to
key indexes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.memory.region import memory_region
from repro.quorum.versions import VersionVector, merge_all

#: Fixed width of one key's digest cell in a Merkle leaf buffer.
#: 20 bytes (SHA-1) is a multiple of the 4-byte diff word, so run
#: offsets from the diff kernel land on cell boundaries cleanly.
DIGEST_BYTES = 20

#: The digest cell of a key with no stored record.
EMPTY_DIGEST = b"\x00" * DIGEST_BYTES


@dataclass(frozen=True)
class Record:
    """One written version of one key."""

    value: bytes
    vv: VersionVector
    ts_us: float  # coordinator's simulated write time (LWW primary key)
    writer: int  # coordinating replica index (LWW tiebreak)

    def encode(self) -> bytes:
        """Canonical byte form (digests and transfer accounting)."""
        header = f"{self.vv.encode()}|{self.ts_us:.6f}|{self.writer}|"
        return header.encode("ascii") + self.value

    @property
    def payload_bytes(self) -> int:
        return len(self.encode())

    def lww_key(self) -> Tuple[float, int, bytes]:
        return (self.ts_us, self.writer, self.value)


@dataclass(frozen=True)
class Stored:
    """One key's surviving sibling set, newest-merge state."""

    siblings: Tuple[Record, ...]

    def __post_init__(self):
        ordered = tuple(sorted(self.siblings, key=Record.lww_key))
        object.__setattr__(self, "siblings", ordered)

    @property
    def vv(self) -> VersionVector:
        """The merged vector every sibling's history is folded into."""
        return merge_all(record.vv for record in self.siblings)

    @property
    def winner(self) -> Record:
        """Last-writer-wins resolution of the sibling set."""
        return self.siblings[-1]

    @property
    def payload_bytes(self) -> int:
        return sum(record.payload_bytes for record in self.siblings)

    def encode(self) -> bytes:
        return b";".join(record.encode() for record in self.siblings)

    def merge(self, other: "Stored") -> "Stored":
        """Union of both sibling sets with dominated versions dropped.

        Commutative and idempotent — the anti-entropy exchange applies
        it in both directions and converges.
        """
        combined: List[Record] = list(dict.fromkeys(self.siblings + other.siblings))
        survivors = [
            record
            for record in combined
            if not any(
                record is not rival and rival.vv.dominates(record.vv)
                for rival in combined
            )
        ]
        return Stored(tuple(survivors))


class ReplicaStore:
    """One replica's keyed record store over a fixed keyspace."""

    def __init__(self, num_keys: int):
        if num_keys < 1:
            raise ConfigurationError("need at least one key")
        self.num_keys = num_keys
        self._data: Dict[int, Stored] = {}
        # The digest cells live in one contiguous memory region
        # (zeroed == every key at EMPTY_DIGEST), maintained lazily:
        # writes mark keys dirty and the next identity read flushes.
        # A key's sha1 is thus computed once per modification instead
        # of once per Merkle tree build, and the Merkle machinery
        # reads the cells through a single zero-copy view per pass.
        self._digests = memory_region(
            "quorum/digests", num_keys * DIGEST_BYTES
        )
        self._dirty: set = set()

    def _check_key(self, key: int) -> None:
        if key < 0 or key >= self.num_keys:
            raise ConfigurationError(
                f"key {key} outside keyspace [0, {self.num_keys})"
            )

    # -- reads ---------------------------------------------------------------

    def get(self, key: int) -> Optional[Stored]:
        self._check_key(key)
        return self._data.get(key)

    @property
    def keys_stored(self) -> int:
        return len(self._data)

    # -- writes --------------------------------------------------------------

    def apply(self, key: int, record: Record) -> bool:
        """Merge one record in; returns True when state changed."""
        return self.apply_stored(key, Stored((record,)))

    def apply_stored(self, key: int, stored: Stored) -> bool:
        """Merge a full sibling set (the anti-entropy transfer unit)."""
        self._check_key(key)
        current = self._data.get(key)
        merged = stored if current is None else current.merge(stored)
        if current is not None and merged.siblings == current.siblings:
            return False
        self._data[key] = merged
        self._dirty.add(key)
        return True

    # -- identity ------------------------------------------------------------

    def key_digest(self, key: int) -> bytes:
        """The key's fixed-width digest cell (EMPTY_DIGEST if absent)."""
        stored = self._data.get(key)
        if stored is None:
            return EMPTY_DIGEST
        return hashlib.sha1(stored.encode()).digest()

    def _flush_digests(self) -> None:
        """Refresh the digest cells of keys written since the last
        identity read."""
        if not self._dirty:
            return
        poke = self._digests.poke
        data = self._data
        for key in self._dirty:
            poke(
                key * DIGEST_BYTES,
                hashlib.sha1(data[key].encode()).digest(),
            )
        self._dirty.clear()

    def digest_view(self) -> memoryview:
        """A read-only zero-copy view of every key's digest cell.

        This is the buffer the Merkle machinery consumes: one view per
        tree build / sync pass, sliced per leaf, with no intermediate
        ``bytes`` on the repair hot path.
        """
        self._flush_digests()
        return self._digests.view(0, self.num_keys * DIGEST_BYTES)

    def leaf_bytes(self, start_key: int, span: int) -> bytes:
        """Concatenated digest cells of keys [start_key, start_key+span)
        — a materialized slice of :meth:`digest_view`, kept for
        callers that want owned bytes (the hot path slices the view
        directly)."""
        end_key = min(start_key + span, self.num_keys)
        self._flush_digests()
        return self._digests.read(
            start_key * DIGEST_BYTES, (end_key - start_key) * DIGEST_BYTES
        )

    def canonical_bytes(self) -> bytes:
        """The whole replica's canonical byte image: replicas are
        converged exactly when these compare equal."""
        parts = []
        for key in sorted(self._data):
            parts.append(f"{key}=".encode("ascii"))
            parts.append(self._data[key].encode())
            parts.append(b"\n")
        return b"".join(parts)

    def __repr__(self) -> str:
        return f"ReplicaStore({self.keys_stored}/{self.num_keys} keys)"
