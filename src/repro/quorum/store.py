"""Per-replica record storage with version vectors and siblings.

Each replica of a quorum group holds a :class:`ReplicaStore`: a map of
integer keys to :class:`Stored` entries. A stored entry is the *set*
of sibling :class:`Record` versions whose version vectors are mutually
concurrent — one sibling in the common case, several after writes on
both sides of a partition — plus the merged vector summarizing all of
them. Merging is deterministic and order-independent: dominated
siblings are dropped, concurrent ones accumulate, and reads resolve
the survivors by last-writer-wins (simulated timestamp, then writer
index) while still reporting how many siblings the resolution hid.

The store also owns the byte-level identity the Merkle machinery
diffs: every key has a fixed-width 20-byte digest cell
(:meth:`ReplicaStore.key_digest`), and a leaf's cells concatenate into
a buffer whose word-aligned runs of difference —
:func:`repro.fastpath.kernels.diff_runs_fast` — map straight back to
key indexes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.quorum.versions import VersionVector, merge_all

#: Fixed width of one key's digest cell in a Merkle leaf buffer.
#: 20 bytes (SHA-1) is a multiple of the 4-byte diff word, so run
#: offsets from the diff kernel land on cell boundaries cleanly.
DIGEST_BYTES = 20

#: The digest cell of a key with no stored record.
EMPTY_DIGEST = b"\x00" * DIGEST_BYTES


@dataclass(frozen=True)
class Record:
    """One written version of one key."""

    value: bytes
    vv: VersionVector
    ts_us: float  # coordinator's simulated write time (LWW primary key)
    writer: int  # coordinating replica index (LWW tiebreak)

    def encode(self) -> bytes:
        """Canonical byte form (digests and transfer accounting)."""
        header = f"{self.vv.encode()}|{self.ts_us:.6f}|{self.writer}|"
        return header.encode("ascii") + self.value

    @property
    def payload_bytes(self) -> int:
        return len(self.encode())

    def lww_key(self) -> Tuple[float, int, bytes]:
        return (self.ts_us, self.writer, self.value)


@dataclass(frozen=True)
class Stored:
    """One key's surviving sibling set, newest-merge state."""

    siblings: Tuple[Record, ...]

    def __post_init__(self):
        ordered = tuple(sorted(self.siblings, key=Record.lww_key))
        object.__setattr__(self, "siblings", ordered)

    @property
    def vv(self) -> VersionVector:
        """The merged vector every sibling's history is folded into."""
        return merge_all(record.vv for record in self.siblings)

    @property
    def winner(self) -> Record:
        """Last-writer-wins resolution of the sibling set."""
        return self.siblings[-1]

    @property
    def payload_bytes(self) -> int:
        return sum(record.payload_bytes for record in self.siblings)

    def encode(self) -> bytes:
        return b";".join(record.encode() for record in self.siblings)

    def merge(self, other: "Stored") -> "Stored":
        """Union of both sibling sets with dominated versions dropped.

        Commutative and idempotent — the anti-entropy exchange applies
        it in both directions and converges.
        """
        combined: List[Record] = list(dict.fromkeys(self.siblings + other.siblings))
        survivors = [
            record
            for record in combined
            if not any(
                record is not rival and rival.vv.dominates(record.vv)
                for rival in combined
            )
        ]
        return Stored(tuple(survivors))


class ReplicaStore:
    """One replica's keyed record store over a fixed keyspace."""

    def __init__(self, num_keys: int):
        if num_keys < 1:
            raise ConfigurationError("need at least one key")
        self.num_keys = num_keys
        self._data: Dict[int, Stored] = {}

    def _check_key(self, key: int) -> None:
        if key < 0 or key >= self.num_keys:
            raise ConfigurationError(
                f"key {key} outside keyspace [0, {self.num_keys})"
            )

    # -- reads ---------------------------------------------------------------

    def get(self, key: int) -> Optional[Stored]:
        self._check_key(key)
        return self._data.get(key)

    @property
    def keys_stored(self) -> int:
        return len(self._data)

    # -- writes --------------------------------------------------------------

    def apply(self, key: int, record: Record) -> bool:
        """Merge one record in; returns True when state changed."""
        return self.apply_stored(key, Stored((record,)))

    def apply_stored(self, key: int, stored: Stored) -> bool:
        """Merge a full sibling set (the anti-entropy transfer unit)."""
        self._check_key(key)
        current = self._data.get(key)
        merged = stored if current is None else current.merge(stored)
        if current is not None and merged.siblings == current.siblings:
            return False
        self._data[key] = merged
        return True

    # -- identity ------------------------------------------------------------

    def key_digest(self, key: int) -> bytes:
        """The key's fixed-width digest cell (EMPTY_DIGEST if absent)."""
        stored = self._data.get(key)
        if stored is None:
            return EMPTY_DIGEST
        return hashlib.sha1(stored.encode()).digest()

    def leaf_bytes(self, start_key: int, span: int) -> bytes:
        """Concatenated digest cells of keys [start_key, start_key+span)
        — the buffer the Merkle leaf comparator diffs."""
        return b"".join(
            self.key_digest(key)
            for key in range(start_key, min(start_key + span, self.num_keys))
        )

    def canonical_bytes(self) -> bytes:
        """The whole replica's canonical byte image: replicas are
        converged exactly when these compare equal."""
        parts = []
        for key in sorted(self._data):
            parts.append(f"{key}=".encode("ascii"))
            parts.append(self._data[key].encode())
            parts.append(b"\n")
        return b"".join(parts)

    def __repr__(self) -> str:
        return f"ReplicaStore({self.keys_stored}/{self.num_keys} keys)"
